"""A miniature PUC campaign with checkpointing and restart.

Reproduces the paper's §4.1 workflow in the small: run ug[SteinerJack,
SimMPI] on a PUC-style instance under a tight (virtual) time limit with
checkpointing enabled, then restart from the checkpoint file with more
solvers until optimality — the exact pattern of Table 2's bip52u runs
(where only the 'primitive' subtree roots survive each restart).

Run:  python examples/steiner_puc_campaign.py
"""

import tempfile
from pathlib import Path

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.steiner import hypercube_instance
from repro.ug import ug
from repro.ug.checkpoint import load_checkpoint
from repro.ug.config import UGConfig


def main() -> None:
    graph = hypercube_instance(dim=5, perturbed=False, seed=1)
    print(f"instance (hc5u analogue): {graph}")

    ckpt = Path(tempfile.mkdtemp()) / "campaign.json"
    run = 0
    restart_from = None
    core_counts = [4, 8, 8, 16]
    while True:
        cores = core_counts[min(run, len(core_counts) - 1)]
        config = UGConfig(
            time_limit=0.6,  # virtual seconds per run — deliberately tight
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.1,
            objective_epsilon=1 - 1e-6,
        )
        solver = ug(graph.copy(), SteinerUserPlugins(), n_solvers=cores, comm="sim", config=config)
        result = solver.run(restart_from=restart_from)
        st = result.stats
        run += 1
        print(
            f"run {run} ({cores:>2} solvers): primal={st.primal_final:g} "
            f"dual={st.dual_final:.2f} gap={st.gap_final:.2%} "
            f"open={st.open_nodes_final} transferred={st.transferred_nodes} "
            f"nodes={st.nodes_generated} idle={st.idle_ratio:.0%}"
        )
        if result.solved:
            print(f"solved to optimality: cost={result.objective:g} after {run} run(s)")
            break
        saved = load_checkpoint(ckpt)
        print(
            f"  checkpoint: {len(saved.nodes)} primitive nodes "
            f"(open frontier was {st.open_nodes_final}) — the Table 2 collapse"
        )
        restart_from = str(ckpt)
        if run >= 8:
            print("giving up after 8 runs (raise time_limit to finish)")
            break


if __name__ == "__main__":
    main()
