"""The paper's thesis, end to end: build a *customized* CIP solver for
your own problem with plugins, then parallelize it with a page of glue.

The custom problem here is a knapsack-with-conflicts: maximise item
values subject to a capacity row, where conflicting item pairs cannot
both be chosen. We add one problem-specific plugin (a greedy repair
heuristic) on top of the generic MIP stack — the same pattern by which
SCIP-Jack and SCIP-SDP customize SCIP — and then hand the solver to UG
through a tiny UserPlugins class.

Run:  python examples/custom_solver_parallelization.py
"""

import numpy as np

from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.plugins import Heuristic
from repro.ug import HandleStep, ParaNode, ParaSolution, SolverHandle, UserPlugins, ug
from repro.ug.config import UGConfig


# --- the customized sequential solver (the "SCIP application") ------------

def build_model(seed: int = 7, n: int = 24) -> Model:
    rng = np.random.default_rng(seed)
    values = rng.integers(5, 40, n)
    weights = rng.integers(3, 20, n)
    capacity = int(weights.sum() * 0.35)
    conflicts = set()
    while len(conflicts) < n:
        a, b = sorted(rng.integers(0, n, 2).tolist())
        if a != b:
            conflicts.add((a, b))
    model = Model("knapsack_conflicts")
    model.objective_integral = True
    for i in range(n):
        model.add_variable(f"x{i}", VarType.BINARY, obj=-float(values[i]))
    model.add_constraint({i: float(weights[i]) for i in range(n)}, rhs=float(capacity))
    for a, b in sorted(conflicts):
        model.add_constraint({a: 1.0, b: 1.0}, rhs=1.0, name=f"conflict_{a}_{b}")
    return model


class GreedyRepairHeuristic(Heuristic):
    """Problem-specific plugin: sort by LP value, insert greedily, skipping
    conflicts and capacity overruns."""

    name = "greedy_repair"
    priority = 60

    def run(self, solver, node, x):
        if x is None:
            return
        model = solver.model
        order = sorted(range(model.num_variables), key=lambda i: -float(x[i]))
        chosen = np.zeros(model.num_variables)
        for i in order:
            lo, hi = solver.local_bounds(i)
            if hi < 0.5:
                continue
            chosen[i] = 1.0
            if not model.check_linear(chosen, solver.tol.feas):
                chosen[i] = 0.0 if lo < 0.5 else 1.0
        if model.check_linear(chosen, solver.tol.feas):
            solver.add_solution(model.objective_value(chosen), chosen, check=False)


def make_custom_solver(model, params=None, seed=0):
    solver = make_mip_solver(model.copy(), params)
    solver.include_heuristic(GreedyRepairHeuristic())
    return solver


# --- the glue: everything UG needs, in ~40 lines ---------------------------

class KnapsackHandle(SolverHandle):
    def __init__(self, cip):
        self.cip = cip

    def step(self):
        out = self.cip.step()
        sols = []
        if out.new_solution is not None and out.new_solution.x is not None:
            sols = [ParaSolution(out.new_solution.value, [float(v) for v in out.new_solution.x])]
        return HandleStep(out.finished, out.work, self.cip.dual_bound(), self.cip.n_open(), sols, 1)

    def extract_para_node(self):
        node = self.cip.extract_open_node()
        if node is None:
            return None
        bounds = [[int(j), float(lo), float(hi)] for j, (lo, hi) in sorted(node.bound_changes.items())]
        return ParaNode(payload={"bounds": bounds}, dual_bound=node.lower_bound, depth=node.depth)

    def inject_incumbent_value(self, value):
        self.cip.set_cutoff_value(value)

    def dual_bound(self):
        return self.cip.dual_bound()

    def n_open(self):
        return self.cip.n_open()


class KnapsackUserPlugins(UserPlugins):
    base_solver_name = "KnapsackConflicts"

    def create_handle(self, instance, node, params, seed, incumbent):
        solver = make_custom_solver(instance, params.with_changes(permutation_seed=seed), seed)
        bounds = {int(j): (lo, hi) for j, lo, hi in node.payload.get("bounds", [])}
        solver.setup(root_bounds=bounds, root_estimate=node.dual_bound)
        if incumbent is not None:
            solver.set_cutoff_value(incumbent.value)
        return KnapsackHandle(solver)


def main() -> None:
    model = build_model()
    seq = make_custom_solver(model).solve()
    print(f"sequential: status={seq.status.value} value={-seq.objective:g} nodes={seq.nodes_processed}")

    cfg = UGConfig(objective_epsilon=1 - 1e-6)
    parallel = ug(model, KnapsackUserPlugins(), n_solvers=4, comm="sim", config=cfg)
    res = parallel.run()
    print(
        f"{res.name}: value={-res.objective:g} solved={res.solved} "
        f"virtual_time={res.stats.computing_time:.3f}s nodes={res.stats.nodes_generated}"
    )
    assert abs(res.objective - seq.objective) < 1e-6
    print("custom solver parallelized — glue was one small UserPlugins class.")


if __name__ == "__main__":
    main()
