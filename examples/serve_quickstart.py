"""Quickstart: solve jobs through the repro.serve daemon.

Starts an in-process serve daemon, submits two Steiner jobs, and shows
the two contract outcomes side by side:

* an easy grid instance solves to optimality (``SUCCEEDED``);
* a hard unit-cost hypercube under a 2-node budget hits its limit and
  *degrades gracefully* — the daemon serves the best incumbent plus the
  dual bound with a certificate-checked gap (``DEGRADED``), never a bare
  timeout error.

Also demonstrated: the verified result cache (an identical repeat
request is answered instantly) and the cancel contract (cancelling a
finished job is a no-op).

Run:  python examples/serve_quickstart.py
"""

import tempfile
from pathlib import Path

from repro.serve import JobRequest, ServeClient, ServeConfig, daemon_in_thread


def main() -> None:
    journal = Path(tempfile.mkdtemp(prefix="repro-serve-")) / "journal.jsonl"
    config = ServeConfig(journal_path=str(journal), engine="sim", slots=2)
    with daemon_in_thread(config) as daemon:
        client = ServeClient(port=daemon.port)
        print(f"daemon up on 127.0.0.1:{daemon.port}, journal at {journal}")

        # --- job 1: an easy instance, solved to proven optimality ---------
        easy = JobRequest(
            kind="stp",
            payload={"generator": "grid",
                     "params": {"rows": 3, "cols": 4, "n_terminals": 5, "seed": 1}},
        )
        # --- job 2: a hard hypercube under a 2-node budget -----------------
        # the deadline contract: at the limit the incumbent + dual bound
        # are served with a certificate-checked gap, not an error
        hard = JobRequest(
            kind="stp",
            payload={"generator": "hypercube", "params": {"dim": 6, "perturbed": False}},
            node_limit=2,
        )
        views = [client.submit(easy), client.submit(hard)]
        for view in views:
            final = client.wait(view["job_id"], timeout=120)
            out = final["outcome"]
            print(
                f"job {final['job_id']}: {final['state'].upper()} "
                f"objective={out['objective']:g} bound={out['bound']:g} "
                f"gap={out['gap']:.2%} certified={out['certified']}"
            )

        assert client.status(views[0]["job_id"])["state"] == "succeeded"
        degraded = client.status(views[1]["job_id"])
        assert degraded["state"] == "degraded", degraded
        assert degraded["outcome"]["certified"], "a served gap must carry a passing certificate"

        # --- repeat query: served from the verified cache ------------------
        repeat = client.submit(easy)
        assert repeat["outcome"]["from_cache"], repeat
        print(f"repeat submit: {repeat['state']} instantly ({repeat['outcome']['detail']})")

        # --- cancel after completion is a harmless no-op -------------------
        cancelled = client.cancel(views[0]["job_id"])
        assert cancelled.get("noop"), cancelled
        print(f"cancel finished job: {cancelled['detail']}")

        stats = client.stats()["serve"]
        print(
            f"daemon served {stats['jobs_succeeded']} succeeded / "
            f"{stats['jobs_degraded']} degraded, cache hits {stats['cache_hits']}"
        )
        client.close()


if __name__ == "__main__":
    main()
