"""Mixed integer semidefinite programming: truss topology design.

Builds a small TTD instance (binary bar selection under a compliance SDP
constraint), solves it with both SCIP-SDP-style approaches — nonlinear
branch-and-bound over SDP relaxations, and LP-based eigenvector cutting
planes — and finally runs the hybrid ug[MISDP, SimMPI] racing solver that
tries both approaches side by side (paper §3.2).

Run:  python examples/misdp_truss.py
"""

import numpy as np

from repro.apps.misdp_plugins import MISDPUserPlugins
from repro.sdp import MISDPSolver, truss_topology_design
from repro.ug import ug
from repro.ug.config import UGConfig


def main() -> None:
    misdp = truss_topology_design(n_cols=1, compliance_bound=60.0, seed=0)
    nb = misdp.num_vars // 2
    print(f"instance: {misdp.name} — {nb} candidate bars, SDP block {misdp.blocks[0].size}x{misdp.blocks[0].size}")

    for approach in ("sdp", "lp"):
        solver = MISDPSolver(misdp, approach=approach, seed=0)
        sol = solver.solve(node_limit=2000, time_limit=120)
        chosen = [j for j in range(nb) if sol.y is not None and sol.y[nb + j] > 0.5]
        print(
            f"approach={approach}: status={sol.status.value} volume={-sol.objective:.4f} "
            f"nodes={sol.nodes_processed} bars={chosen}"
        )

    # hybrid racing: odd settings SDP-based, even settings LP-based
    config = UGConfig(ramp_up="racing", racing_deadline=0.3)
    parallel = ug(misdp, MISDPUserPlugins(), n_solvers=4, comm="sim", config=config)
    result = parallel.run()
    st = result.stats
    winner = st.racing_winner
    winner_kind = None if winner is None else ("SDP" if winner % 2 == 1 else "LP")
    print(
        f"{result.name}: volume={result.objective:.4f} "
        f"racing_winner={winner} ({winner_kind or 'solved during racing'}) "
        f"virtual_time={st.computing_time:.3f}s"
    )
    if result.incumbent is not None and result.incumbent.payload is not None:
        y = np.asarray(result.incumbent.payload)
        assert misdp.is_feasible(y, tol=1e-3)
        print("incumbent verified feasible against the SDP blocks.")


if __name__ == "__main__":
    main()
