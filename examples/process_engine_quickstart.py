"""Quickstart: true-parallel solving with the distributed-memory engine.

``ug(..., comm="process")`` runs every ParaSolver rank in its own OS
process (spawn context). All coordination traffic crosses a real
process boundary through the versioned binary wire codec — the same
protocol the deterministic SimEngine drives in virtual time — so the
result can be cross-checked against the simulation bit for bit.

Run:  python examples/process_engine_quickstart.py

The ``__main__`` guard is mandatory: multiprocessing's spawn start
method re-imports this module inside every worker process.
"""

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.steiner import hypercube_instance
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.verify import audit_ug_run, check_ug_steiner_result


def main() -> None:
    graph = hypercube_instance(dim=4, perturbed=False, seed=1)
    print(f"instance: {graph}")
    config = UGConfig(objective_epsilon=1 - 1e-6, trace_enabled=True)

    # --- 4 real worker processes over the wire codec ----------------------
    result = ug(
        graph.copy(), SteinerUserPlugins(), n_solvers=4, comm="process", config=config
    ).run()
    stats = result.stats
    print(
        f"{result.name}: cost={result.objective:g} solved={result.solved} "
        f"nodes={stats.nodes_generated} "
        f"wire={stats.net_frames_sent + stats.net_frames_received} frames "
        f"/ {stats.net_bytes_sent + stats.net_bytes_received} bytes"
    )
    for rank in sorted(stats.solver_busy):
        print(f"  rank {rank}: busy {stats.solver_busy[rank]:.3f}s wall")

    # --- the deterministic simulation engine proves the same optimum ------
    sim = ug(
        graph.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
        config=UGConfig(objective_epsilon=1 - 1e-6),
    ).run()
    print(f"{sim.name}: cost={sim.objective:g} solved={sim.solved}")
    assert result.objective == sim.objective

    # --- independent verification (never trusts solver state) -------------
    check_ug_steiner_result(graph, result).raise_if_failed()
    audit_ug_run(result).raise_if_failed()
    print("process-engine run verified: tree checked, trace audited.")


if __name__ == "__main__":
    main()
