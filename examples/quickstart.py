"""Quickstart: solve a Steiner tree problem sequentially and in parallel.

Run:  python examples/quickstart.py
"""

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.steiner import SteinerSolver, hypercube_instance
from repro.steiner.validation import validate_tree
from repro.ug import ug
from repro.ug.config import UGConfig


def main() -> None:
    # A PUC-style unit-cost hypercube instance: 16 vertices, 8 terminals.
    graph = hypercube_instance(dim=4, perturbed=False, seed=1)
    print(f"instance: {graph}")

    # --- sequential: the SCIP-Jack-style branch-and-cut solver ------------
    solver = SteinerSolver(graph.copy(), seed=0)
    solution = solver.solve()
    print(
        f"sequential: status={solution.status.value} cost={solution.cost:g} "
        f"nodes={solution.nodes_processed}"
    )
    validate_tree(graph, solution.edges, original=True)

    # --- parallel: ug[SteinerJack, SimMPI] with 4 ParaSolvers --------------
    config = UGConfig(objective_epsilon=1 - 1e-6)  # unit costs are integral
    parallel = ug(graph.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim", config=config)
    result = parallel.run()
    stats = result.stats
    print(
        f"{result.name}: cost={result.objective:g} solved={result.solved} "
        f"virtual_time={stats.computing_time:.3f}s nodes={stats.nodes_generated} "
        f"transferred={stats.transferred_nodes} idle={stats.idle_ratio:.0%}"
    )
    assert abs(result.objective - solution.cost) < 1e-6
    print("sequential and parallel solvers agree.")


if __name__ == "__main__":
    main()
