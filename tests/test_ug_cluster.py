"""Elastic cluster runtime: joins, drains, watchdog restarts, shape restore."""

from __future__ import annotations

import socket

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.steiner.instances import grid_instance, hypercube_instance
from repro.ug import (
    ClusterEvent,
    ClusterPlan,
    FaultPlan,
    MessageFault,
    RankWatchdog,
    RestartPolicy,
    SolverCrash,
    ug,
)
from repro.ug.checkpoint import load_checkpoint, rank_provenance
from repro.ug.config import UGConfig
from repro.ug.messages import MessageTag
from repro.ug.net.transport import (
    backoff_delay,
    hello_token_matches,
    make_hello_token,
    recv_hello,
    send_hello,
)
from repro.ug.para_node import ParaNode
from repro.verify import audit_restart_coverage, audit_ug_run, check_ug_steiner_result

STP_CFG = dict(time_limit=1e9, objective_epsilon=1 - 1e-6)


def run_sim(graph, n_solvers=3, **cfg):
    return ug(graph.copy(), SteinerUserPlugins(), n_solvers=n_solvers, comm="sim",
              config=UGConfig(**STP_CFG, **cfg)).run()


def run_loopback(graph, n_solvers=3, **cfg):
    return ug(graph.copy(), SteinerUserPlugins(), n_solvers=n_solvers, comm="loopback",
              config=UGConfig(trace_enabled=True, **STP_CFG, **cfg)).run()


@pytest.fixture(scope="module")
def hc5():
    return hypercube_instance(5, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc5_sim(hc5):
    return run_sim(hc5)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        UGConfig()

    @pytest.mark.parametrize("field,value", [
        ("heartbeat_timeout", 0.0),
        ("heartbeat_timeout", -1.0),
        ("drain_grace", 0.0),
        ("net_poll_interval", -0.1),
        ("net_connect_timeout", 0.0),
        ("net_shutdown_grace", -1.0),
        ("checkpoint_interval", 0.0),
        ("time_limit", -5.0),
        ("net_connect_retries", -1),
        ("max_node_retries", -2),
        ("net_outbound_queue", 0),
        ("node_limit", 0),
    ])
    def test_bad_knob_rejected_at_construction(self, field, value):
        with pytest.raises(ValueError, match=field):
            UGConfig(**{field: value})

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="net_transport"):
            UGConfig(net_transport="carrier-pigeon")


class TestBackoffDelay:
    def test_deterministic_per_seed(self):
        a = [backoff_delay(0.05, k, seed=3) for k in range(1, 8)]
        b = [backoff_delay(0.05, k, seed=3) for k in range(1, 8)]
        assert a == b
        c = [backoff_delay(0.05, k, seed=4) for k in range(1, 8)]
        assert a != c

    def test_exponential_then_capped(self):
        # raw schedule doubles until the cap; jitter keeps it in [raw/2, raw)
        for k in range(1, 10):
            d = backoff_delay(0.05, k, cap=0.4, seed=0)
            raw = min(0.05 * 2 ** (k - 1), 0.4)
            assert raw / 2 <= d < raw
        assert backoff_delay(0.05, 50, cap=0.4, seed=0) < 0.4

    def test_jitter_decorrelates_seeds(self):
        delays = {round(backoff_delay(1.0, 1, seed=s), 12) for s in range(20)}
        assert len(delays) > 15


class TestHelloHandshake:
    def test_roundtrip_and_token_match(self):
        token = make_hello_token()
        a, b = socket.socketpair()
        try:
            send_hello(a, 7, token)
            hello = recv_hello(b, timeout=5.0)
            assert hello is not None
            rank, got = hello
            assert rank == 7
            assert hello_token_matches(got, token)
            assert not hello_token_matches(got, make_hello_token())
        finally:
            a.close()
            b.close()

    def test_short_read_returns_none(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x01")  # truncated hello, then EOF
            a.close()
            assert recv_hello(b, timeout=5.0) is None
        finally:
            b.close()


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff"):
            RestartPolicy(backoff=0.0)
        with pytest.raises(ValueError, match="backoff_cap"):
            RestartPolicy(backoff=1.0, backoff_cap=0.5)

    def test_cluster_event_validation(self):
        with pytest.raises(ValueError, match="action"):
            ClusterEvent(at_time=0.0, action="explode")
        with pytest.raises(ValueError, match="at_time"):
            ClusterEvent(at_time=-1.0, action="join")
        plan = ClusterPlan(events=(ClusterEvent(0.5, "drain"), ClusterEvent(0.1, "join")))
        assert [e.at_time for e in plan.sorted_events()] == [0.1, 0.5]


class TestRankWatchdog:
    def _watchdog(self, **kw):
        clock = {"now": 0.0}
        policy = RestartPolicy(max_restarts=kw.pop("max_restarts", 2),
                               backoff=kw.pop("backoff", 0.1), seed=kw.pop("seed", 5))
        return RankWatchdog(policy, clock=lambda: clock["now"]), clock

    def test_restart_scheduled_after_backoff(self):
        wd, clock = self._watchdog()
        due = wd.note_death(2)
        assert due is not None and 0.05 <= due <= 0.1
        assert wd.due() == []  # not yet
        clock["now"] = due
        assert wd.due() == [2]
        assert wd.due() == []  # fires once

    def test_lineage_inherits_budget(self):
        wd, clock = self._watchdog(max_restarts=2)
        assert wd.note_death(2) is not None
        wd.bind(4, 2)  # replacement rank 4 continues lineage 2
        assert wd.lineage_of(4) == 2
        assert wd.note_death(4) is not None  # second restart of the lineage
        assert wd.note_death(4) is None  # budget exhausted
        assert 2 in wd.gave_up
        assert wd.restarts_used(4) == 2

    def test_zero_budget_gives_up_immediately(self):
        wd, _ = self._watchdog(max_restarts=0)
        assert wd.note_death(1) is None
        assert wd.gave_up == {1}

    def test_deterministic_schedule(self):
        wd1, _ = self._watchdog(seed=9)
        wd2, _ = self._watchdog(seed=9)
        assert wd1.note_death(3) == wd2.note_death(3)
        wd3, _ = self._watchdog(seed=10)
        assert wd1.note_death(5) != wd3.note_death(5)


class TestLoopbackJoin:
    def test_join_mid_solve(self, hc5, hc5_sim):
        plan = ClusterPlan(events=(ClusterEvent(at_time=0.1, action="join"),))
        res = run_loopback(hc5, cluster_plan=plan)
        assert res.stats.ranks_joined == 1
        assert res.stats.peak_ranks == 4
        assert res.solved and res.objective == hc5_sim.objective
        check_ug_steiner_result(hc5, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()
        kinds = {e.kind for e in res.trace.events()}
        assert "rank_join" in kinds
        # the joiner actually worked: some assign targeted the new rank 4
        assert any(e.kind == "assign" and e.rank == 4 for e in res.trace.events())


class TestLoopbackDrain:
    def test_drain_busy_rank_returns_node(self, hc5, hc5_sim):
        plan = ClusterPlan(events=(ClusterEvent(at_time=0.3, action="drain", rank=2),))
        res = run_loopback(hc5, cluster_plan=plan)
        assert res.stats.drains_requested == 1
        assert res.stats.ranks_drained == 1
        assert res.stats.drain_timeouts == 0
        # graceful scale-down is not a fault and burns no retry budget
        assert res.stats.solver_failures == 0
        assert res.stats.nodes_reclaimed == 0
        assert res.stats.final_ranks == 2
        assert res.solved and res.objective == hc5_sim.objective
        check_ug_steiner_result(hc5, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()
        drained = [e for e in res.trace.events() if e.kind == "rank_drained"]
        assert [e.rank for e in drained] == [2]
        # the in-flight node came home iff the rank was busy when asked
        requested = [e for e in res.trace.events() if e.kind == "drain_request"]
        if requested[0].data["active"]:
            assert res.stats.nodes_returned == drained[0].data["requeued"] == 1

    def test_drain_whole_fleet_is_honest(self, hc5):
        plan = ClusterPlan(events=tuple(
            ClusterEvent(at_time=0.2, action="drain", rank=r) for r in (1, 2, 3)
        ))
        res = run_loopback(hc5, cluster_plan=plan)
        assert res.stats.ranks_drained == 3
        assert res.stats.final_ranks == 0
        # nobody left to finish the tree: no phantom optimality claim
        assert not res.solved
        audit_ug_run(res).raise_if_failed()

    def test_unanswered_drain_escalates_to_death(self, hc5):
        # the DRAIN itself is dropped on the wire: the rank never answers,
        # the grace period lapses and the drain escalates onto the
        # death/reclaim path instead of hanging membership forever
        plan = ClusterPlan(events=(ClusterEvent(at_time=0.3, action="drain", rank=2),))
        faults = FaultPlan(message_faults=(
            MessageFault(tag=MessageTag.DRAIN, dst=2, action="drop", count=1),
        ))
        res = run_loopback(hc5, cluster_plan=plan, fault_plan=faults,
                           drain_grace=0.2, heartbeat_timeout=1e6)
        assert res.stats.drains_requested == 1
        assert res.stats.ranks_drained == 0
        assert res.stats.drain_timeouts == 1
        assert res.stats.solver_failures == 1  # escalated to a death
        kinds = {e.kind for e in res.trace.events()}
        assert "drain_timeout" in kinds and "solver_dead" in kinds


class TestWatchdog:
    def test_restart_heals_crash(self, hc5, hc5_sim):
        plan = ClusterPlan(restart_policy=RestartPolicy(max_restarts=2, backoff=0.02, seed=7))
        faults = FaultPlan(crashes=(SolverCrash(rank=2, at_time=0.05),))
        res = run_loopback(hc5, cluster_plan=plan, fault_plan=faults, heartbeat_timeout=0.5)
        assert res.stats.solver_failures == 1
        assert res.stats.ranks_restarted == 1
        assert res.stats.ranks_joined == 1  # the replacement joined
        assert res.solved and res.objective == hc5_sim.objective
        check_ug_steiner_result(hc5, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()
        kinds = {e.kind for e in res.trace.events()}
        assert "rank_restart" in kinds and "rank_join" in kinds

    def test_no_restart_without_budget(self, hc5):
        plan = ClusterPlan(restart_policy=RestartPolicy(max_restarts=0, backoff=0.02))
        faults = FaultPlan(crashes=(SolverCrash(rank=2, at_time=0.05),))
        res = run_loopback(hc5, cluster_plan=plan, fault_plan=faults, heartbeat_timeout=0.5)
        assert res.stats.solver_failures == 1
        assert res.stats.ranks_restarted == 0
        assert res.stats.ranks_joined == 0
        audit_ug_run(res).raise_if_failed()


class TestChurnMatrix:
    """The acceptance scenario: joins + drains + kills mid-solve on five
    seeded instances, deterministic, final objective equal to the
    uninterrupted SimEngine run, auditors clean."""

    INSTANCES = [
        ("hc4", lambda: hypercube_instance(4, perturbed=False, seed=1), 0.075),
        ("hc5", lambda: hypercube_instance(5, perturbed=False, seed=1), 1.37),
        ("grid7x7-s1", lambda: grid_instance(7, 7, 12, perturbed=False, seed=1), 1.04),
        ("grid7x7-s2", lambda: grid_instance(7, 7, 12, perturbed=False, seed=2), 0.11),
        ("grid8x8-s4", lambda: grid_instance(8, 8, 14, perturbed=False, seed=4), 0.20),
    ]

    @pytest.mark.parametrize("name,make,span", INSTANCES, ids=[i[0] for i in INSTANCES])
    def test_churn_matches_sim(self, name, make, span):
        graph = make()
        sim = run_sim(graph)
        # events scaled to the instance's uninterrupted virtual span so
        # every instance sees churn while the tree is genuinely open
        plan = ClusterPlan(
            events=(
                ClusterEvent(at_time=0.10 * span, action="join"),
                ClusterEvent(at_time=0.25 * span, action="drain"),
                ClusterEvent(at_time=0.40 * span, action="join"),
            ),
            restart_policy=RestartPolicy(max_restarts=1, backoff=0.05 * span, seed=11),
        )
        faults = FaultPlan(crashes=(SolverCrash(rank=1, at_time=0.3 * span),))
        res = run_loopback(graph, cluster_plan=plan, fault_plan=faults,
                           heartbeat_timeout=0.2 * span)
        assert res.stats.ranks_joined >= 1
        assert res.objective == sim.objective
        check_ug_steiner_result(graph, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()

    def test_churn_run_is_deterministic(self, hc5):
        def one():
            plan = ClusterPlan(
                events=(
                    ClusterEvent(at_time=0.1, action="join"),
                    ClusterEvent(at_time=0.3, action="drain"),
                ),
                restart_policy=RestartPolicy(max_restarts=1, backoff=0.05, seed=3),
            )
            faults = FaultPlan(crashes=(SolverCrash(rank=1, at_time=0.4),))
            return run_loopback(hc5, cluster_plan=plan, fault_plan=faults,
                                heartbeat_timeout=0.3)

        r1, r2 = one(), one()
        assert r1.objective == r2.objective
        assert r1.stats.net_frames_sent == r2.stats.net_frames_sent
        t1 = [e.to_json() for e in r1.trace.events()]
        t2 = [e.to_json() for e in r2.trace.events()]
        assert t1 == t2


class TestShapeChangingRestart:
    def _checkpoint_at(self, graph, tmp_path, n_ranks):
        path = str(tmp_path / "cp.json")
        cfg = UGConfig(time_limit=0.3, checkpoint_path=path, checkpoint_interval=0.05,
                       objective_epsilon=1 - 1e-6)
        ug(graph.copy(), SteinerUserPlugins(), n_solvers=n_ranks, comm="sim",
           config=cfg).run()
        return path

    @pytest.mark.parametrize("m", [2, 6])
    def test_restore_at_different_rank_count(self, tmp_path, m, hc5, hc5_sim):
        path = self._checkpoint_at(hc5, tmp_path, n_ranks=4)
        cp = load_checkpoint(path)
        assert cp.meta["n_ranks"] == 4
        assert sum(cp.meta["rank_provenance"].values()) == len(cp.nodes)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=m, comm="sim",
                 config=UGConfig(**STP_CFG)).run(restart_from=path)
        assert res.solved
        assert res.objective == hc5_sim.objective
        assert res.stats.shape_restarts == 1
        check_ug_steiner_result(hc5, res).raise_if_failed()

    def test_same_shape_restore_not_counted(self, tmp_path, hc5):
        path = self._checkpoint_at(hc5, tmp_path, n_ranks=4)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
                 config=UGConfig(**STP_CFG)).run(restart_from=path)
        assert res.solved
        assert res.stats.shape_restarts == 0

    def test_loopback_restore_matches(self, tmp_path, hc5, hc5_sim):
        path = self._checkpoint_at(hc5, tmp_path, n_ranks=4)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=2, comm="loopback",
                 config=UGConfig(trace_enabled=True, **STP_CFG)).run(restart_from=path)
        assert res.solved and res.objective == hc5_sim.objective
        audit_ug_run(res).raise_if_failed()

    def test_provenance_histogram(self):
        nodes = [ParaNode(payload={}, origin_rank=r) for r in (1, 1, 2, 0)]
        assert rank_provenance(nodes) == {"1": 2, "2": 1, "0": 1}


class TestRestartCoverageAudit:
    def _checkpoint(self, nodes, meta=None):
        from repro.ug.checkpoint import Checkpoint

        meta = dict(meta or {})
        meta.setdefault("rank_provenance", rank_provenance(nodes))
        return Checkpoint(nodes=nodes, incumbent=None, meta=meta)

    def _node(self, x, dual=1.0, depth=1, rank=1):
        return ParaNode(payload={"x": x}, dual_bound=dual, depth=depth, origin_rank=rank)

    def test_clean_cover_passes(self):
        saved = [self._node(1), self._node(2, dual=2.0, depth=2)]
        restored = [ParaNode.from_json(n.to_json()) for n in reversed(saved)]
        report = audit_restart_coverage(self._checkpoint(saved), restored)
        assert report.ok

    def test_missing_node_fails(self):
        saved = [self._node(1), self._node(2)]
        report = audit_restart_coverage(self._checkpoint(saved), [saved[0]])
        assert not report.ok
        names = {c.name for c in report.failures}
        assert "node_count" in names and "frontier_covered" in names

    def test_mutated_dual_fails(self):
        saved = [self._node(1, dual=1.0)]
        tampered = [self._node(1, dual=5.0)]
        report = audit_restart_coverage(self._checkpoint(saved), tampered)
        assert not report.ok

    def test_duplicate_multiplicity_enforced(self):
        saved = [self._node(1), self._node(1)]
        report = audit_restart_coverage(self._checkpoint(saved), [self._node(1), self._node(2)])
        assert not report.ok

    def test_real_checkpoint_roundtrip(self, tmp_path, hc5):
        path = str(tmp_path / "cp.json")
        cfg = UGConfig(time_limit=0.3, checkpoint_path=path, checkpoint_interval=0.05,
                       objective_epsilon=1 - 1e-6)
        ug(hc5.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim", config=cfg).run()
        cp = load_checkpoint(path)
        restored = [ParaNode.from_json(n.to_json()) for n in cp.nodes]
        audit_restart_coverage(cp, restored).raise_if_failed()
