"""Wire-path coalescing: BATCH frames, channel queue/flush, debounce.

The BATCH frame (PR 7) is the only wire construct that carries several
protocol messages at once, so it gets its own property tests (roundtrip
over randomized protocol payloads), rejection tests (a corrupt BATCH
must fail loudly, not deliver half its messages) and end-to-end checks:
the batched loopback engine must still agree with the SimEngine and
must still replay bit-identically under an injected fault plan.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.steiner.instances import hypercube_instance
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.ug.faults import FaultPlan, FrameFault
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import Message, MessageTag
from repro.ug.net.channel import MessageChannel, corrupt_frame
from repro.ug.net.codec import (
    BATCH_FRAME_CODE,
    HEADER_SIZE,
    WIRE_VERSION,
    ChecksumError,
    FrameDecodeError,
    PayloadDecodeError,
    PayloadEncodeError,
    decode_frame,
    decode_message,
    encode_batch,
    encode_message,
)
from repro.ug.net.transport import LoopbackTransport
from repro.ug.para_solution import ParaSolution
from repro.ug.user_plugins import UserPlugins
from repro.verify import audit_ug_run, check_ug_steiner_result
from tests.test_ug_net import STP_CFG, assert_payload_equal, random_payload

TAGS = list(MessageTag)


def random_messages(rng: np.random.Generator, n: int) -> list[Message]:
    return [
        Message(
            tag=TAGS[int(rng.integers(0, len(TAGS)))],
            src=int(rng.integers(0, 64)),
            dst=int(rng.integers(0, 64)),
            payload=random_payload(rng),
            seq=int(rng.integers(0, 2**40)),
        )
        for _ in range(n)
    ]


class TestBatchRoundtrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_batches(self, seed):
        rng = np.random.default_rng(1000 + seed)
        msgs = random_messages(rng, int(rng.integers(2, 7)))
        out = decode_frame(encode_batch(msgs))
        assert len(out) == len(msgs)
        for orig, got in zip(msgs, out):
            assert got.tag is orig.tag
            assert got.src == orig.src and got.dst == orig.dst and got.seq == orig.seq
            assert_payload_equal(orig.payload, got.payload)

    def test_single_message_batch_is_a_plain_frame(self):
        """Coalescing one message must not cost a BATCH envelope."""
        msg = Message(MessageTag.STATUS, 1, 0, {"rank": 1}, seq=5)
        frame = encode_batch([msg])
        assert frame == encode_message(msg)
        assert decode_message(frame).payload == {"rank": 1}

    def test_empty_batch_rejected(self):
        with pytest.raises(PayloadEncodeError):
            encode_batch([])

    def test_decode_frame_handles_plain_frames_too(self):
        msg = Message(MessageTag.INCUMBENT, 2, 0, {"value": 7.0}, seq=9)
        (got,) = decode_frame(encode_message(msg))
        assert got.tag is MessageTag.INCUMBENT and got.payload == {"value": 7.0}

    def test_single_message_decode_path_refuses_batches(self):
        msgs = random_messages(np.random.default_rng(0), 3)
        with pytest.raises(FrameDecodeError):
            decode_message(encode_batch(msgs))


class TestBatchRejection:
    def frame(self) -> bytes:
        rng = np.random.default_rng(7)
        return encode_batch(random_messages(rng, 4))

    def _restamp(self, body: bytes) -> bytes:
        return body + struct.pack("!I", zlib.crc32(body))

    def test_corrupt_and_truncate_rejected(self):
        for mode in ("corrupt", "truncate"):
            with pytest.raises(FrameDecodeError):
                decode_frame(corrupt_frame(self.frame(), mode))

    def test_flipped_payload_byte_rejected(self):
        f = self.frame()
        pos = HEADER_SIZE + 3
        bad = f[:pos] + bytes([f[pos] ^ 0x1]) + f[pos + 1 :]
        with pytest.raises(ChecksumError):
            decode_frame(bad)

    def test_batch_payload_must_be_json_array(self):
        head = struct.Struct("!2sBBiiqI").pack(
            b"UG", WIRE_VERSION, BATCH_FRAME_CODE, 1, 0, 0, 2
        )
        with pytest.raises(PayloadDecodeError):
            decode_frame(self._restamp(head + b"{}"))

    def test_malformed_batch_record_rejected(self):
        # valid CRC, valid JSON array, but a record missing its tag/seq keys
        payload = b'[{"bogus": 1}]'
        head = struct.Struct("!2sBBiiqI").pack(
            b"UG", WIRE_VERSION, BATCH_FRAME_CODE, 1, 0, 0, len(payload)
        )
        with pytest.raises(PayloadDecodeError):
            decode_frame(self._restamp(head + payload))


class TestChannelCoalescing:
    def pair(self):
        ta, tb = LoopbackTransport.pair()
        a = MessageChannel(ta, local_rank=1, remote_rank=0)
        b = MessageChannel(tb, local_rank=0, remote_rank=1)
        return ta, tb, a, b

    def test_queue_flush_ships_one_frame(self):
        _ta, tb, a, b = self.pair()
        for i in range(5):
            a.queue(0, MessageTag.STATUS, {"i": i})
        assert tb.pending() == 0  # nothing on the wire until flush
        assert a.flush()
        assert tb.pending() == 1  # five messages, one frame
        got = [b.recv() for _ in range(5)]
        assert [m.payload["i"] for m in got] == list(range(5))
        assert b.recv() is None

    def test_flush_empty_outbox_is_noop(self):
        _ta, tb, a, _b = self.pair()
        assert a.flush()
        assert tb.pending() == 0

    def test_malformed_frame_does_not_stall_recv(self):
        """A bad frame ahead of good ones is skipped in the SAME recv call:
        the old behavior returned None and left the good frames stranded
        until the next poll, stalling the rank."""
        ta, _tb, a, b = self.pair()
        ta.send_frame(b"garbage that is not a frame")
        for i in range(3):
            a.queue(0, MessageTag.STATUS, {"i": i})
        a.flush()
        msg = b.recv()
        assert msg is not None and msg.payload == {"i": 0}
        assert b.decode_errors == 1
        assert [b.recv().payload["i"] for _ in range(2)] == [1, 2]

    def test_corrupt_batch_loses_all_its_messages(self):
        ta, _tb, a, b = self.pair()
        for i in range(4):
            a.queue(0, MessageTag.STATUS, {"i": i})
        a.flush()
        frame = ta._peer._inbox.pop()  # intercept the one BATCH frame
        ta.send_frame(corrupt_frame(frame, "corrupt"))
        a.send(0, MessageTag.TERMINATED, {"rank": 1})
        msg = b.recv()
        assert msg is not None and msg.tag is MessageTag.TERMINATED
        assert b.decode_errors == 1


class TestIncumbentDebounce:
    """Direct LC-level pin of the debounce semantics: improvements are
    ACCEPTED immediately (the audited incumbent stream stays monotone)
    but the rebroadcast inside the window is held, and only the best
    value flushes once the window elapses."""

    def _lc(self, **cfg):
        class _NullPlugins(UserPlugins):
            base_solver_name = "Null"

        lc = LoadCoordinator(
            "instance", _NullPlugins(), ParamSet(),
            UGConfig(time_limit=1e9, **cfg), 2,
        )
        sent: list[tuple[int, MessageTag, dict]] = []

        def send(dst, tag, payload):
            sent.append((dst, tag, payload))

        lc.start(send, 0.0)
        return lc, sent, send

    @staticmethod
    def _solution(value: float) -> Message:
        return Message(MessageTag.SOLUTION_FOUND, 1, 0,
                       {"solution": ParaSolution(value)}, seq=0)

    @staticmethod
    def _incumbent_values(sent) -> list[float]:
        return [p["value"] for _d, t, p in sent if t is MessageTag.INCUMBENT]

    def test_improvements_inside_window_flush_once_at_best(self):
        lc, sent, send = self._lc(net_incumbent_debounce=1.0)
        lc.handle_message(self._solution(10.0), send, 0.1)
        assert self._incumbent_values(sent) == [10.0]  # first one ships now
        sent.clear()

        lc.handle_message(self._solution(8.0), send, 0.2)
        lc.handle_message(self._solution(7.0), send, 0.3)
        # accepted immediately (monotone incumbent), broadcasts held
        assert lc.incumbent.value == 7.0
        assert lc.stats.incumbent_broadcasts_deferred == 2
        assert self._incumbent_values(sent) == []

        lc.on_tick(send, 0.9)  # still inside the window: nothing flushes
        assert self._incumbent_values(sent) == []
        lc.on_tick(send, 1.2)  # window over: one flush, best value only
        assert self._incumbent_values(sent) == [7.0]
        lc.on_tick(send, 2.5)  # nothing pending: no re-broadcast
        assert self._incumbent_values(sent) == [7.0]

    def test_zero_debounce_broadcasts_every_improvement(self):
        lc, sent, send = self._lc(net_incumbent_debounce=0.0)
        lc.handle_message(self._solution(10.0), send, 0.1)
        lc.handle_message(self._solution(8.0), send, 0.100001)
        assert self._incumbent_values(sent) == [10.0, 8.0]
        assert lc.stats.incumbent_broadcasts_deferred == 0


@pytest.fixture(scope="module")
def hc4():
    return hypercube_instance(4, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc4_sim(hc4):
    return ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
              config=UGConfig(**STP_CFG)).run()


BATCH_CFG = dict(net_batch_nodes=4, net_incumbent_debounce=0.02, **STP_CFG)


class TestBatchedLoopback:
    def test_matches_sim_objective_with_batching_on(self, hc4, hc4_sim):
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=UGConfig(trace_enabled=True, **BATCH_CFG)).run()
        assert res.solved and res.objective == hc4_sim.objective
        # a BATCH envelope only forms when a flush seam holds >=2 messages
        # (transfers already coalesce into one message), so the counter may
        # legitimately be zero here — but it must stay consistent
        assert res.stats.net_msgs_coalesced >= 2 * res.stats.net_batches_sent
        assert res.stats.net_decode_errors == 0
        check_ug_steiner_result(hc4, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()

    def test_bit_identical_replay_under_frame_faults(self, hc4):
        """Batching + debounce must not leak nondeterminism: two runs under
        the same FrameFault plan produce byte-identical traces and wire
        counters."""
        plan = FaultPlan(frame_faults=(FrameFault(src=1, action="corrupt", count=1),
                                       FrameFault(src=2, action="drop", count=1)))
        runs = [
            ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
               config=UGConfig(heartbeat_timeout=0.5, trace_enabled=True,
                               fault_plan=plan, **BATCH_CFG)).run()
            for _ in range(2)
        ]
        assert runs[0].objective == runs[1].objective
        assert runs[0].stats.net_frames_sent == runs[1].stats.net_frames_sent
        assert runs[0].stats.net_bytes_sent == runs[1].stats.net_bytes_sent
        assert runs[0].stats.net_decode_errors == runs[1].stats.net_decode_errors
        assert runs[0].stats.faults_injected >= 1
        t0 = [e.to_json() for e in runs[0].trace.events()]
        t1 = [e.to_json() for e in runs[1].trace.events()]
        assert t0 == t1
