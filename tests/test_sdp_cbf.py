"""Tests for the CBF reader/writer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.cbf import read_cbf, write_cbf
from repro.sdp.instances import (
    cardinality_least_squares,
    min_k_partitioning,
    truss_topology_design,
)

MINIMAL = """
VER
1

OBJSENSE
MAX

VAR
1 1
F 1

PSDCON
1
2

OBJACOORD
1
0 1.0

HCOORD
1
0 0 1 0 1.0

DCOORD
2
0 0 0 1.0
0 1 1 1.0
"""


class TestReader:
    def test_minimal_toy(self):
        # max y s.t. [[1, y],[y, 1]] >= 0  (H gives +y on offdiag)
        m = read_cbf(MINIMAL)
        assert m.num_vars == 1
        assert len(m.blocks) == 1
        r = solve_sdp_relaxation(m)
        assert r.status == "optimal"
        assert r.objective == pytest.approx(1.0, abs=1e-4)

    def test_min_sense_negates(self):
        text = MINIMAL.replace("MAX", "MIN")
        m = read_cbf(text)
        r = solve_sdp_relaxation(m)
        # sup of (-y) subject to |y| <= 1 is 1 at y = -1
        assert r.objective == pytest.approx(1.0, abs=1e-4)

    def test_integer_section(self):
        text = MINIMAL + "\nINT\n1\n0\n"
        m = read_cbf(text)
        assert m.integers == [0]

    def test_unknown_section_rejected(self):
        with pytest.raises(ModelError):
            read_cbf("VER\n1\n\nFRUIT\n3\n")

    def test_bad_version_rejected(self):
        with pytest.raises(ModelError):
            read_cbf("VER\n9\n")

    def test_unsupported_cone_rejected(self):
        with pytest.raises(ModelError):
            read_cbf("VER\n1\n\nVAR\n2 1\nQ 2\n")

    def test_comments_ignored(self):
        m = read_cbf("# hello\n" + MINIMAL)
        assert m.num_vars == 1


class TestRoundtrip:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: min_k_partitioning(n=4, k=2, seed=0),
            lambda: cardinality_least_squares(n_features=3, n_samples=4, seed=0),
            lambda: truss_topology_design(n_cols=1, seed=0),
        ],
        ids=["mkp", "cls", "ttd"],
    )
    def test_instances_roundtrip(self, make):
        original = make()
        back = read_cbf(write_cbf(original), name=original.name)
        assert back.num_vars == original.num_vars
        assert back.integers == sorted(original.integers)
        assert len(back.blocks) == len(original.blocks)
        for b1, b2 in zip(original.blocks, back.blocks):
            assert np.allclose(b1.C, b2.C)
            assert sorted(b1.coefs) == sorted(b2.coefs)
            for j in b1.coefs:
                assert np.allclose(b1.coefs[j], b2.coefs[j])
        # feasibility of a reference point is preserved
        y = np.zeros(original.num_vars)
        if original.is_feasible(y):
            assert back.is_feasible(y)

    def test_roundtrip_relaxation_value(self):
        original = min_k_partitioning(n=4, k=2, seed=1)
        back = read_cbf(write_cbf(original))
        r1 = solve_sdp_relaxation(original)
        r2 = solve_sdp_relaxation(back)
        assert r1.objective == pytest.approx(r2.objective, abs=1e-3)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_bounds_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        from repro.sdp.model import MISDP

        n = 3
        m = MISDP(
            "rand",
            b=rng.normal(size=n),
            lb=np.array([0.0, -2.0, -np.inf]),
            ub=np.array([np.inf, 2.0, 0.0]),
            integers=[1],
        )
        B = rng.normal(size=(2, 2))
        m.add_block(np.eye(2) * 2, {0: (B + B.T) / 4})
        m.add_linear_row({0: 1.0, 1: -1.0}, rhs=1.5)
        back = read_cbf(write_cbf(m))
        r1 = solve_sdp_relaxation(m)
        r2 = solve_sdp_relaxation(back)
        assert r1.status == r2.status
        if r1.status == "optimal":
            assert r1.objective == pytest.approx(r2.objective, abs=1e-3)
