"""Daemon end-to-end: contracts over the wire (one in-process daemon per test).

Covers the serving contracts the issue pins down: cancel racing
completion is a no-op, quota exhaustion is a typed rejection, a
saturated fleet sheds load instead of queueing unboundedly, deadline
expiry serves an incumbent with a certified gap, and an unverifiable
answer is reported FAILED — never silently served.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.serve import (
    JobRequest,
    QueueFullError,
    QuotaExceededError,
    ServeClient,
    ServeConfig,
    TenantQuota,
    UnknownJobError,
    daemon_in_thread,
)
from repro.serve.jobs import InvalidJobError

pytestmark = pytest.mark.fast

EASY = {"generator": "grid", "params": {"rows": 2, "cols": 3, "n_terminals": 3, "seed": 5}}
HARD = {"generator": "hypercube", "params": {"dim": 6, "perturbed": False}}


def grid_payload(seed):
    return {"generator": "grid", "params": {"rows": 2, "cols": 3, "n_terminals": 3, "seed": seed}}


def config(tmp_path, **kw):
    kw.setdefault("slots", 2)
    return ServeConfig(journal_path=str(tmp_path / "journal.jsonl"), **kw)


def stp(payload=EASY, **kw):
    return JobRequest(kind="stp", payload=payload, **kw)


def test_submit_solve_and_status(tmp_path):
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            assert view["state"] == "queued"
            final = client.wait(view["job_id"], timeout=60)
            out = final["outcome"]
            assert final["state"] == "succeeded"
            assert out["certified"] and out["solved"]
            assert out["gap"] == 0.0
            assert out["checks"]["failed"] == 0


def test_unknown_job_and_invalid_request_are_typed(tmp_path):
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(UnknownJobError):
                client.status("deadbeef")
            with pytest.raises(InvalidJobError):
                client.submit({"kind": "stp", "payload": {"generator": "nope"}})
            with pytest.raises(InvalidJobError):
                client.submit({"kind": "lp", "payload": {"generator": "grid"}})


def test_cancel_racing_completion_is_noop(tmp_path):
    """Cancelling after the job finished must not disturb the outcome."""
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            final = client.wait(view["job_id"], timeout=60)
            assert final["state"] == "succeeded"
            cancelled = client.cancel(view["job_id"])
            assert cancelled["noop"] is True
            assert cancelled["state"] == "succeeded"  # state untouched
            # and the outcome is still served
            assert client.status(view["job_id"])["outcome"]["certified"]


def test_cancel_running_job_discards_result(tmp_path):
    release = threading.Event()
    with daemon_in_thread(config(tmp_path)) as daemon:
        orig = daemon._solve

        def gated(record, budget):
            release.wait(timeout=30)
            return orig(record, budget)

        daemon._solve = gated
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            deadline = time.monotonic() + 10
            while client.status(view["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            resp = client.cancel(view["job_id"])
            assert resp.get("cancel_requested") is True
            release.set()
            final = client.wait(view["job_id"], timeout=30)
            assert final["state"] == "cancelled"
            assert "discarded" in final["outcome"]["detail"]


def test_cancel_queued_job(tmp_path):
    release = threading.Event()
    with daemon_in_thread(config(tmp_path, slots=1)) as daemon:
        orig = daemon._solve

        def gated(record, budget):
            release.wait(timeout=30)
            return orig(record, budget)

        daemon._solve = gated
        with ServeClient(port=daemon.port) as client:
            blocker = client.submit(stp())
            queued = client.submit(stp(grid_payload(seed=8)))
            resp = client.cancel(queued["job_id"])
            assert resp["state"] == "cancelled"
            release.set()
            final = client.wait(blocker["job_id"], timeout=60)
            assert final["state"] == "succeeded"
            # the cancelled job was never started
            view = client.status(queued["job_id"])
            assert view["state"] == "cancelled" and view["attempts"] == 0


def test_quota_exhaustion_returns_typed_rejection(tmp_path):
    cfg = config(
        tmp_path,
        slots=1,
        quotas={"small": TenantQuota(max_active=1, max_queued=1)},
    )
    release = threading.Event()
    with daemon_in_thread(cfg) as daemon:
        orig = daemon._solve

        def gated(record, budget):
            release.wait(timeout=30)
            return orig(record, budget)

        daemon._solve = gated
        with ServeClient(port=daemon.port) as client:
            first = client.submit(stp(tenant="small"))
            deadline = time.monotonic() + 10
            while client.status(first["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "first job never started"
                time.sleep(0.02)
            client.submit(stp(grid_payload(seed=7), tenant="small"))  # fills max_queued=1
            with pytest.raises(QuotaExceededError) as exc:
                client.submit(stp(grid_payload(seed=9), tenant="small"))
            assert exc.value.code == "quota_exceeded"
            assert exc.value.retry_after > 0
            # an unrelated tenant is still admitted
            other = client.submit(stp(tenant="other", seed=3))
            assert other["state"] == "queued"
            release.set()
            client.wait(first["job_id"], timeout=60)


def test_saturated_fleet_sheds_load_with_bounded_queue(tmp_path):
    cfg = config(tmp_path, slots=1, max_queue_depth=3)
    release = threading.Event()
    with daemon_in_thread(cfg) as daemon:
        orig = daemon._solve

        def gated(record, budget):
            release.wait(timeout=60)
            return orig(record, budget)

        daemon._solve = gated
        with ServeClient(port=daemon.port) as client:
            first = client.submit(stp(grid_payload(seed=0)))
            deadline = time.monotonic() + 10
            while client.status(first["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "first job never started"
                time.sleep(0.02)
            accepted = [first] + [
                client.submit(stp(grid_payload(seed=i))) for i in range(1, 4)
            ]  # 1 running + 3 queued = the whole bounded queue
            rejections = 0
            for i in range(4, 10):
                with pytest.raises(QueueFullError) as exc:
                    client.submit(stp(grid_payload(seed=i)))
                assert exc.value.retry_after > 0
                rejections += 1
            assert rejections == 6
            stats = client.stats()
            assert stats["queue_depth"] <= 3  # never unbounded
            assert stats["serve"]["jobs_rejected_queue_full"] == 6
            release.set()
            for view in accepted:
                final = client.wait(view["job_id"], timeout=120)
                assert final["state"] == "succeeded"


def test_deadline_expiry_serves_certified_gap(tmp_path):
    """The graceful-degradation contract: incumbent + dual bound + gap."""
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp(HARD, node_limit=2))
            final = client.wait(view["job_id"], timeout=120)
            out = final["outcome"]
            assert final["state"] == "degraded"
            assert out["certified"] is True
            assert not out["solved"]
            assert out["bound"] <= out["objective"]
            assert 0 < out["gap"] < 1
            assert "certified gap" in out["detail"]


def test_unverifiable_answer_is_failed_never_served(tmp_path):
    """A solver returning garbage must surface as FAILED with the reason."""
    with daemon_in_thread(config(tmp_path)) as daemon:
        def lying_solve(record, budget):
            # claims optimality with a solution that is not a tree and a
            # fabricated objective — the certificate check must refuse it
            return SimpleNamespace(
                incumbent=SimpleNamespace(value=1.0, payload={"edges": [0]}),
                dual_bound=1.0,
                solved=True,
            )

        daemon._solve = lying_solve
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            final = client.wait(view["job_id"], timeout=30)
            out = final["outcome"]
            assert final["state"] == "failed"
            assert out["certified"] is False
            assert out["solution_size"] == 0  # the bogus answer is not served
            assert "refused" in out["detail"]
            assert client.stats()["serve"]["verify_refusals"] == 1
            # and nothing was cached
            assert client.stats()["cache_size"] == 0


def test_solver_crash_terminates_job_as_failed(tmp_path):
    with daemon_in_thread(config(tmp_path)) as daemon:
        def crashing_solve(record, budget):
            raise RuntimeError("rank 0 segfaulted")

        daemon._solve = crashing_solve
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            final = client.wait(view["job_id"], timeout=30)
            assert final["state"] == "failed"
            assert "crashed" in final["outcome"]["detail"]


def test_cache_hit_serves_instantly_and_is_journaled(tmp_path):
    cfg = config(tmp_path)
    with daemon_in_thread(cfg) as daemon:
        with ServeClient(port=daemon.port) as client:
            first = client.submit(stp())
            client.wait(first["job_id"], timeout=60)
            repeat = client.submit(stp())
            assert repeat["state"] == "succeeded"
            assert repeat["outcome"]["from_cache"] is True
            assert client.stats()["serve"]["cache_hits"] == 1
            cached_id = repeat["job_id"]
    # the cache hit is journaled terminal: a restarted daemon still knows it
    with daemon_in_thread(cfg) as daemon2:
        with ServeClient(port=daemon2.port) as client:
            assert client.status(cached_id)["state"] == "succeeded"
            assert daemon2.stats.jobs_requeued == 0


def test_fingerprint_cache_hits_across_request_spellings(tmp_path):
    """A literal STP text and a generator spec of the same instance hit."""
    from repro.steiner.instances import grid_instance
    from repro.steiner.stp_io import write_stp

    graph = grid_instance(**EASY["params"])
    text = write_stp(graph)
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            first = client.submit(stp())
            client.wait(first["job_id"], timeout=60)
            literal = client.submit(stp(payload={"stp": text}))
            assert literal["outcome"]["from_cache"] is True


def _relabeled(graph, seed):
    """Isomorphic copy: permuted vertex labels, shuffled edge order."""
    import random

    from repro.steiner.graph import SteinerGraph

    rng = random.Random(seed)
    perm = list(range(graph.n))
    rng.shuffle(perm)
    twin = SteinerGraph.create(graph.n)
    eids = list(graph.alive_edges())
    rng.shuffle(eids)
    for eid in eids:
        u, v = graph.edge_endpoints(eid)
        twin.add_edge(perm[u], perm[v], graph.edge_cost(eid))
    for t in graph.terminals:
        twin.set_terminal(perm[int(t)])
    twin.fixed_cost = graph.fixed_cost
    return twin


def test_relabeled_isomorphic_instance_hits_cache_with_translated_solution(tmp_path):
    """Canonical fingerprints make the cache relabeling-invariant: an
    isomorphic copy of a solved instance is served from cache, with the
    stored tree translated into the copy's own edge ids."""
    from repro.steiner.instances import grid_instance
    from repro.steiner.stp_io import write_stp
    from repro.verify.steiner import check_steiner_tree

    graph = grid_instance(**EASY["params"])
    twin = _relabeled(graph, seed=7)
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            first = client.submit(stp(payload={"stp": write_stp(graph)}))
            done = client.wait(first["job_id"], timeout=60)
            assert done["state"] == "succeeded"
            hit = client.submit(stp(payload={"stp": write_stp(twin)}))
            assert hit["state"] == "succeeded"
            assert hit["outcome"]["from_cache"] is True
            assert client.stats()["serve"]["cache_hits"] == 1
            assert daemon.stats.cache_translation_failed == 0
            # the served tree must be valid on the *twin's* edge ids
            outcome = daemon.jobs[hit["job_id"]].outcome
            report = check_steiner_tree(twin, outcome.solution, outcome.objective)
            assert report.ok, report
            assert outcome.objective == pytest.approx(done["outcome"]["objective"])


def test_stream_yields_events_then_terminal_view(tmp_path):
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            items = list(client.stream(view["job_id"]))
        assert len(items) >= 2
        *events, tail = items
        assert tail["stream_end"] is True
        assert tail["state"] == "succeeded"
        assert all("event" in e for e in events)
        kinds = {e["event"]["kind"] for e in events}
        assert kinds  # real trace events came through the wire


def test_stats_endpoint_shape(tmp_path):
    with daemon_in_thread(config(tmp_path)) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(stp())
            client.wait(view["job_id"], timeout=60)
            stats = client.stats()
            assert stats["serve"]["jobs_succeeded"] == 1
            assert stats["slots"] == {"total": 2, "used": 0}
            assert "default" in stats["scheduler"]
            assert stats["job_seconds"]["count"] == 1
