"""Property suite for the ``repro.instances`` generator zoo.

Per family, over >= 20 seeded instances: structural invariants
(connectivity, terminal membership, positive weights, PSD-at-anchor for
the MISDP families), byte-identical regeneration per seed, and lossless
write -> parse round trips. Plus the reader/writer symmetry contract the
round trips exposed (truncation, id-range, self-loop, zero-terminal
handling) and the ``python -m repro.instances`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, ModelError
from repro.instances import (
    FAMILIES,
    generate_family,
    instance_text,
    stp_canonical,
    tiny_zoo,
    verify_roundtrip,
)
from repro.instances.misdp import anchor_point
from repro.instances.stp import _connected
from repro.instances.__main__ import main as instances_cli
from repro.steiner.graph import SteinerGraph
from repro.steiner.stp_io import parse_stp, write_stp

pytestmark = pytest.mark.fast


def _batch(family: str, min_instances: int = 20):
    """>= ``min_instances`` seeded instances spread over every config."""
    fam = FAMILIES[family]
    per_config = -(-min_instances // len(fam.configs))  # ceil
    return generate_family(family, seed=100, instances_per_config=per_config)


@pytest.mark.parametrize("family", [f for f in FAMILIES if FAMILIES[f].kind == "stp"])
class TestStpFamilies:
    def test_structural_invariants(self, family):
        batch = _batch(family)
        assert len(batch) >= 20
        for gi in batch:
            g = gi.instance
            assert g.num_alive_vertices >= 2, gi.name
            assert _connected(g), f"{gi.name} is not connected"
            terms = [int(t) for t in g.terminals]
            assert len(terms) >= 2, gi.name
            for t in terms:
                assert g.vertex_alive[t], f"{gi.name}: dead terminal {t}"
            for eid in g.alive_edges():
                assert g.edges[eid].cost > 0, f"{gi.name}: non-positive cost on edge {eid}"

    def test_byte_identical_regeneration(self, family):
        fam = FAMILIES[family]
        for config in fam.configs:
            a = generate_family(family, seed=7, configs=(config,))[0]
            b = generate_family(family, seed=7, configs=(config,))[0]
            assert instance_text(a) == instance_text(b)
            c = generate_family(family, seed=8, configs=(config,))[0]
            # a different seed must not silently alias the same instance
            assert instance_text(a) != instance_text(c) or stp_canonical(
                a.instance
            ) == stp_canonical(c.instance)

    def test_roundtrip(self, family):
        for gi in _batch(family):
            verify_roundtrip(gi)


@pytest.mark.parametrize("family", [f for f in FAMILIES if FAMILIES[f].kind == "misdp"])
class TestMisdpFamilies:
    def test_structural_invariants(self, family):
        batch = _batch(family)
        assert len(batch) >= 20
        for gi in batch:
            m = gi.instance
            y0 = anchor_point(m.num_vars, int(m.ub[0]), gi.seed)
            assert m.is_feasible(y0), f"{gi.name}: anchor point infeasible"
            for blk in m.blocks:
                eigs = np.linalg.eigvalsh(blk.evaluate(y0))
                assert eigs.min() > 0, f"{gi.name}: block {blk.name} not PD at anchor"
                assert np.allclose(blk.C, blk.C.T), gi.name
            assert list(m.integers) == list(range(m.num_vars)), gi.name
            assert np.all(np.isfinite(m.lb)) and np.all(np.isfinite(m.ub)), gi.name

    def test_byte_identical_regeneration(self, family):
        fam = FAMILIES[family]
        for config in fam.configs:
            a = generate_family(family, seed=7, configs=(config,))[0]
            b = generate_family(family, seed=7, configs=(config,))[0]
            assert instance_text(a) == instance_text(b)

    def test_roundtrip(self, family):
        for gi in _batch(family):
            verify_roundtrip(gi)


class TestRegistry:
    def test_unknown_family_raises(self):
        with pytest.raises(ModelError, match="unknown instance family"):
            generate_family("no_such_family")

    def test_labels_unique_within_batch(self):
        for family in FAMILIES:
            names = [gi.name for gi in _batch(family)]
            assert len(names) == len(set(names))

    def test_tiny_zoo_covers_every_family(self):
        zoo = tiny_zoo()
        assert {gi.family for gi in zoo} == set(FAMILIES)
        # tiny instances must stay brute-force-able
        for gi in zoo:
            if gi.kind == "stp":
                g = gi.instance
                nonterms = g.num_alive_vertices - g.num_terminals
                assert nonterms <= 8, f"{gi.name} too large for subset enumeration"


class TestParserSymmetry:
    """The latent reader/writer asymmetries the round-trip work exposed."""

    def _graph_section(self, edge_lines: list[str], nodes: int = 4, declared: int | None = None):
        n_e = len(edge_lines) if declared is None else declared
        body = "\n".join(edge_lines)
        return (
            f"SECTION Graph\nNodes {nodes}\nEdges {n_e}\n{body}\nEND\n"
            "SECTION Terminals\nTerminals 1\nT 1\nEND\n"
        )

    def test_writer_rejects_zero_terminals(self):
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        with pytest.raises(GraphError, match="no terminals"):
            write_stp(g)

    def test_truncated_edge_section_rejected(self):
        text = self._graph_section(["E 1 2 1"], declared=3)
        with pytest.raises(GraphError, match="declares 3 edges but lists 1"):
            parse_stp(text)

    def test_truncated_terminal_section_rejected(self):
        text = (
            "SECTION Graph\nNodes 4\nEdges 1\nE 1 2 1\nEND\n"
            "SECTION Terminals\nTerminals 2\nT 1\nEND\n"
        )
        with pytest.raises(GraphError, match="declares 2 terminals but lists 1"):
            parse_stp(text)

    @pytest.mark.parametrize("line", ["E 0 2 1", "E 2 5 1", "E -1 2 1"])
    def test_out_of_range_edge_ids_rejected_with_1based_message(self, line):
        with pytest.raises(GraphError, match=r"\[1, 4\].*1-based"):
            parse_stp(self._graph_section([line]))

    def test_out_of_range_terminal_rejected(self):
        text = (
            "SECTION Graph\nNodes 4\nEdges 1\nE 1 2 1\nEND\n"
            "SECTION Terminals\nTerminals 1\nT 9\nEND\n"
        )
        with pytest.raises(GraphError, match=r"terminal 9 outside \[1, 4\]"):
            parse_stp(text)

    def test_self_loop_rejected_not_dropped(self):
        with pytest.raises(GraphError, match="self-loop"):
            parse_stp(self._graph_section(["E 1 1 5"]))

    def test_writer_output_is_parse_fixed_point(self):
        gi = generate_family("grid_holes", seed=3)[0]  # has dead vertices -> compaction
        _sfx, text = instance_text(gi)
        assert write_stp(parse_stp(text), name=gi.name) == text


class TestCli:
    def test_generate_is_deterministic_and_parseable(self, tmp_path, capsys):
        out1 = tmp_path / "a"
        out2 = tmp_path / "b"
        for out in (out1, out2):
            rc = instances_cli(
                ["generate", "--family", "hypercube", "--seed", "42",
                 "--dimensions", "4", "5", "--output_dir", str(out)]
            )
            assert rc == 0
        files1 = sorted(out1.glob("*.stp"))
        assert files1, "CLI wrote no instances"
        for f1 in files1:
            f2 = out2 / f1.name
            assert f1.read_bytes() == f2.read_bytes()
            g = parse_stp(f1.read_text())
            assert g.num_terminals >= 2

    def test_generate_misdp_family(self, tmp_path):
        rc = instances_cli(
            ["generate", "--family", "misdp_random", "--seed", "7", "--output_dir", str(tmp_path)]
        )
        assert rc == 0
        assert sorted(tmp_path.glob("*.cbf"))

    def test_list_families(self, capsys):
        assert instances_cli(["list"]) == 0
        out = capsys.readouterr().out
        for fam in FAMILIES:
            assert fam in out

    def test_dimensions_flag_rejected_for_other_families(self, capsys):
        rc = instances_cli(
            ["generate", "--family", "pace", "--dimensions", "4", "--output_dir", "/tmp/x"]
        )
        assert rc == 2
