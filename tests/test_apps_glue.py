"""The paper's headline claim: parallelization glue stays under 200 lines.

The paper reports 173 LoC for stp_plugins.cpp and 106 for
misdp_plugins.cpp (cloc, excluding blanks and comments); this test holds
our Python glue to the same budget.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro.apps.misdp_plugins as misdp_mod
import repro.apps.stp_plugins as stp_mod


def cloc_style_count(path: Path) -> int:
    """Count non-blank, non-comment, non-docstring lines (cloc-like)."""
    source = path.read_text()
    tree = ast.parse(source)
    doc_lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
                if isinstance(body[0].value.value, str):
                    for ln in range(body[0].lineno, body[0].end_lineno + 1):
                        doc_lines.add(ln)
    count = 0
    for i, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or i in doc_lines:
            continue
        count += 1
    return count


def test_stp_glue_under_200_lines():
    n = cloc_style_count(Path(stp_mod.__file__))
    assert n < 200, f"stp_plugins.py has {n} code lines (paper: 173)"


def test_misdp_glue_under_200_lines():
    n = cloc_style_count(Path(misdp_mod.__file__))
    assert n < 200, f"misdp_plugins.py has {n} code lines (paper: 106)"


def test_combined_claim():
    total_stp = cloc_style_count(Path(stp_mod.__file__))
    total_misdp = cloc_style_count(Path(misdp_mod.__file__))
    # "the additional effort needed to parallelize their sequential
    # versions is less than 200 lines of code" — per application
    assert max(total_stp, total_misdp) < 200
