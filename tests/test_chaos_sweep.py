"""Randomized chaos sweep over the full UG stack (the nightly CI job).

Each sweep seed derives a :class:`FaultPlan` (solver crashes, message
drops) *and* kernel-level chaos (an always-failing heuristic injected
into every subproblem's CIP solver, plus intermittent singular bases in
the simplex backend) and then checks the PR 1 invariants:

* no false optimality claim — a solved run must match the sequential
  reference optimum;
* the dual bound never exceeds the primal bound;
* checkpoints written during the storm stay replayable — a clean
  restart from the last one still proves the optimum;
* the whole run (including quarantine / failover events) replays
  bit-identically under the SimEngine for the same seed.

The tier-1 suite keeps the sweep small; the nightly ``chaos-sweep`` CI
job widens it via ``CHAOS_SWEEP_SEEDS`` / ``CHAOS_SWEEP_BASE``.
"""

from __future__ import annotations

import math
import os

import pytest
import scipy.linalg as sla

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.cip.plugins import Heuristic
from repro.steiner.instances import hypercube_instance
from repro.steiner.solver import SteinerSolver
from repro.ug import ug
from repro.ug.checkpoint import load_checkpoint
from repro.ug.config import UGConfig
from repro.ug.faults import FaultPlan

pytestmark = pytest.mark.chaos

N_SEEDS = int(os.environ.get("CHAOS_SWEEP_SEEDS", "1"))
BASE_SEED = int(os.environ.get("CHAOS_SWEEP_BASE", "0")) % 100_000


class ChaosHeuristic(Heuristic):
    """Injected into every subproblem kernel; always fails."""

    name = "chaos_heur"
    priority = 50

    def run(self, solver, node, x):
        raise RuntimeError("chaos heuristic failure")


class ChaosSteinerPlugins(SteinerUserPlugins):
    """SteinerJack glue that sabotages each kernel it creates."""

    def create_handle(self, instance, node, params, seed, incumbent):
        handle = super().create_handle(instance, node, params, seed, incumbent)
        if handle.solver.cip is not None:
            handle.solver.cip.include_heuristic(ChaosHeuristic())
        return handle


class FlakyLUFactor:
    """Deterministically fails every ``period``-th factorization."""

    def __init__(self, period: int) -> None:
        self.period = period
        self.calls = 0
        self.real = sla.lu_factor

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls % self.period == 0:
            raise sla.LinAlgError("chaos-injected singular basis")
        return self.real(*args, **kwargs)


@pytest.fixture(scope="module")
def instance():
    # big enough that instance-level presolve cannot solve it outright,
    # so every subproblem exercises a real CIP kernel under chaos
    return hypercube_instance(5, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def reference_optimum(instance):
    return SteinerSolver(instance.copy(), seed=0).solve(node_limit=2000).cost


def _chaos_run(instance, seed: int, checkpoint_path: str, monkeypatch):
    plan = FaultPlan.random_plan(seed, n_solvers=4, n_crashes=1, n_message_drops=1)
    config = UGConfig(
        time_limit=1e9,
        objective_epsilon=1 - 1e-6,
        trace_enabled=True,
        heartbeat_timeout=0.5,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=0.1,
        checkpoint_retain=2,
        fault_plan=plan,
    )
    params = ParamSet(lp_backend="simplex", heur_frequency=1, plugin_max_failures=2)
    monkeypatch.setattr(sla, "lu_factor", FlakyLUFactor(period=7))
    try:
        return ug(
            instance.copy(),
            ChaosSteinerPlugins(),
            n_solvers=4,
            comm="sim",
            params=params,
            config=config,
            wall_clock_limit=120,
        ).run()
    finally:
        monkeypatch.undo()


@pytest.mark.parametrize("offset", range(N_SEEDS))
def test_chaos_seed_upholds_invariants(offset, instance, reference_optimum, tmp_path, monkeypatch):
    seed = BASE_SEED + offset
    path = str(tmp_path / f"s{seed}" / "cp.json")
    r = _chaos_run(instance, seed, path, monkeypatch)

    # 1. no false optimality claim
    if r.solved:
        assert r.objective == pytest.approx(reference_optimum)

    # 2. dual never exceeds primal
    primal = r.stats.primal_final
    dual = r.stats.dual_final
    if math.isfinite(primal) and math.isfinite(dual):
        assert dual <= primal + 1e-6

    # 3. the kernel chaos actually fired and was contained, not fatal
    kinds = {e.kind for e in r.trace.events()}
    assert "plugin_failure" in kinds
    assert r.stats.solver_failures <= 1  # only the planned crash, no cascade

    # 4. checkpoints written mid-storm are replayable: a clean restart
    # from the last one still proves the reference optimum
    if r.stats.checkpoints_written >= 1:
        cp = load_checkpoint(path)
        assert "dual_bound" in cp.meta
        clean = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6)
        r2 = ug(
            instance.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
            config=clean, wall_clock_limit=120,
        ).run(restart_from=path)
        assert r2.solved
        assert r2.objective == pytest.approx(reference_optimum)


def test_chaos_run_replays_bit_identically(instance, tmp_path, monkeypatch):
    def once(tag: str) -> str:
        path = str(tmp_path / tag / "cp.json")
        r = _chaos_run(instance, BASE_SEED, path, monkeypatch)
        return r.trace.to_jsonl()

    first, second = once("a"), once("b")
    assert first == second
    assert "plugin_failure" in first  # the kernel events are part of the replay
