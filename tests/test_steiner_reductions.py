"""Property tests: every reduction preserves the optimal value and
solutions expand back to valid original-graph trees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.steiner.graph import SteinerGraph
from repro.steiner.instances import hypercube_instance, random_instance
from repro.steiner.mst import mst_on_subgraph, prune_steiner_tree
from repro.steiner.reductions import reduce_graph
from repro.steiner.reductions.basic import (
    adjacent_terminals,
    degree_tests,
    parallel_edges,
    terminal_degree1,
)
from repro.steiner.reductions.bound_based import bound_based_tests
from repro.steiner.reductions.extended import extended_edge_test
from repro.steiner.reductions.sd import sd_edge_test
from repro.steiner.validation import validate_tree
from tests.conftest import brute_force_steiner


def reduced_optimum(graph: SteinerGraph) -> float:
    """Brute-force optimum of a reduced graph plus its fixed cost."""
    if graph.num_terminals <= 1:
        return graph.fixed_cost
    return graph.fixed_cost + brute_force_steiner(graph)


REDUCTIONS = {
    "degree": degree_tests,
    "terminal1": terminal_degree1,
    "adjacent_terminals": adjacent_terminals,
    "parallel": parallel_edges,
    "sd": sd_edge_test,
    "bound": bound_based_tests,
    "extended": extended_edge_test,
}


@pytest.mark.parametrize("name", sorted(REDUCTIONS))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_single_reduction_preserves_optimum(name, seed):
    g = random_instance(8, 13, 3, seed=seed)
    opt = brute_force_steiner(g)
    reduced = g.copy()
    REDUCTIONS[name](reduced)
    assert reduced_optimum(reduced) == pytest.approx(opt)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_full_pipeline_preserves_optimum(seed):
    g = random_instance(9, 16, 4, seed=seed)
    opt = brute_force_steiner(g)
    reduced = g.copy()
    stats = reduce_graph(reduced, use_extended=True, seed=seed)
    assert stats.total >= 0
    assert reduced_optimum(reduced) == pytest.approx(opt)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_expanded_solution_is_valid_original_tree(seed):
    g = random_instance(10, 18, 4, seed=seed)
    original = g.copy()
    opt = brute_force_steiner(g)
    reduced = g.copy()
    reduce_graph(reduced, use_extended=True, seed=seed)
    if reduced.num_terminals <= 1:
        edges, cost = reduced.expand_solution([])
    else:
        # brute-force solve the reduced graph, then expand
        terms = [int(t) for t in reduced.terminals]
        best_edges, best_cost = None, None
        import itertools

        nonterms = [int(v) for v in reduced.alive_vertices() if not reduced.is_terminal(int(v))]
        for k in range(len(nonterms) + 1):
            for sub in itertools.combinations(nonterms, k):
                r = mst_on_subgraph(reduced, set(terms) | set(sub))
                if r is None:
                    continue
                pruned, cost = prune_steiner_tree(reduced, r[0])
                if best_cost is None or cost < best_cost:
                    best_edges, best_cost = pruned, cost
        edges, cost = reduced.expand_solution(best_edges)
    checked = validate_tree(original, edges, original=True)
    assert checked == pytest.approx(cost)
    assert cost == pytest.approx(opt)


def test_pipeline_respects_flags():
    g = random_instance(12, 25, 4, seed=9)
    g1 = g.copy()
    s1 = reduce_graph(g1, use_sd=False, use_bound_based=False, use_extended=False)
    assert s1.sd == 0 and s1.bound == 0 and s1.extended == 0


def test_unit_hypercube_resists_reduction():
    """The PUC hallmark: presolve removes (almost) nothing on hc*u."""
    g = hypercube_instance(5, perturbed=False, seed=0)
    before = g.num_alive_edges
    stats = reduce_graph(g, use_extended=True, seed=0)
    assert g.num_alive_edges >= 0.9 * before


def test_stats_bookkeeping():
    g = random_instance(10, 20, 3, seed=1)
    stats = reduce_graph(g.copy(), seed=1)
    assert stats.total == stats.degree + stats.terminal + stats.parallel + stats.sd + stats.bound + stats.extended
    assert stats.rounds == len(stats.by_round)
