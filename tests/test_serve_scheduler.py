"""Admission control and deficit-round-robin fair share."""

from __future__ import annotations

import pytest

from repro.serve.jobs import JobRecord, JobRequest, QueueFullError, QuotaExceededError
from repro.serve.scheduler import FairShareScheduler, TenantQuota

pytestmark = pytest.mark.fast


def job(tenant="default", n_solvers=1, jid=None):
    req = JobRequest(
        kind="stp",
        payload={"generator": "grid", "params": {"rows": 2, "cols": 2}},
        tenant=tenant,
        n_solvers=n_solvers,
    )
    jid = jid or f"{tenant}-{id(req):x}"
    return JobRecord(job_id=jid, request=req)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_queue_full_is_typed_with_retry_after():
    sched = FairShareScheduler(max_queue_depth=2)
    sched.submit(job(jid="a"))
    sched.submit(job(jid="b"))
    with pytest.raises(QueueFullError) as exc:
        sched.submit(job(jid="c"))
    assert exc.value.code == "queue_full"
    assert exc.value.retry_after > 0
    assert sched.depth == 2  # the rejected job was never queued (load shed)


def test_tenant_quota_is_typed_and_per_tenant():
    sched = FairShareScheduler(
        max_queue_depth=100, quotas={"small": TenantQuota(max_queued=1)}
    )
    sched.submit(job("small", jid="s1"))
    with pytest.raises(QuotaExceededError) as exc:
        sched.submit(job("small", jid="s2"))
    assert exc.value.code == "quota_exceeded"
    assert exc.value.retry_after > 0
    # another tenant is unaffected by the small tenant's quota
    sched.submit(job("big", jid="b1"))
    assert sched.depth == 2


def test_retry_after_scales_with_backlog():
    sched = FairShareScheduler(max_queue_depth=100)
    sched.observe_service(2.0)  # one observed 2s job
    empty = sched.retry_after(slots=1)
    for i in range(10):
        sched.submit(job(jid=f"j{i}"))
    assert sched.retry_after(slots=1) > empty
    assert sched.retry_after(slots=4) < sched.retry_after(slots=1)


def test_drr_fair_share_respects_weights():
    """Under saturation, drained work converges to the weight ratio."""
    sched = FairShareScheduler(
        max_queue_depth=1000,
        default_quota=TenantQuota(max_active=1000, max_queued=1000),
        quotas={
            "gold": TenantQuota(max_active=1000, max_queued=1000, weight=2.0),
            "bronze": TenantQuota(max_active=1000, max_queued=1000, weight=1.0),
        },
    )
    for i in range(60):
        sched.submit(job("gold", jid=f"g{i}"))
        sched.submit(job("bronze", jid=f"b{i}"))
    drained = {"gold": 0, "bronze": 0}
    for _ in range(45):
        rec = sched.next_job(free_slots=1)
        assert rec is not None
        drained[rec.request.tenant] += 1
    # 2:1 weights -> 30/15 exactly under DRR with unit costs
    assert drained["gold"] == 30
    assert drained["bronze"] == 15


def test_drr_accounts_job_cost_in_slots():
    sched = FairShareScheduler(
        max_queue_depth=100, default_quota=TenantQuota(max_active=100, max_queued=100)
    )
    sched.submit(job("t", n_solvers=4, jid="wide"))
    sched.submit(job("t", n_solvers=1, jid="narrow"))
    # a 4-slot job cannot start on 2 free slots; DRR must not deadlock on it
    assert sched.next_job(free_slots=2) is None
    rec = sched.next_job(free_slots=4)
    assert rec is not None and rec.job_id == "wide"


def test_costly_job_accumulates_deficit_over_rounds():
    sched = FairShareScheduler(
        max_queue_depth=100,
        default_quota=TenantQuota(max_active=100, max_queued=100),
        quantum=1.0,
    )
    sched.submit(job("t", n_solvers=3, jid="wide"))
    rec = sched.next_job(free_slots=8)
    assert rec is not None and rec.job_id == "wide"  # DRR loops until deficit >= 3


def test_max_active_blocks_dispatch_until_release():
    sched = FairShareScheduler(
        max_queue_depth=100, quotas={"t": TenantQuota(max_active=1, max_queued=10)}
    )
    sched.submit(job("t", jid="one"))
    sched.submit(job("t", jid="two"))
    first = sched.next_job(free_slots=4)
    assert first is not None
    assert sched.next_job(free_slots=4) is None  # tenant at max_active
    sched.release("t", duration=0.5)
    second = sched.next_job(free_slots=4)
    assert second is not None and second.job_id == "two"


def test_emptied_queue_forfeits_banked_deficit():
    sched = FairShareScheduler(
        max_queue_depth=100, default_quota=TenantQuota(max_active=100, max_queued=100)
    )
    sched.submit(job("t", jid="only"))
    assert sched.next_job(free_slots=1) is not None
    assert sched._deficit["t"] == 0.0  # no banked credit while idle


def test_cancel_removes_queued_job():
    sched = FairShareScheduler(max_queue_depth=10)
    sched.submit(job("t", jid="target"))
    sched.submit(job("t", jid="other"))
    removed = sched.cancel("target")
    assert removed is not None and removed.job_id == "target"
    assert sched.depth == 1
    assert sched.cancel("target") is None  # already gone


def test_force_enqueue_bypasses_admission():
    sched = FairShareScheduler(max_queue_depth=1)
    sched.submit(job("t", jid="a"))
    with pytest.raises(QueueFullError):
        sched.submit(job("t", jid="b"))
    sched.force_enqueue(job("t", jid="recovered"))  # crash recovery path
    assert sched.depth == 2


def test_snapshot_shape():
    sched = FairShareScheduler(max_queue_depth=10)
    sched.submit(job("t", jid="a"))
    snap = sched.snapshot()
    assert snap["t"]["queued"] == 1
    assert snap["t"]["active"] == 0
    assert snap["t"]["weight"] == 1.0


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(max_active=0)
    with pytest.raises(ValueError):
        TenantQuota(weight=0.0)
    with pytest.raises(ValueError):
        FairShareScheduler(max_queue_depth=0)
