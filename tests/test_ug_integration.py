"""Integration tests: full ug[SteinerJack,*] and ug[MISDP,*] runs."""

from __future__ import annotations

import math

import pytest

from repro.apps.misdp_plugins import MISDPUserPlugins
from repro.apps.stp_plugins import SteinerUserPlugins
from repro.exceptions import CommError
from repro.sdp.instances import cardinality_least_squares, min_k_partitioning
from repro.sdp.solver import MISDPSolver
from repro.steiner.instances import hypercube_instance, random_instance
from repro.steiner.solver import SteinerSolver
from repro.steiner.validation import validate_tree
from repro.ug import ug
from repro.ug.checkpoint import load_checkpoint
from repro.ug.config import UGConfig


@pytest.fixture(scope="module")
def hc4():
    return hypercube_instance(4, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc4_optimum(hc4):
    return SteinerSolver(hc4.copy(), seed=0).solve(node_limit=500).cost


STP_CFG = dict(time_limit=1e9, objective_epsilon=1 - 1e-6)


class TestSteinerSim:
    @pytest.mark.parametrize("n", [1, 3])
    def test_matches_sequential(self, hc4, hc4_optimum, n):
        s = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=n, comm="sim",
               config=UGConfig(**STP_CFG), wall_clock_limit=120)
        res = s.run()
        assert res.solved
        assert res.objective == pytest.approx(hc4_optimum)
        assert res.stats.nodes_generated >= 1
        assert res.stats.transferred_nodes >= 1

    def test_solution_payload_is_valid_tree(self, hc4, hc4_optimum):
        s = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=2, comm="sim",
               config=UGConfig(**STP_CFG), wall_clock_limit=120)
        res = s.run()
        edges = res.incumbent.payload["edges"]
        assert validate_tree(hc4, edges, original=True) == pytest.approx(res.objective)

    def test_deterministic(self, hc4):
        def one():
            s = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
                   config=UGConfig(**STP_CFG), seed=5, wall_clock_limit=120)
            r = s.run()
            return (r.objective, r.stats.computing_time, r.stats.nodes_generated,
                    r.stats.transferred_nodes)

        assert one() == one()

    def test_presolved_trivially_at_lc(self):
        g = random_instance(10, 18, 3, seed=0)  # presolve solves it outright
        s = ug(g, SteinerUserPlugins(), n_solvers=2, comm="sim",
               config=UGConfig(**STP_CFG), wall_clock_limit=60)
        res = s.run()
        assert res.solved
        seq = SteinerSolver(g.copy(), seed=0).solve()
        assert res.objective == pytest.approx(seq.cost)

    def test_naming(self, hc4):
        assert ug(hc4, SteinerUserPlugins(), 2, comm="sim").name == "ug[SteinerJack, SimMPI]"
        assert ug(hc4, SteinerUserPlugins(), 2, comm="threads").name == "ug[SteinerJack, C++11]"
        with pytest.raises(CommError):
            ug(hc4, SteinerUserPlugins(), 2, comm="smoke")
        with pytest.raises(CommError):
            ug(hc4, SteinerUserPlugins(), 0)

    def test_time_limit_interrupt(self):
        g = hypercube_instance(5, perturbed=False, seed=1)
        cfg = UGConfig(time_limit=0.2, objective_epsilon=1 - 1e-6)
        res = ug(g, SteinerUserPlugins(), n_solvers=2, comm="sim", config=cfg,
                 wall_clock_limit=60).run()
        assert res.stats.computing_time <= 0.5


class TestSteinerThreads:
    def test_matches_sequential(self, hc4, hc4_optimum):
        s = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=2, comm="threads",
               config=UGConfig(time_limit=90, objective_epsilon=1 - 1e-6))
        res = s.run()
        assert res.objective == pytest.approx(hc4_optimum)


class TestCheckpointRestart:
    def test_restart_completes(self, tmp_path):
        g = hypercube_instance(5, perturbed=False, seed=1)
        path = str(tmp_path / "cp.json")
        cfg = UGConfig(time_limit=0.3, checkpoint_path=path, checkpoint_interval=0.05,
                       objective_epsilon=1 - 1e-6)
        r1 = ug(g.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim", config=cfg,
                wall_clock_limit=90).run()
        cp = load_checkpoint(path)
        # primitive-node collapse: saved set never exceeds the open frontier
        assert len(cp.nodes) <= max(r1.stats.open_nodes_final, 1)
        cfg2 = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6)
        r2 = ug(g.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim", config=cfg2,
                wall_clock_limit=120).run(restart_from=path)
        assert r2.solved
        seq = SteinerSolver(g.copy(), seed=0).solve()
        assert r2.objective == pytest.approx(seq.cost)


class TestRacing:
    def test_steiner_racing(self, hc4, hc4_optimum):
        cfg = UGConfig(ramp_up="racing", racing_deadline=0.05,
                       racing_open_node_threshold=8, time_limit=1e9,
                       objective_epsilon=1 - 1e-6)
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=4, comm="sim",
                 config=cfg, wall_clock_limit=120).run()
        assert res.objective == pytest.approx(hc4_optimum)
        # either a winner was declared or a racer finished outright
        assert res.stats.racing_winner is not None or res.stats.solved_in_racing

    def test_misdp_racing_mixes_approaches(self):
        m = cardinality_least_squares(n_features=4, n_samples=5, seed=2)
        plugins = MISDPUserPlugins()
        sets = plugins.racing_param_sets(6, __import__("repro.cip.params", fromlist=["ParamSet"]).ParamSet())
        approaches = [s.get_extra("misdp/approach") for s in sets]
        assert approaches == ["sdp", "lp", "sdp", "lp", "sdp", "lp"]

    def test_misdp_racing_run(self):
        m = min_k_partitioning(n=5, k=2, seed=3)
        seq = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=2000, time_limit=90)
        cfg = UGConfig(ramp_up="racing", racing_deadline=0.2, time_limit=1e9,
                       objective_epsilon=1 - 1e-6)
        res = ug(m, MISDPUserPlugins(), n_solvers=4, comm="sim", config=cfg,
                 wall_clock_limit=120).run()
        assert -res.objective == pytest.approx(seq.objective, abs=1e-3)


class TestStatistics:
    def test_table1_quantities_present(self, hc4):
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
                 config=UGConfig(**STP_CFG), wall_clock_limit=120).run()
        st = res.stats
        assert st.root_time > 0
        assert st.max_active_solvers >= 1
        assert st.first_max_active_time >= 0
        assert 0.0 <= st.idle_ratio <= 1.0
        assert st.computing_time > 0
        assert math.isfinite(st.primal_final)
