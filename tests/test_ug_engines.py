"""Engine-level tests: virtual-time accounting and thread liveness."""

from __future__ import annotations

import pytest

from repro.cip.params import ParamSet
from repro.ug.config import UGConfig
from repro.ug.engines import SimEngine, ThreadEngine
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.para_solution import ParaSolution
from repro.ug.para_solver import ParaSolver
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


class CountdownHandle(SolverHandle):
    """Processes ``n`` nodes of fixed work, then finishes with a solution."""

    def __init__(self, n: int, work: float, value: float):
        self.remaining = n
        self.work = work
        self.value = value

    def step(self) -> HandleStep:
        self.remaining -= 1
        done = self.remaining <= 0
        sols = [ParaSolution(self.value)] if done else []
        return HandleStep(done, self.work, self.value - 1.0, self.remaining, sols, 1)

    def extract_para_node(self):
        return None

    def inject_incumbent_value(self, value: float) -> None:
        pass

    def dual_bound(self) -> float:
        return self.value - 1.0

    def n_open(self) -> int:
        return self.remaining


class CountdownPlugins(UserPlugins):
    base_solver_name = "Countdown"

    def __init__(self, n=10, work=0.01, value=5.0):
        self.n, self.work, self.value = n, work, value

    def create_handle(self, instance, node, params, seed, incumbent):
        return CountdownHandle(self.n, self.work, self.value)


def build(engine_cls, n_solvers=2, plugins=None, **cfg):
    config = UGConfig(**cfg)
    lc = LoadCoordinator("inst", plugins or CountdownPlugins(), ParamSet(), config, n_solvers)
    solvers = {
        r: ParaSolver(r, lc.instance, lc.user_plugins, ParamSet(), 0,
                      status_interval_work=config.status_interval_work)
        for r in range(1, n_solvers + 1)
    }
    return engine_cls(lc, solvers, config), lc


class TestSimEngine:
    def test_virtual_time_matches_work(self):
        engine, lc = build(SimEngine, n_solvers=1)
        engine.run()
        # 10 nodes x 0.01 work, plus message latencies
        assert lc.stats.computing_time == pytest.approx(0.1, abs=0.02)
        assert lc.incumbent.value == 5.0
        assert lc.finished

    def test_deterministic_across_runs(self):
        def once():
            engine, lc = build(SimEngine, n_solvers=3)
            engine.run()
            return (lc.stats.computing_time, lc.stats.nodes_generated, lc.stats.transferred_nodes)

        assert once() == once()

    def test_time_limit_interrupts(self):
        engine, lc = build(SimEngine, n_solvers=1, time_limit=0.03,
                           plugins=CountdownPlugins(n=1000, work=0.01))
        engine.run()
        assert lc.finished
        assert lc.stats.computing_time <= 0.1

    def test_node_limit_interrupts(self):
        engine, lc = build(SimEngine, n_solvers=1, node_limit=3,
                           plugins=CountdownPlugins(n=1000, work=0.01))
        engine.run()
        assert lc.finished
        assert lc.stats.nodes_generated <= 20

    def test_idle_ratio_with_single_worker(self):
        engine, lc = build(SimEngine, n_solvers=4)  # only rank 1 gets work
        engine.run()
        assert lc.stats.idle_ratio > 0.5  # three solvers idle throughout


    def test_node_limit_interrupt_writes_checkpoint(self, tmp_path):
        path = str(tmp_path / "cp.json")
        engine, lc = build(SimEngine, n_solvers=1, node_limit=3, checkpoint_path=path,
                           checkpoint_interval=1e9,  # only the interrupt write
                           plugins=CountdownPlugins(n=1000, work=0.01))
        engine.run()
        assert lc.finished
        assert lc.stats.checkpoints_written >= 1


class TestThreadEngine:
    def test_runs_and_terminates(self):
        engine, lc = build(ThreadEngine, n_solvers=2, time_limit=30.0)
        engine.run()
        assert lc.finished
        assert lc.incumbent is not None and lc.incumbent.value == 5.0

    def test_time_limit(self):
        engine, lc = build(ThreadEngine, n_solvers=1, time_limit=0.5,
                           plugins=CountdownPlugins(n=10**9, work=0.0))
        engine.run()
        assert lc.finished

    def test_node_limit_interrupts(self):
        engine, lc = build(ThreadEngine, n_solvers=2, time_limit=30.0, node_limit=5,
                           plugins=CountdownPlugins(n=10**9, work=0.0))
        engine.run()
        assert lc.finished
        assert lc.stats.nodes_generated >= 1

    def test_idle_solver_blocks_without_busy_wait(self):
        # an idle solver must sit in a blocking queue get (timeout path), not
        # spin: with one worker and a tiny job the run ends promptly and the
        # second solver records (almost) no busy time
        engine, lc = build(ThreadEngine, n_solvers=2, time_limit=30.0,
                           plugins=CountdownPlugins(n=3, work=0.0))
        engine.run()
        assert lc.finished
        assert lc.stats.solver_busy[2] == pytest.approx(0.0, abs=0.05)
