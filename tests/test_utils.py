"""Tests for repro.utils: tolerances, statistics, RNG, timing."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    DEFAULT_TOL,
    Stopwatch,
    Tolerances,
    arithmetic_mean,
    make_rng,
    shifted_geometric_mean,
    spawn_seeds,
)


class TestTolerances:
    def test_defaults_reasonable(self):
        assert DEFAULT_TOL.eps < DEFAULT_TOL.feas <= 1e-5

    def test_is_integral(self):
        assert DEFAULT_TOL.is_integral(3.0)
        assert DEFAULT_TOL.is_integral(2.9999999)
        assert not DEFAULT_TOL.is_integral(2.5)

    def test_is_zero(self):
        assert DEFAULT_TOL.is_zero(1e-12)
        assert not DEFAULT_TOL.is_zero(1e-3)

    def test_rel_gap_symmetric_zero(self):
        assert DEFAULT_TOL.rel_gap(5.0, 5.0) == 0.0

    def test_rel_gap_normalised(self):
        assert DEFAULT_TOL.rel_gap(110.0, 100.0) == pytest.approx(10.0 / 110.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_TOL.eps = 1.0  # type: ignore[misc]

    def test_custom(self):
        t = Tolerances(integrality=0.1)
        assert t.is_integral(2.95)


class TestShiftedGeomean:
    def test_matches_paper_definition(self):
        vals = [1.0, 10.0, 100.0]
        expected = math.exp(sum(math.log(v + 10) for v in vals) / 3) - 10
        assert shifted_geometric_mean(vals) == pytest.approx(expected)

    def test_zero_shift_is_geomean(self):
        assert shifted_geometric_mean([4.0, 9.0], shift=0.0) == pytest.approx(6.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            shifted_geometric_mean([])

    def test_invalid_shift_raises(self):
        with pytest.raises(ValueError):
            shifted_geometric_mean([0.5], shift=-1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30))
    def test_between_min_and_max(self, vals):
        g = shifted_geometric_mean(vals)
        assert min(vals) - 1e-6 <= g <= max(vals) + 1e-6

    @given(st.floats(min_value=0.0, max_value=1e5), st.integers(min_value=1, max_value=10))
    def test_constant_list_is_identity(self, v, n):
        assert shifted_geometric_mean([v] * n) == pytest.approx(v, abs=1e-6)

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestRng:
    def test_deterministic(self):
        assert make_rng(7).integers(0, 100, 5).tolist() == make_rng(7).integers(0, 100, 5).tolist()

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(42, 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5
        assert seeds == spawn_seeds(42, 5)

    def test_spawn_seeds_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        sw.stop()
        first = sw.elapsed
        assert first >= 0.009
        sw.start()
        time.sleep(0.01)
        sw.stop()
        assert sw.elapsed > first

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004
        assert not sw.running

    def test_reset(self):
        sw = Stopwatch()
        sw.start()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_double_start_is_noop(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        sw.stop()
        assert not sw.running
