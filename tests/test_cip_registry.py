"""PluginRegistry: ordering, position hooks, whitelists, views, validation.

The registry is the refactored spine of the CIP kernel — these tests pin
its contract: deterministic ``(position, -priority, arrival)`` ordering,
the live ``KindView`` back-compat surface, quarantine- and
whitelist-filtered iteration, the plugin-name catalog behind ``ParamSet``
validation, and the wire-codec round trip of per-kind whitelists.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.cip.params import ParamSet
from repro.cip.plugins import Heuristic, Propagator, Relaxator
from repro.cip.quarantine import PluginQuarantine
from repro.cip.registry import (
    PLUGIN_KINDS,
    WHITELISTABLE_KINDS,
    PluginRegistry,
    known_plugin_names,
    validate_plugin_names,
)
from repro.exceptions import ModelError, PluginError

pytestmark = pytest.mark.fast


def _prop(name, priority=0):
    return type(f"P_{name}", (Propagator,), {"name": name, "priority": priority})()


def _heur(name, priority=0):
    return type(f"H_{name}", (Heuristic,), {"name": name, "priority": priority})()


class TestOrdering:
    def test_priority_orders_descending_with_arrival_tiebreak(self):
        reg = PluginRegistry()
        a, b, c = _prop("a", 10), _prop("b", 50), _prop("c", 10)
        for p in (a, b, c):
            reg.register("propagator", p)
        assert reg.names("propagator") == ("b", "a", "c")

    def test_front_and_back_positions_override_priority(self):
        reg = PluginRegistry()
        reg.register("propagator", _prop("mid", 100))
        reg.register("propagator", _prop("last", 999), position="back")
        reg.register("propagator", _prop("first", -5), position="front")
        assert reg.names("propagator") == ("first", "mid", "last")

    def test_duplicate_name_rejected(self):
        reg = PluginRegistry()
        reg.register("heuristic", _heur("h"))
        with pytest.raises(PluginError, match="registered twice"):
            reg.register("heuristic", _heur("h"))

    def test_relaxator_is_a_singleton_slot(self):
        reg = PluginRegistry()

        class R1(Relaxator):
            name = "r1"

        class R2(Relaxator):
            name = "r2"

        reg.register("relaxator", R1())
        assert reg.relaxator is not None and reg.relaxator.name == "r1"
        with pytest.raises(PluginError, match="already installed"):
            reg.register("relaxator", R2())

    def test_unknown_kind_and_position_rejected(self):
        reg = PluginRegistry()
        with pytest.raises(PluginError, match="unknown plugin kind"):
            reg.register("frobnicator", _prop("x"))
        with pytest.raises(PluginError, match="unknown position"):
            reg.register("propagator", _prop("x"), position="middle")

    def test_remove_and_clear(self):
        reg = PluginRegistry()
        reg.register("separator", _prop("s1"))
        reg.register("separator", _prop("s2"))
        assert reg.remove("separator", "s1") is True
        assert reg.remove("separator", "s1") is False
        assert reg.names("separator") == ("s2",)
        reg.clear("separator")
        assert reg.plugins("separator") == []


class TestFilteredIteration:
    def test_whitelist_none_empty_and_subset(self):
        reg = PluginRegistry()
        for n in ("a", "b", "c"):
            reg.register("heuristic", _heur(n))
        names = lambda plugins: [p.name for p in plugins]
        assert names(reg.active("heuristic")) == ["a", "b", "c"]
        assert names(reg.active("heuristic", whitelist=())) == []
        assert names(reg.active("heuristic", whitelist=("c", "a"))) == ["a", "c"]

    def test_quarantined_plugins_are_skipped(self):
        reg = PluginRegistry()
        for n in ("a", "b"):
            reg.register("propagator", _prop(n))
        q = PluginQuarantine(max_failures=1)
        q.record_failure("a", RuntimeError("boom"))
        assert [p.name for p in reg.active("propagator", quarantine=q)] == ["b"]

    def test_spec_is_json_serializable_and_ordered(self):
        reg = PluginRegistry()
        reg.register("propagator", _prop("p2", 1))
        reg.register("propagator", _prop("p1", 9))
        reg.register("heuristic", _heur("h"))
        spec = json.loads(json.dumps(reg.spec()))
        assert spec == {"propagator": ["p1", "p2"], "heuristic": ["h"]}
        assert set(spec) <= set(PLUGIN_KINDS)


class TestKindView:
    def test_views_are_live_and_forward_mutations(self):
        from repro.cip.model import Model
        from repro.cip.solver import CIPSolver

        m = Model()
        m.add_variable("x")
        solver = CIPSolver(m)
        solver.heuristics.append(_heur("ha", 1))
        solver.heuristics.extend([_heur("hb", 5)])
        assert [p.name for p in solver.heuristics] == ["hb", "ha"]
        assert len(solver.heuristics) == 2
        assert solver.heuristics[0].name == "hb"
        assert _heur("ha") in solver.heuristics  # by-name membership
        solver.heuristics.clear()
        assert not solver.heuristics

    def test_insert_front_forces_first_place(self):
        from repro.cip.model import Model
        from repro.cip.solver import CIPSolver

        m = Model()
        m.add_variable("x")
        solver = CIPSolver(m)
        solver.propagators.append(_prop("big", 1000))
        solver.propagators.insert(0, _prop("urgent", -1))
        assert [p.name for p in solver.propagators] == ["urgent", "big"]


class TestCatalogAndParamValidation:
    def test_first_party_names_are_known(self):
        known = known_plugin_names()
        for name in ("integrality", "linear_activity", "steiner_tm", "conflict",
                     "orbital_fixing", "lex_symmetry", "sdp_eigcuts"):
            assert name in known, name

    def test_validate_unknown_name_raises(self):
        with pytest.raises(ModelError, match="no_such_plugin"):
            validate_plugin_names(["no_such_plugin"], "test")

    def test_paramset_rejects_unknown_whitelist_names(self):
        with pytest.raises(ModelError, match="plugin_whitelists"):
            ParamSet(plugin_whitelists={"propagator": ("not_a_plugin",)})

    def test_paramset_rejects_unwhitelistable_kind(self):
        with pytest.raises(ModelError, match="not whitelistable"):
            ParamSet(plugin_whitelists={"conshdlr": ()})
        assert "conshdlr" not in WHITELISTABLE_KINDS
        assert "relaxator" not in WHITELISTABLE_KINDS

    def test_whitelist_for_portfolio_precedence(self):
        p = ParamSet(
            heuristic_portfolio=("steiner_tm",),
            plugin_whitelists={"heuristic": ("steiner_mstc",), "separator": ()},
        )
        assert p.whitelist_for("heuristic") == ("steiner_tm",)
        assert p.whitelist_for("separator") == ()
        assert p.whitelist_for("propagator") is None

    def test_plugin_whitelists_survive_json_wire(self):
        p = ParamSet(
            plugin_whitelists={"propagator": ("integrality", "linear_activity"), "separator": ()}
        )
        wire = json.loads(json.dumps(asdict(p)))  # tuples become lists on the wire
        q = ParamSet(**wire)
        assert q.plugin_whitelists == p.plugin_whitelists
        assert isinstance(q.plugin_whitelists["propagator"], tuple)

    def test_modern_params_survive_json_wire(self):
        from repro.cip.params import emphasis

        p = emphasis("modern")
        q = ParamSet(**json.loads(json.dumps(asdict(p))))
        assert q.conflict_analysis and q.symmetry_mode == "orbital" and q.restarts
