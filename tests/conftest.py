"""Shared test helpers: brute-force reference solvers and fixtures.

The brute-force references now live in :mod:`repro.verify.differential`
(so benchmarks and the ``python -m repro.verify`` CLI can reuse them);
they are re-exported here for the test suite's historical import path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify.differential import (  # noqa: F401  (re-exports)
    brute_force_binary_mip,
    brute_force_misdp,
    brute_force_steiner,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
