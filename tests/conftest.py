"""Shared test helpers: brute-force reference solvers and fixtures."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.steiner.graph import SteinerGraph
from repro.steiner.mst import mst_on_subgraph, prune_steiner_tree


def brute_force_steiner(graph: SteinerGraph) -> float | None:
    """Exact SPG optimum by enumerating Steiner-vertex subsets (tiny graphs)."""
    terms = [int(t) for t in graph.terminals]
    if len(terms) <= 1:
        return 0.0
    nonterms = [int(v) for v in graph.alive_vertices() if not graph.is_terminal(int(v))]
    best: float | None = None
    for k in range(len(nonterms) + 1):
        for sub in itertools.combinations(nonterms, k):
            vs = set(terms) | set(sub)
            r = mst_on_subgraph(graph, vs)
            if r is None:
                continue
            _, cost = prune_steiner_tree(graph, r[0])
            if best is None or cost < best:
                best = cost
    return best


def brute_force_binary_mip(c: np.ndarray, A: np.ndarray, b: np.ndarray) -> float | None:
    """min c'x s.t. Ax <= b, x binary — exhaustive."""
    n = len(c)
    best: float | None = None
    for k in range(2**n):
        x = np.array([(k >> i) & 1 for i in range(n)], dtype=float)
        if np.all(A @ x <= b + 1e-9):
            val = float(c @ x)
            if best is None or val < best:
                best = val
    return best


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
