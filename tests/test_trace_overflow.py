"""Trace ring-buffer overflow is surfaced, not silent (issue satellite).

The drop counter must travel the whole chain: ``Tracer.dropped`` ->
``UGResult.trace_dropped`` -> ``UGStatistics.trace_events_dropped`` ->
the audit refusal message citing the exact count.  Plus the
``events_since`` cursor API the serve streaming endpoint relies on.
"""

from __future__ import annotations

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.obs.trace import Tracer
from repro.steiner.instances import grid_instance
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.ug.statistics import UGStatistics
from repro.verify.tree_audit import audit_cip_trace

pytestmark = pytest.mark.fast


def tiny_run(trace_capacity: int):
    graph = grid_instance(rows=3, cols=3, n_terminals=4, seed=1)
    config = UGConfig(trace_enabled=True, trace_capacity=trace_capacity)
    solver = ug(graph, SteinerUserPlugins(), n_solvers=2, comm="sim", config=config)
    return solver.run()


class TestOverflowSurfacing:
    def test_result_exposes_drop_count(self):
        result = tiny_run(trace_capacity=4)
        assert result.trace is not None
        assert result.trace.dropped > 0
        assert result.trace_dropped == result.trace.dropped
        assert result.stats.trace_events_dropped == result.trace.dropped

    def test_untruncated_run_reports_zero(self):
        result = tiny_run(trace_capacity=1 << 16)
        assert result.trace_dropped == 0
        assert result.stats.trace_events_dropped == 0
        assert UGStatistics().trace_events_dropped == 0  # field default

    def test_result_without_trace_reports_zero(self):
        graph = grid_instance(rows=2, cols=2, n_terminals=2, seed=1)
        solver = ug(graph, SteinerUserPlugins(), n_solvers=1, comm="sim")
        result = solver.run()
        assert result.trace is None or result.trace_dropped >= 0
        if result.trace is None:
            assert result.trace_dropped == 0

    def test_audit_refusal_cites_drop_count(self):
        tracer = Tracer(capacity=2)
        for i in range(7):
            tracer.emit(float(i), "bb_node", 0, node=i)
        report = audit_cip_trace(tracer)
        refusal = next(c for c in report.failures if c.name == "trace_complete")
        assert "5 events dropped" in refusal.detail
        assert "trace_events_dropped" in refusal.detail  # points at the stats field

    def test_audit_refusal_cites_override_count(self):
        report = audit_cip_trace([], dropped=3)
        refusal = next(c for c in report.failures if c.name == "trace_complete")
        assert "3 events dropped" in refusal.detail


class TestEventsSince:
    def test_cursor_walks_the_stream(self):
        tracer = Tracer(capacity=100)
        tracer.emit(0.0, "a")
        tracer.emit(1.0, "b")
        cursor, missed, events = tracer.events_since(0)
        assert (cursor, missed) == (2, 0)
        assert [e.kind for e in events] == ["a", "b"]
        tracer.emit(2.0, "c")
        cursor, missed, events = tracer.events_since(cursor)
        assert (cursor, missed) == (3, 0)
        assert [e.kind for e in events] == ["c"]
        # caught up: nothing new
        assert tracer.events_since(cursor) == (3, 0, [])

    def test_slow_consumer_sees_missed_count(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(float(i), f"e{i}")
        cursor, missed, events = tracer.events_since(0)
        assert cursor == 10
        assert missed == 7  # explicitly reported, not silently skipped
        assert [e.kind for e in events] == ["e7", "e8", "e9"]

    def test_partial_overlap_with_buffer(self):
        tracer = Tracer(capacity=5)
        for i in range(8):
            tracer.emit(float(i), f"e{i}")
        # buffer holds e3..e7; a cursor at 4 is still inside it, so the
        # consumer missed nothing and reads e4..e7
        cursor, missed, events = tracer.events_since(4)
        assert (cursor, missed) == (8, 0)
        assert [e.kind for e in events] == ["e4", "e5", "e6", "e7"]

    def test_clear_resets_cursor_space(self):
        tracer = Tracer(capacity=4)
        tracer.emit(0.0, "a")
        tracer.clear()
        assert tracer.appended == 0
        assert tracer.events_since(0) == (0, 0, [])
