"""Tests for the Steiner graph substrate: mutations and ancestry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.steiner.union_find import UnionFind
from repro.steiner.validation import validate_tree


def path_graph(n: int = 4) -> SteinerGraph:
    g = SteinerGraph.create(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, float(i + 1))
    g.set_terminal(0)
    g.set_terminal(n - 1)
    return g


class TestConstruction:
    def test_basic_counts(self):
        g = path_graph()
        assert g.num_alive_vertices == 4
        assert g.num_alive_edges == 3
        assert g.num_terminals == 2

    def test_self_loop_rejected(self):
        g = SteinerGraph.create(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_negative_cost_rejected(self):
        g = SteinerGraph.create(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)

    def test_unknown_vertex_rejected(self):
        g = SteinerGraph.create(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 5, 1.0)

    def test_neighbors_and_degree(self):
        g = path_graph()
        assert g.degree(1) == 2
        assert sorted(w for w, _, _ in g.neighbors(1)) == [0, 2]

    def test_find_edge_cheapest_parallel(self):
        g = SteinerGraph.create(2)
        e1 = g.add_edge(0, 1, 5.0)
        e2 = g.add_edge(0, 1, 3.0)
        assert g.find_edge(0, 1) == e2


class TestMutations:
    def test_delete_vertex(self):
        g = path_graph()
        g.delete_vertex(1)
        assert not g.vertex_alive[1]
        assert g.degree(0) == 0

    def test_delete_terminal_rejected(self):
        g = path_graph()
        with pytest.raises(GraphError):
            g.delete_vertex(0)

    def test_replace_path_merges_costs_and_ancestors(self):
        g = path_graph()
        new = g.replace_path(1)
        assert new is not None
        assert g.edge_cost(new) == pytest.approx(3.0)
        assert set(g.edge_ancestors(new)) == {0, 1}
        assert not g.vertex_alive[1]

    def test_replace_path_keeps_cheaper_parallel(self):
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 5.0)
        g.add_edge(1, 2, 5.0)
        direct = g.add_edge(0, 2, 1.0)
        g.set_terminal(0)
        g.set_terminal(2)
        assert g.replace_path(1) is None
        assert g.edges[direct].alive

    def test_replace_path_wrong_degree(self):
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            g.replace_path(1)

    def test_contract_adds_fixed_cost_and_edges(self):
        g = path_graph()
        eid = g.find_edge(0, 1)
        g.contract_into_terminal(eid, 0)
        assert g.fixed_cost == pytest.approx(1.0)
        assert 0 in g.fixed_edges or eid in g.fixed_edges
        assert not g.vertex_alive[1]
        # vertex 2's edge re-hooked onto terminal 0
        assert g.find_edge(0, 2) is not None

    def test_contract_requires_terminal_endpoint(self):
        g = path_graph()
        eid = g.find_edge(1, 2)
        with pytest.raises(GraphError):
            g.contract_into_terminal(eid, 1)  # 1 is not a terminal

    def test_contract_merges_terminal_status(self):
        g = path_graph()
        g.set_terminal(1)
        eid = g.find_edge(0, 1)
        g.contract_into_terminal(eid, 0)
        assert g.num_terminals == 2  # terminal 1 absorbed into 0

    def test_expand_solution_roundtrip(self):
        g = path_graph()
        orig = g.copy()
        g.replace_path(1)
        g.replace_path(2)
        (eid,) = g.alive_edges()
        edges, cost = g.expand_solution([eid])
        assert sorted(edges) == [0, 1, 2]
        assert cost == pytest.approx(6.0)
        assert validate_tree(orig, edges, original=True) == pytest.approx(6.0)

    def test_copy_is_deep(self):
        g = path_graph()
        c = g.copy()
        c.delete_vertex(1)
        assert g.vertex_alive[1]
        c.set_terminal(2)
        assert not g.is_terminal(2)


class TestValidation:
    def test_cycle_rejected(self):
        g = SteinerGraph.create(3)
        e = [g.add_edge(0, 1, 1), g.add_edge(1, 2, 1), g.add_edge(0, 2, 1)]
        g.set_terminal(0)
        g.set_terminal(2)
        with pytest.raises(GraphError):
            validate_tree(g, e)

    def test_disconnected_terminals_rejected(self):
        g = path_graph()
        with pytest.raises(GraphError):
            validate_tree(g, [0])

    def test_duplicate_rejected(self):
        g = path_graph()
        with pytest.raises(GraphError):
            validate_tree(g, [0, 0])


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
    def test_matches_naive(self, unions):
        n = 15
        uf = UnionFind(n)
        groups = [{i} for i in range(n)]

        def gfind(x):
            return next(g for g in groups if x in g)

        for a, b in unions:
            uf.union(a, b)
            ga, gb = gfind(a), gfind(b)
            if ga is not gb:
                groups.remove(gb)
                ga |= gb
        for a in range(n):
            for b in range(n):
                assert uf.connected(a, b) == (gfind(a) is gfind(b))
        assert uf.n_components == len(groups)
