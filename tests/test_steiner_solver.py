"""Tests for the full Steiner branch-and-cut solver and its UG contract."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cip.result import SolveStatus
from repro.steiner.instances import (
    bipartite_instance,
    code_cover_instance,
    grid_instance,
    hypercube_instance,
    random_instance,
)
from repro.steiner.solver import SteinerSolver
from repro.steiner.stp_io import parse_stp, write_stp
from repro.steiner.validation import validate_tree
from tests.conftest import brute_force_steiner


class TestSolverCorrectness:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_bruteforce(self, seed):
        g = random_instance(9, 16, 4, seed=seed)
        opt = brute_force_steiner(g)
        sol = SteinerSolver(g.copy(), seed=seed).solve(node_limit=1000)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.cost == pytest.approx(opt)
        assert validate_tree(g, sol.edges, original=True) == pytest.approx(opt)

    def test_trivial_two_terminals(self):
        g = grid_instance(3, 3, 2, seed=0)
        sol = SteinerSolver(g.copy()).solve()
        assert sol.status is SolveStatus.OPTIMAL
        validate_tree(g, sol.edges, original=True)

    def test_single_terminal(self):
        g = random_instance(6, 10, 2, seed=0)
        # reduce to a single terminal by clearing one
        terms = [int(t) for t in g.terminals]
        g.set_terminal(terms[1], False)
        sol = SteinerSolver(g.copy()).solve()
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.cost == pytest.approx(0.0)
        assert sol.edges == []

    def test_unit_hypercube_needs_branching(self):
        g = hypercube_instance(4, perturbed=False, seed=0)
        sol = SteinerSolver(g.copy(), seed=0).solve(node_limit=500)
        assert sol.status is SolveStatus.OPTIMAL
        validate_tree(g, sol.edges, original=True)

    def test_node_limit_reports_bounds(self):
        g = hypercube_instance(5, perturbed=False, seed=0)
        sol = SteinerSolver(g.copy(), seed=0).solve(node_limit=2)
        assert sol.status in (SolveStatus.NODE_LIMIT, SolveStatus.OPTIMAL)
        assert sol.dual_bound <= sol.cost + 1e-9

    def test_reduction_stats_populated(self):
        g = random_instance(12, 24, 4, seed=3)
        solver = SteinerSolver(g.copy(), seed=0)
        sol = solver.solve(node_limit=200)
        assert sol.reduction_stats is not None
        assert sol.reduction_stats.total > 0


class TestSubproblemContract:
    def _prepare_with_open_nodes(self, g, seed=0):
        solver = SteinerSolver(g.copy(), seed=seed)
        solver.prepare()
        assert solver.cip is not None
        for _ in range(6):
            out = solver.cip.step()
            if out.finished or solver.cip.n_open() >= 2:
                break
        return solver

    def test_decisions_roundtrip(self):
        g = hypercube_instance(4, perturbed=False, seed=0)
        solver = self._prepare_with_open_nodes(g)
        node = solver.cip.extract_open_node()
        if node is None:
            pytest.skip("instance solved at root")
        decisions, fixings = solver.node_to_subproblem(node)
        child = SteinerSolver(g.copy(), seed=0)
        child.prepare(decisions, fixings, dual_bound_estimate=node.lower_bound)
        # the child solver must be buildable and solvable
        if child.cip is not None:
            res = child.cip.solve(node_limit=300)
            if res.best_solution is not None:
                edges = child.extract_original_edges()
                validate_tree(g, edges, original=True)

    def test_out_decision_deletes_vertex(self):
        g = random_instance(10, 20, 3, seed=1)
        nonterm = next(int(v) for v in g.alive_vertices() if not g.is_terminal(int(v)))
        solver = SteinerSolver(g.copy(), seed=0)
        solver.prepare(decisions=((nonterm, "out"),), reduce=False)
        assert solver.graph is not None
        assert not solver.graph.vertex_alive[nonterm]

    def test_in_decision_adds_terminal(self):
        g = random_instance(10, 20, 3, seed=1)
        nonterm = next(int(v) for v in g.alive_vertices() if not g.is_terminal(int(v)))
        solver = SteinerSolver(g.copy(), seed=0)
        solver.prepare(decisions=((nonterm, "in"),), reduce=False)
        assert solver.graph.is_terminal(nonterm)

    def test_subproblem_optimum_never_better_than_parent(self):
        g = hypercube_instance(4, perturbed=True, seed=2)
        parent = SteinerSolver(g.copy(), seed=0).solve(node_limit=500)
        nonterm = next(int(v) for v in g.alive_vertices() if not g.is_terminal(int(v)))
        for action in ("in", "out"):
            child = SteinerSolver(g.copy(), seed=0)
            child.prepare(decisions=((nonterm, action),))
            sol = child.solve(node_limit=500)
            if sol.status is SolveStatus.OPTIMAL and sol.edges:
                assert sol.cost >= parent.cost - 1e-9


class TestInstanceGenerators:
    def test_hypercube_structure(self):
        g = hypercube_instance(4)
        assert g.num_alive_vertices == 16
        assert g.num_alive_edges == 32
        assert g.num_terminals == 8

    def test_code_cover_structure(self):
        g = code_cover_instance(3, 3, seed=0)
        assert g.num_alive_vertices == 27
        assert g.num_alive_edges == 27 * 6 // 2

    def test_bipartite_terminals_left(self):
        g = bipartite_instance(10, 15, seed=0)
        assert g.num_terminals == 10
        assert all(g.is_terminal(v) for v in range(10))

    def test_generators_deterministic(self):
        a = bipartite_instance(8, 12, seed=3)
        b = bipartite_instance(8, 12, seed=3)
        assert a.num_alive_edges == b.num_alive_edges
        assert [e.cost for e in a.edges] == [e.cost for e in b.edges]

    def test_random_instance_connected(self):
        from repro.steiner.shortest_paths import dijkstra

        g = random_instance(15, 25, 5, seed=0)
        dist, _ = dijkstra(g, 0)
        assert all(math.isfinite(dist[v]) for v in range(15))

    def test_invalid_args(self):
        with pytest.raises(Exception):
            hypercube_instance(1)
        with pytest.raises(Exception):
            random_instance(10, 3, 2)
        with pytest.raises(Exception):
            grid_instance(3, 3, 1)


class TestStpIO:
    def test_roundtrip(self):
        g = random_instance(10, 18, 4, seed=5)
        text = write_stp(g, "roundtrip")
        g2 = parse_stp(text)
        assert g2.num_alive_vertices == g.num_alive_vertices
        assert g2.num_alive_edges == g.num_alive_edges
        assert g2.num_terminals == g.num_terminals
        assert brute_force_steiner(g2) == pytest.approx(brute_force_steiner(g))

    def test_parse_minimal(self):
        text = """
        SECTION Graph
        Nodes 3
        Edges 2
        E 1 2 1.5
        E 2 3 2
        END
        SECTION Terminals
        Terminals 2
        T 1
        T 3
        END
        EOF
        """
        g = parse_stp(text)
        assert g.num_alive_vertices == 3
        assert g.num_terminals == 2
        assert g.edges[0].cost == pytest.approx(1.5)

    def test_parse_rejects_no_terminals(self):
        with pytest.raises(Exception):
            parse_stp("SECTION Graph\nNodes 2\nEdges 1\nE 1 2 1\nEND\n")

    def test_parse_rejects_prize_collecting(self):
        text = "SECTION Graph\nNodes 2\nEdges 1\nE 1 2 1\nEND\nSECTION Terminals\nRootP 1\nEND\n"
        with pytest.raises(Exception):
            parse_stp(text)
