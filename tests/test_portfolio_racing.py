"""Heuristic-portfolio racing: whitelist plumbing, merit, robustness.

Covers the portfolio field end to end: the CIP kernel honours the
whitelist, a ``ParamSet`` carrying one survives the wire codec, a
heuristic-rich portfolio beats the heuristic-free one in a two-solver
race *independent of lane order* (the winner-selection tie-break favours
rank 1, so lane-independence is what "wins on merit" means here), a
portfolio naming a crashing heuristic still terminates honestly via
quarantine, and the bench histogram is reproducible seed-for-seed.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict

import pytest

from benchmarks.bench_portfolio_racing import run_portfolio_races
from repro.apps.stp_plugins import STP_PORTFOLIOS, SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.cip.plugins import Heuristic
from repro.instances import generate_family
from repro.steiner.solver import SteinerSolver
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.verify.differential import brute_force_steiner
from repro.verify.steiner import check_ug_steiner_result

PORTFOLIO_OF = dict(STP_PORTFOLIOS)

# reduction-resistant unit-cost instance where the full portfolio needs
# ~3 nodes and the heuristic-free one ~26 (probed): the merit race below
ORLIB_UNIT = ("orlib_random", {"n": 60, "m": 150, "n_terminals": 12, "max_cost": 1}, 11)


class RecordingHeuristic(Heuristic):
    """No-op heuristic that records how often the kernel invoked it.

    Subclasses declare ``name`` as a class attribute so the plugin-name
    catalog knows them at class-definition time — ``ParamSet`` rejects
    whitelist names it has never seen (the typo guard under test in
    ``test_unknown_portfolio_name_rejected``).
    """

    def __init__(self) -> None:
        self.calls = 0

    def run(self, solver, node, x) -> None:
        self.calls += 1


class RecA(RecordingHeuristic):
    name = "rec_a"


class RecB(RecordingHeuristic):
    name = "rec_b"


class CrashingHeuristic(Heuristic):
    """Always raises — quarantine fodder."""

    name = "crash_heur"

    def __init__(self) -> None:
        self.calls = 0

    def run(self, solver, node, x) -> None:
        self.calls += 1
        raise RuntimeError("deliberate heuristic crash")


def _branching_graph():
    """Unit-cost parity hypercube: small, but LP-fractional at the root,
    so the kernel actually branches and heuristics actually fire."""
    return generate_family(
        "hypercube", seed=9, configs=({"dim": 4, "perturbed": False, "parity_terminals": True},)
    )[0].instance


class TwoLanePlugins(SteinerUserPlugins):
    """Two racing lanes with explicitly ordered portfolios, all other
    knobs held identical, so any outcome difference is the portfolio's."""

    def __init__(self, order: tuple[str, str]) -> None:
        self.order = order

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        return [
            base.with_changes(
                permutation_seed=0,
                heur_frequency=1,
                heuristic_portfolio=PORTFOLIO_OF[name],
                extras={"stp/portfolio": name},
            )
            for name in self.order
        ]


@pytest.mark.fast
class TestPortfolioWhitelist:
    def _prepared(self, portfolio):
        solver = SteinerSolver(
            _branching_graph(),
            params=ParamSet(heuristic_portfolio=portfolio, heur_frequency=1),
            seed=0,
        )
        solver.prepare(reduce=False)
        assert solver.cip is not None
        return solver

    def test_whitelist_filters_heuristics(self):
        solver = self._prepared(("rec_a",))
        rec_a, rec_b = RecA(), RecB()
        solver.cip.heuristics.extend([rec_a, rec_b])
        solver.cip.step()
        assert rec_a.calls > 0, "whitelisted heuristic never ran"
        assert rec_b.calls == 0, "non-whitelisted heuristic ran anyway"

    def test_none_means_every_heuristic(self):
        solver = self._prepared(None)
        rec_a, rec_b = RecA(), RecB()
        solver.cip.heuristics.extend([rec_a, rec_b])
        solver.cip.step()
        assert rec_a.calls > 0 and rec_b.calls > 0

    def test_empty_portfolio_disables_all(self):
        solver = self._prepared(())
        rec = RecA()
        solver.cip.heuristics.append(rec)
        solver.cip.step()
        assert rec.calls == 0

    def test_paramset_portfolio_survives_json_wire(self):
        p = ParamSet(heuristic_portfolio=("steiner_tm", "steiner_mstc"))
        wire = json.loads(json.dumps(asdict(p)))  # tuples become lists on the wire
        q = ParamSet(**wire)
        assert q.heuristic_portfolio == p.heuristic_portfolio
        assert isinstance(q.heuristic_portfolio, tuple)

    def test_unknown_portfolio_name_rejected(self):
        """A typoed portfolio entry fails at ParamSet construction, not as
        a silently-empty lane at solve time."""
        from repro.exceptions import ModelError

        with pytest.raises(ModelError, match="no_such_heuristic"):
            ParamSet(heuristic_portfolio=("no_such_heuristic",))


def _two_lane_race(order: tuple[str, str], instance):
    cfg = UGConfig(
        ramp_up="racing",
        # racing may conclude only when a lane actually finishes: an
        # unreachable deadline/threshold isolates time-to-solve as the metric
        racing_deadline=1e9,
        racing_open_node_threshold=10**9,
        status_interval_work=0.0005,
        latency=0.02,
        time_limit=600.0,
        trace_enabled=True,
    )
    res = ug(
        instance.copy(), TwoLanePlugins(order), n_solvers=2, comm="sim",
        params=ParamSet(), config=cfg, seed=1, wall_clock_limit=300.0,
    ).run()
    ev = res.trace.events("solved_in_racing")
    assert ev, "race must conclude by a lane finishing"
    first = order[(ev[0].rank - 1) % 2]
    work = {}
    for e in res.trace.events("work"):
        work[e.rank] = work.get(e.rank, 0.0) + e.data["work"]
    work_of = {order[(rank - 1) % 2]: total for rank, total in work.items()}
    return res, first, work_of


@pytest.mark.fast
class TestStrongerPortfolioWins:
    def test_full_beats_lean_in_both_lane_orders(self):
        fam, config, seed = ORLIB_UNIT
        gi = generate_family(fam, seed=seed, configs=(config,))[0]
        objectives = []
        for order in (("full", "lean"), ("lean", "full")):
            res, first, work_of = _two_lane_race(order, gi.instance)
            assert first == "full", f"lane order {order}: heuristic-free lane finished first"
            assert work_of["lean"] > work_of["full"], order
            assert res.solved
            assert check_ug_steiner_result(gi.instance, res).ok
            objectives.append(res.objective)
        # both lane orders prove the same optimum
        assert math.isclose(objectives[0], objectives[1], rel_tol=1e-9)


class QuarantinePlugins(SteinerUserPlugins):
    """Injects a crashing heuristic into every solver handle."""

    def create_handle(self, instance, node, params, seed, incumbent):
        handle = super().create_handle(instance, node, params, seed, incumbent)
        if handle.solver.cip is not None:
            handle.solver.cip.heuristics.append(CrashingHeuristic())
        return handle

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        # every lane whitelists ONLY the crasher: no working heuristic
        # may mask the containment path under test
        return [
            base.with_changes(
                permutation_seed=k,
                heur_frequency=1,
                heuristic_portfolio=("crash_heur",),
            )
            for k in range(n)
        ]


@pytest.mark.fast
class TestQuarantinedPortfolio:
    def test_cip_quarantines_crasher_and_stays_exact(self):
        graph = _branching_graph()
        optimum = brute_force_steiner(graph)
        solver = SteinerSolver(
            graph.copy(),
            params=ParamSet(heuristic_portfolio=("crash_heur",), heur_frequency=1),
            seed=0,
        )
        solver.prepare(reduce=False)
        crasher = CrashingHeuristic()
        solver.cip.heuristics.append(crasher)
        sol = solver.solve()
        assert math.isclose(sol.cost, optimum, rel_tol=1e-9, abs_tol=1e-6)
        assert solver.cip.quarantine.is_quarantined("crash_heur")
        # exactly max_failures calls reach the plugin, then it is skipped
        assert crasher.calls == solver.cip.params.plugin_max_failures

    def test_race_with_crashing_portfolio_terminates_honestly(self):
        fam, config, seed = ORLIB_UNIT
        gi = generate_family(fam, seed=seed, configs=(config,))[0]
        seq = SteinerSolver(gi.instance.copy(), seed=0).solve()
        cfg = UGConfig(
            ramp_up="racing",
            racing_deadline=0.05,
            racing_open_node_threshold=4,
            status_interval_work=0.0005,
            time_limit=600.0,
            trace_enabled=True,
        )
        res = ug(
            gi.instance.copy(), QuarantinePlugins(), n_solvers=3, comm="sim",
            params=ParamSet(), config=cfg, seed=1, wall_clock_limit=300.0,
        ).run()
        assert res.solved
        assert check_ug_steiner_result(gi.instance, res).ok
        assert math.isclose(res.objective, seq.cost, rel_tol=1e-9, abs_tol=1e-6)
        quarantined = res.trace.events("plugin_quarantined")
        assert any(e.data.get("plugin") == "crash_heur" for e in quarantined), (
            "the crashing heuristic was never quarantined"
        )


@pytest.mark.fast
class TestHistogramReproducibility:
    def test_same_seed_same_histogram(self):
        configs = (("hypercube", {"dim": 4, "perturbed": False, "parity_terminals": True}),)
        a = run_portfolio_races(seeds=(12,), configs=configs)
        b = run_portfolio_races(seeds=(12,), configs=configs)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["n_races"] == 1 and a["certified_races"] == 1
