"""Unit tests for the ParaSolver state machine (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.cip.params import ParamSet
from repro.ug.messages import Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.para_solver import ParaSolver
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


class ScriptedHandle(SolverHandle):
    """A base-solver stub that follows a scripted sequence of steps."""

    def __init__(self, script: list[HandleStep]):
        self.script = list(script)
        self.injected: list[float] = []
        self.extracted = 0

    def step(self) -> HandleStep:
        return self.script.pop(0)

    def extract_para_node(self):
        self.extracted += 1
        return ParaNode({"k": self.extracted}, dual_bound=1.0, depth=1)

    def inject_incumbent_value(self, value: float) -> None:
        self.injected.append(value)

    def dual_bound(self) -> float:
        return 0.0

    def n_open(self) -> int:
        return len(self.script)


class ScriptedPlugins(UserPlugins):
    base_solver_name = "Scripted"

    def __init__(self, script):
        self.script = script
        self.created = 0

    def create_handle(self, instance, node, params, seed, incumbent):
        self.created += 1
        return ScriptedHandle(self.script)


def make_solver(script, **kwargs) -> tuple[ParaSolver, list]:
    plugins = ScriptedPlugins(script)
    solver = ParaSolver(1, "instance", plugins, ParamSet(), seed=0, **kwargs)
    sent: list[tuple[int, MessageTag, object]] = []
    return solver, sent


def send_collector(sent):
    def send(dst, tag, payload):
        sent.append((dst, tag, payload))

    return send


def subproblem_msg(payload_extra=None) -> Message:
    payload = {"node": ParaNode({}), "incumbent": None, "settings": None}
    payload.update(payload_extra or {})
    return Message(tag=MessageTag.SUBPROBLEM, src=0, dst=1, payload=payload)


class TestParaSolver:
    def test_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            ParaSolver(0, None, ScriptedPlugins([]), ParamSet(), 0)

    def test_idle_does_no_work(self):
        solver, sent = make_solver([])
        assert solver.do_work(send_collector(sent)) is None

    def test_finishing_step_sends_terminated(self):
        script = [HandleStep(True, 0.01, 5.0, 0, [], 1)]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        assert solver.is_busy
        solver.do_work(send)
        tags = [t for _d, t, _p in sent]
        assert MessageTag.TERMINATED in tags
        assert solver.state == "idle"

    def test_solution_reported_once(self):
        sol = ParaSolution(3.0, None)
        script = [
            HandleStep(False, 0.01, 1.0, 2, [sol], 1),
            HandleStep(False, 0.01, 1.0, 2, [ParaSolution(3.0)], 1),  # not better
            HandleStep(True, 0.01, 3.0, 0, [], 1),
        ]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        while solver.is_busy:
            solver.do_work(send)
        found = [p for _d, t, p in sent if t is MessageTag.SOLUTION_FOUND]
        assert len(found) == 1

    def test_first_step_reports_root_work(self):
        script = [HandleStep(False, 0.02, 1.0, 2, [], 1), HandleStep(True, 0.01, 1.0, 0, [], 1)]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        solver.do_work(send)
        statuses = [p for _d, t, p in sent if t is MessageTag.STATUS]
        assert statuses and "first_step_work" in statuses[0]

    def test_collect_mode_sheds_nodes(self):
        script = [HandleStep(False, 0.01, 1.0, 10, [], 1) for _ in range(3)] + [
            HandleStep(True, 0.01, 1.0, 0, [], 1)
        ]
        solver, sent = make_solver(script, min_open_to_shed=4)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        solver.handle_message(Message(tag=MessageTag.START_COLLECTING, src=0, dst=1), send)
        solver.do_work(send)
        transfers = [p for _d, t, p in sent if t is MessageTag.NODE_TRANSFER]
        assert transfers

    def test_stop_collecting(self):
        script = [HandleStep(False, 0.01, 1.0, 10, [], 1), HandleStep(True, 0.01, 1.0, 0, [], 1)]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        solver.handle_message(Message(tag=MessageTag.START_COLLECTING, src=0, dst=1), send)
        solver.handle_message(Message(tag=MessageTag.STOP_COLLECTING, src=0, dst=1), send)
        solver.do_work(send)
        transfers = [p for _d, t, p in sent if t is MessageTag.NODE_TRANSFER]
        assert not transfers

    def test_incumbent_injected(self):
        script = [HandleStep(True, 0.01, 1.0, 0, [], 1)]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        solver.handle_message(subproblem_msg(), send)
        solver.handle_message(
            Message(tag=MessageTag.INCUMBENT, src=0, dst=1, payload={"value": 7.0}), send
        )
        assert solver.handle.injected == [7.0]
        # a worse value is ignored
        solver.handle_message(
            Message(tag=MessageTag.INCUMBENT, src=0, dst=1, payload={"value": 9.0}), send
        )
        assert solver.handle.injected == [7.0]

    def test_racing_loser_goes_idle(self):
        script = [HandleStep(False, 0.01, 1.0, 3, [], 1)]
        solver, sent = make_solver(script)
        send = send_collector(sent)
        msg = Message(
            tag=MessageTag.RACING_START,
            src=0,
            dst=1,
            payload={"node": ParaNode({}), "settings": ParamSet(), "incumbent": None},
        )
        solver.handle_message(msg, send)
        assert solver.state == "racing"
        solver.handle_message(Message(tag=MessageTag.RACING_LOSER, src=0, dst=1), send)
        assert solver.state == "idle"
        assert solver.handle is None
        tags = [t for _d, t, _p in sent]
        assert MessageTag.TERMINATED in tags

    def test_racing_winner_starts_collecting(self):
        script = [HandleStep(False, 0.01, 1.0, 10, [], 1), HandleStep(True, 0.01, 1.0, 0, [], 1)]
        solver, sent = make_solver(script, min_open_to_shed=2)
        send = send_collector(sent)
        msg = Message(
            tag=MessageTag.RACING_START,
            src=0,
            dst=1,
            payload={"node": ParaNode({}), "settings": ParamSet(), "incumbent": None},
        )
        solver.handle_message(msg, send)
        solver.handle_message(Message(tag=MessageTag.RACING_WINNER, src=0, dst=1), send)
        assert solver.state == "working"
        assert solver.collect_mode
        solver.do_work(send)
        transfers = [p for _d, t, p in sent if t is MessageTag.NODE_TRANSFER]
        assert transfers

    def test_termination(self):
        solver, sent = make_solver([])
        solver.handle_message(Message(tag=MessageTag.TERMINATION, src=0, dst=1), send_collector(sent))
        assert solver.state == "terminated"

    def test_lineage_stamped_on_transfers(self):
        script = [HandleStep(False, 0.01, 1.0, 10, [], 1), HandleStep(True, 0.01, 1.0, 0, [], 1)]
        solver, sent = make_solver(script, min_open_to_shed=2)
        send = send_collector(sent)
        node = ParaNode({}, lc_id=42, lineage=(7,))
        msg = Message(tag=MessageTag.SUBPROBLEM, src=0, dst=1,
                      payload={"node": node, "incumbent": None, "settings": None})
        solver.handle_message(msg, send)
        solver.handle_message(Message(tag=MessageTag.START_COLLECTING, src=0, dst=1), send)
        solver.do_work(send)
        transfer = next(p for _d, t, p in sent if t is MessageTag.NODE_TRANSFER)
        assert transfer["node"].lineage == (7, 42)
