"""Tests for UG data types, checkpointing and the LoadCoordinator logic."""

from __future__ import annotations

import math

import pytest

from repro.cip.params import ParamSet
from repro.ug.checkpoint import load_checkpoint, save_checkpoint
from repro.ug.config import UGConfig
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.user_plugins import UserPlugins
from repro.exceptions import CheckpointError


class TestParaTypes:
    def test_para_node_json_roundtrip(self):
        node = ParaNode({"decisions": [[3, "in"]]}, dual_bound=7.5, depth=2, lc_id=4, lineage=(1, 2))
        back = ParaNode.from_json(node.to_json())
        assert back == node

    def test_para_node_inf_bound_roundtrip_via_checkpoint(self, tmp_path):
        node = ParaNode({}, dual_bound=-math.inf)
        path = tmp_path / "cp.json"
        save_checkpoint(path, [node], None)
        cp = load_checkpoint(path)
        assert cp.nodes[0].dual_bound == -math.inf

    def test_para_solution_improves(self):
        a = ParaSolution(5.0)
        assert a.improves(None)
        assert ParaSolution(4.0).improves(a)
        assert not ParaSolution(5.0).improves(a)

    def test_message_ordering(self):
        m1 = Message(tag=MessageTag.STATUS, src=1, dst=0)
        m2 = Message(tag=MessageTag.STATUS, src=2, dst=0)
        assert m1 < m2  # send sequence orders messages


class TestCheckpoint:
    def test_roundtrip_with_incumbent(self, tmp_path):
        nodes = [ParaNode({"bounds": [[0, 0.0, 1.0]]}, dual_bound=3.0, lc_id=7)]
        inc = ParaSolution(12.0, {"edges": [1, 2]})
        path = tmp_path / "cp.json"
        save_checkpoint(path, nodes, inc)
        cp = load_checkpoint(path)
        assert len(cp.nodes) == 1
        assert cp.nodes[0].payload == {"bounds": [[0, 0.0, 1.0]]}
        assert cp.incumbent.value == 12.0
        assert cp.incumbent.payload == {"edges": [1, 2]}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_bad_version_raises(self, tmp_path):
        p = tmp_path / "cp.json"
        p.write_text('{"version": 99, "nodes": [], "incumbent": null}')
        with pytest.raises(CheckpointError):
            load_checkpoint(p)


class _NullPlugins(UserPlugins):
    base_solver_name = "Null"


def make_lc(n=3, **cfg) -> LoadCoordinator:
    return LoadCoordinator("instance", _NullPlugins(), ParamSet(), UGConfig(**cfg), n)


def collect_sends():
    sent = []

    def send(dst, tag, payload):
        sent.append((dst, tag, payload))

    return sent, send


class TestLoadCoordinator:
    def test_normal_start_assigns_single_root(self):
        lc = make_lc(3)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        subs = [m for m in sent if m[1] is MessageTag.SUBPROBLEM]
        assert len(subs) == 1
        assert subs[0][0] == 1
        assert lc.stats.transferred_nodes == 1

    def test_racing_start_feeds_everyone(self):
        lc = make_lc(4, ramp_up="racing")
        sent, send = collect_sends()
        lc.start(send, 0.0)
        races = [m for m in sent if m[1] is MessageTag.RACING_START]
        assert len(races) == 4
        settings = [m[2]["settings"] for m in races]
        seeds = {s.permutation_seed for s in settings}
        assert len(seeds) == 4  # diversified

    def test_solution_broadcast_and_pool_prune(self):
        lc = make_lc(2)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        # park a bad node in the pool
        lc._push_pool(ParaNode({}, dual_bound=100.0))
        msg = Message(
            tag=MessageTag.SOLUTION_FOUND,
            src=1,
            dst=0,
            payload={"solution": ParaSolution(50.0), "rank": 1},
        )
        lc.handle_message(msg, send, 1.0)
        assert lc.incumbent.value == 50.0
        assert lc.pool_size() == 0  # dominated node pruned
        incs = [m for m in sent if m[1] is MessageTag.INCUMBENT]
        assert incs  # shared with the active solver

    def test_termination_when_all_done(self):
        lc = make_lc(1)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        msg = Message(
            tag=MessageTag.TERMINATED,
            src=1,
            dst=0,
            payload={"rank": 1, "dual_bound": 5.0, "nodes_processed": 10},
        )
        lc.handle_message(msg, send, 2.0)
        assert lc.finished
        terms = [m for m in sent if m[1] is MessageTag.TERMINATION]
        assert len(terms) == 1
        assert lc.stats.nodes_generated == 10
        assert lc.stats.computing_time == 2.0

    def test_node_transfer_pruned_by_incumbent(self):
        lc = make_lc(2)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.incumbent = ParaSolution(10.0)
        msg = Message(
            tag=MessageTag.NODE_TRANSFER,
            src=1,
            dst=0,
            payload={"node": ParaNode({}, dual_bound=11.0), "rank": 1},
        )
        lc.handle_message(msg, send, 1.0)
        assert lc.pool_size() == 0

    def test_primitive_nodes_filter_lineage(self):
        lc = make_lc(2)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        seed = lc.active[1]
        # node extracted from solver 1 descends from the active seed
        child = ParaNode({}, dual_bound=1.0, lineage=(seed.lc_id,))
        lc._push_pool(child)
        # an unrelated orphan whose ancestor terminated
        orphan = ParaNode({}, dual_bound=2.0, lineage=(999,))
        lc._push_pool(orphan)
        saved = lc.primitive_nodes()
        assert seed in saved
        assert orphan in saved
        assert child not in saved

    def test_interrupt_writes_checkpoint(self, tmp_path):
        path = str(tmp_path / "cp.json")
        lc = make_lc(2, checkpoint_path=path)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.interrupt(send, 3.0)
        assert lc.finished
        cp = load_checkpoint(path)
        assert len(cp.nodes) >= 1  # the active seed is primitive

    def test_objective_epsilon_integral(self):
        lc = make_lc(2, objective_epsilon=1 - 1e-6)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.incumbent = ParaSolution(10.0)
        # dual bound 9.5 cannot improve on 10 for integral objectives
        msg = Message(
            tag=MessageTag.NODE_TRANSFER,
            src=1,
            dst=0,
            payload={"node": ParaNode({}, dual_bound=9.5), "rank": 1},
        )
        lc.handle_message(msg, send, 1.0)
        assert lc.pool_size() == 0
