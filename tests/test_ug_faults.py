"""Fault-tolerance tests: injection, heartbeats, reclamation, recovery.

The acceptance scenario at the bottom mirrors the paper's Tables 2-3
restart campaigns: an 8-solver ug[SteinerJack, SimMPI] run loses two
solvers mid-ramp-up and has its final checkpoint truncated, yet still
proves optimality, restarts from the rotated ``.bak`` copy, and replays
bit-identically under the same :class:`FaultPlan`.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.exceptions import CheckpointError, CommError, LPError
from repro.steiner.instances import hypercube_instance
from repro.steiner.solver import SteinerSolver
from repro.ug import ug
from repro.ug.checkpoint import backup_path, load_checkpoint, save_checkpoint
from repro.ug.config import UGConfig
from repro.ug.engines import SimEngine, ThreadEngine
from repro.ug.faults import (
    CheckpointFault,
    FaultInjector,
    FaultPlan,
    MessageFault,
    RetryingSend,
    SendFault,
    SolverCrash,
)
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.para_solver import ParaSolver
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


# -- helpers shared with the engine tests -------------------------------------


class CountdownHandle(SolverHandle):
    def __init__(self, n: int, work: float, value: float, fail_at: int | None = None):
        self.remaining = n
        self.work = work
        self.value = value
        self.fail_at = fail_at

    def step(self) -> HandleStep:
        if self.fail_at is not None and self.remaining == self.fail_at:
            raise LPError("numerical breakdown in the base solver")
        self.remaining -= 1
        done = self.remaining <= 0
        sols = [ParaSolution(self.value)] if done else []
        return HandleStep(done, self.work, self.value - 1.0, self.remaining, sols, 1)

    def extract_para_node(self):
        return None

    def inject_incumbent_value(self, value: float) -> None:
        pass

    def dual_bound(self) -> float:
        return self.value - 1.0

    def n_open(self) -> int:
        return self.remaining


class CountdownPlugins(UserPlugins):
    base_solver_name = "Countdown"

    def __init__(self, n=10, work=0.01, value=5.0, fail_at=None, fail_once=False):
        self.n, self.work, self.value = n, work, value
        self.fail_at = fail_at
        self.fail_once = fail_once
        self.created = 0

    def create_handle(self, instance, node, params, seed, incumbent):
        self.created += 1
        fail_at = self.fail_at
        if self.fail_once and self.created > 1:
            fail_at = None
        return CountdownHandle(self.n, self.work, self.value, fail_at)


def build(engine_cls, n_solvers=2, plugins=None, **cfg):
    config = UGConfig(**cfg)
    lc = LoadCoordinator("inst", plugins or CountdownPlugins(), ParamSet(), config, n_solvers)
    solvers = {
        r: ParaSolver(r, lc.instance, lc.user_plugins, ParamSet(), 0,
                      status_interval_work=config.status_interval_work)
        for r in range(1, n_solvers + 1)
    }
    return engine_cls(lc, solvers, config), lc


def collect_sends():
    sent = []

    def send(dst, tag, payload):
        sent.append((dst, tag, payload))

    return sent, send


def make_lc(n=3, **cfg) -> LoadCoordinator:
    class _NullPlugins(UserPlugins):
        base_solver_name = "Null"

    return LoadCoordinator("instance", _NullPlugins(), ParamSet(), UGConfig(**cfg), n)


# -- FaultPlan / FaultInjector -------------------------------------------------


class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random_plan(seed=7, n_solvers=8, n_crashes=2, n_message_drops=1)
        b = FaultPlan.random_plan(seed=7, n_solvers=8, n_crashes=2, n_message_drops=1)
        assert a == b
        assert len(a.crashes) == 2
        assert FaultPlan.random_plan(seed=8, n_solvers=8, n_crashes=2) != a

    def test_crash_triggers(self):
        crash = SolverCrash(rank=1, at_time=0.5)
        assert not crash.triggered(0.4, 100)
        assert crash.triggered(0.5, 0)
        by_nodes = SolverCrash(rank=1, at_nodes=3)
        assert not by_nodes.triggered(99.0, 2)
        assert by_nodes.triggered(0.0, 3)

    def test_injector_crash_counted_once(self):
        inj = FaultInjector(FaultPlan(crashes=(SolverCrash(rank=1, at_nodes=2),)))
        assert not inj.maybe_crash(1, 0.0, 1)
        assert inj.maybe_crash(1, 0.0, 2)
        assert inj.maybe_crash(1, 0.0, 5)  # stays dead
        assert inj.crashes_triggered == 1
        assert not inj.maybe_crash(2, 99.0, 99)

    def test_message_fault_budget(self):
        plan = FaultPlan(message_faults=(MessageFault(tag=MessageTag.STATUS, src=1, count=2),))
        inj = FaultInjector(plan)
        msg = Message(tag=MessageTag.STATUS, src=1, dst=0, payload={})
        assert inj.message_action(msg) == ("drop", 0.0)
        assert inj.message_action(msg) == ("drop", 0.0)
        assert inj.message_action(msg) == ("deliver", 0.0)  # budget exhausted
        other = Message(tag=MessageTag.STATUS, src=2, dst=0, payload={})
        assert inj.message_action(other) == ("deliver", 0.0)
        assert inj.messages_dropped == 2

    def test_message_delay(self):
        plan = FaultPlan(
            message_faults=(MessageFault(tag=MessageTag.INCUMBENT, action="delay", delay=0.5),)
        )
        inj = FaultInjector(plan)
        msg = Message(tag=MessageTag.INCUMBENT, src=0, dst=1, payload={})
        assert inj.message_action(msg) == ("delay", 0.5)
        assert inj.messages_delayed == 1

    def test_send_fault_window(self):
        inj = FaultInjector(FaultPlan(send_faults=(SendFault(src=1, nth_send=2, count=2),)))
        inj.check_send(1)  # attempt 1 fine
        with pytest.raises(CommError):
            inj.check_send(1)  # attempt 2 fails
        with pytest.raises(CommError):
            inj.check_send(1)  # attempt 3 fails
        inj.check_send(1)  # attempt 4 fine
        inj.check_send(2)  # other ranks unaffected
        assert inj.send_failures_injected == 2

    def test_injector_budgets_thread_safe(self):
        # one injector is shared by every ThreadEngine solver thread; its
        # budget/attempt read-modify-writes must not interleave
        plan = FaultPlan(message_faults=(MessageFault(tag=MessageTag.STATUS, count=100),))
        inj = FaultInjector(plan)
        msg = Message(tag=MessageTag.STATUS, src=1, dst=0, payload={})
        outcomes: list[str] = []

        def hammer():
            for _ in range(100):
                outcomes.append(inj.message_action(msg)[0])
                inj.check_send(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("drop") == 100
        assert inj.messages_dropped == 100
        assert inj._send_attempts[1] == 800


class TestRetryingSend:
    def test_transient_failure_recovered(self):
        calls = []
        fails = [2]  # fail the first two attempts

        def flaky(dst, tag, payload):
            if fails[0] > 0:
                fails[0] -= 1
                raise CommError("transient")
            calls.append((dst, tag, payload))

        send = RetryingSend(flaky, retries=3)
        send(1, MessageTag.STATUS, {"x": 1})
        assert calls == [(1, MessageTag.STATUS, {"x": 1})]
        assert send.total_retries == 2

    def test_persistent_failure_raises(self):
        def dead(dst, tag, payload):
            raise CommError("gone")

        send = RetryingSend(dead, retries=2)
        with pytest.raises(CommError):
            send(1, MessageTag.STATUS, None)
        assert send.total_retries == 2

    def test_backoff_schedule(self):
        sleeps = []

        def dead(dst, tag, payload):
            raise CommError("gone")

        send = RetryingSend(dead, retries=3, backoff=0.1, sleep=sleeps.append)
        with pytest.raises(CommError):
            send(1, MessageTag.STATUS, None)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


# -- hardened checkpointing ----------------------------------------------------


class TestHardenedCheckpoint:
    def test_roundtrip_with_plus_minus_inf_bounds(self, tmp_path):
        nodes = [
            ParaNode({}, dual_bound=-math.inf),
            ParaNode({}, dual_bound=math.inf),
            ParaNode({}, dual_bound=4.25),
        ]
        path = tmp_path / "cp.json"
        save_checkpoint(path, nodes, None)
        cp = load_checkpoint(path)
        assert [n.dual_bound for n in cp.nodes] == [-math.inf, math.inf, 4.25]

    def test_meta_records_trajectory(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(
            path,
            [ParaNode({}, dual_bound=1.0)],
            ParaSolution(12.0),
            meta={"checkpoint_time": 3.5, "wall_time": 1e9, "incumbent_value": 12.0,
                  "dual_bound": -math.inf},
        )
        cp = load_checkpoint(path)
        assert cp.meta["checkpoint_time"] == 3.5
        assert cp.meta["incumbent_value"] == 12.0
        assert cp.meta["dual_bound"] == -math.inf

    def test_truncated_file_raises_without_backup(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, [ParaNode({}, dual_bound=1.0)], None)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_crc_detects_silent_bitflip(self, tmp_path):
        # corruption that is still valid JSON must be caught by the checksum
        path = tmp_path / "cp.json"
        save_checkpoint(path, [ParaNode({}, dual_bound=4.0)], ParaSolution(9.0))
        text = path.read_text()
        assert '"value":9.0' in text
        path.write_text(text.replace('"value":9.0', '"value":8.0'))
        with pytest.raises(CheckpointError, match="CRC32"):
            load_checkpoint(path)

    def test_rotation_keeps_k_backups(self, tmp_path):
        path = tmp_path / "cp.json"
        for k in range(4):
            save_checkpoint(path, [ParaNode({"gen": k}, dual_bound=float(k))], None, retain=2)
        assert backup_path(path, 1).exists() and backup_path(path, 2).exists()
        assert not backup_path(path, 3).exists()  # retention bound respected
        assert load_checkpoint(path).nodes[0].payload == {"gen": 3}
        assert load_checkpoint(backup_path(path, 1)).nodes[0].payload == {"gen": 2}
        assert load_checkpoint(backup_path(path, 2)).nodes[0].payload == {"gen": 1}

    def test_fallback_to_newest_valid_backup(self, tmp_path):
        path = tmp_path / "cp.json"
        for k in range(3):
            save_checkpoint(path, [ParaNode({"gen": k}, dual_bound=float(k))], None, retain=2)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # truncate the primary
        cp = load_checkpoint(path)
        assert cp.recovered
        assert cp.source == str(backup_path(path, 1))
        assert cp.nodes[0].payload == {"gen": 1}
        assert cp.errors  # the primary's failure is reported

    def test_fallback_skips_corrupt_backup(self, tmp_path):
        path = tmp_path / "cp.json"
        for k in range(3):
            save_checkpoint(path, [ParaNode({"gen": k}, dual_bound=float(k))], None, retain=2)
        for victim in (path, backup_path(path, 1)):
            raw = victim.read_bytes()
            victim.write_bytes(raw[: len(raw) // 2])
        cp = load_checkpoint(path)
        assert cp.recovered
        assert cp.nodes[0].payload == {"gen": 0}

    def test_everything_corrupt_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        for k in range(2):
            save_checkpoint(path, [ParaNode({}, dual_bound=float(k))], None, retain=1)
        for victim in (path, backup_path(path, 1)):
            victim.write_text("{not json")
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            load_checkpoint(path)

    def test_legacy_file_without_crc_still_loads(self, tmp_path):
        path = tmp_path / "cp.json"
        doc = {"version": 1, "nodes": [], "incumbent": None, "meta": {}}
        path.write_text(json.dumps(doc))
        cp = load_checkpoint(path)
        assert cp.nodes == [] and cp.incumbent is None


# -- LoadCoordinator failure detection ----------------------------------------


class TestHeartbeatDetection:
    def test_silent_active_solver_declared_dead_and_node_reclaimed(self):
        lc = make_lc(2, heartbeat_timeout=1.0)
        sent, send = collect_sends()
        lc.start(send, 0.0)  # rank 1 gets the root
        old_id = lc.active[1].lc_id
        lc.on_tick(send, 2.0)  # rank 1 has been silent for 2.0 > 1.0
        assert lc.dead == {1}
        assert lc.stats.solver_failures == 1
        assert lc.stats.nodes_reclaimed == 1
        # the reclaimed root was re-numbered and handed to the survivor
        assert 2 in lc.active
        assert lc.active[2].lc_id != old_id
        assert 1 not in lc.idle

    def test_heartbeat_refresh_prevents_false_positive(self):
        lc = make_lc(1, heartbeat_timeout=1.0)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        status = Message(tag=MessageTag.STATUS, src=1, dst=0,
                         payload={"rank": 1, "dual_bound": 0.0, "n_open": 3})
        lc.handle_message(status, send, 0.9)
        lc.on_tick(send, 1.5)  # only 0.6 since last message
        assert not lc.dead
        lc.on_tick(send, 2.5)  # now 1.6 of silence
        assert lc.dead == {1}

    def test_stale_messages_from_dead_rank_ignored_solutions_accepted(self):
        lc = make_lc(2, heartbeat_timeout=1.0)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.on_tick(send, 2.0)
        assert lc.dead == {1}
        stale = Message(tag=MessageTag.STATUS, src=1, dst=0,
                        payload={"rank": 1, "dual_bound": 0.0, "n_open": 7})
        lc.handle_message(stale, send, 2.1)
        assert 1 not in lc._last_status  # bookkeeping untouched
        late_sol = Message(tag=MessageTag.SOLUTION_FOUND, src=1, dst=0,
                           payload={"solution": ParaSolution(42.0), "rank": 1})
        lc.handle_message(late_sol, send, 2.2)
        assert lc.incumbent is not None and lc.incumbent.value == 42.0

    def test_all_solvers_dead_terminates_gracefully(self):
        lc = make_lc(1, heartbeat_timeout=0.5)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.on_tick(send, 1.0)
        assert lc.finished
        assert not lc.active
        assert lc.stats.solver_failures == 1

    def test_dead_racer_removed_from_contest(self):
        lc = make_lc(3, ramp_up="racing", heartbeat_timeout=1.0, racing_deadline=1.1)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        assert len(lc.active) == 3
        for rank, bound in ((1, 5.0), (2, 7.0)):
            lc.handle_message(
                Message(tag=MessageTag.STATUS, src=rank, dst=0,
                        payload={"rank": rank, "dual_bound": bound, "n_open": 4}),
                send, 0.5,
            )
        # rank 3 has been silent since t=0 -> dead; deadline then picks the
        # winner among the survivors only
        lc.on_tick(send, 1.2)
        assert lc.dead == {3}
        assert lc.stats.nodes_reclaimed == 0  # racing roots are not reclaimed
        assert lc.stats.racing_winner is not None
        assert set(lc.active) == {2}  # best dual bound among survivors
        losers = [m for m in sent if m[1] is MessageTag.RACING_LOSER]
        assert [dst for dst, _t, _p in losers] == [1]  # never message the dead

    def test_all_racers_dead_terminates(self):
        lc = make_lc(2, ramp_up="racing", heartbeat_timeout=0.5)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.on_tick(send, 1.0)
        assert lc.finished
        assert lc.stats.solver_failures == 2
        assert not lc.proven_complete  # nobody ever explored the root

    def test_all_racers_dead_with_incumbent_forfeits_optimality(self):
        # regression: both racers crash right after a solution arrives —
        # the unexplored tree must not come back as a proven optimum
        lc = make_lc(2, ramp_up="racing", heartbeat_timeout=0.5)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.handle_message(
            Message(tag=MessageTag.SOLUTION_FOUND, src=1, dst=0,
                    payload={"solution": ParaSolution(42.0), "rank": 1}),
            send, 0.1,
        )
        lc.on_tick(send, 1.0)  # both racers silent past the timeout
        assert lc.finished
        assert not lc.proven_complete
        assert lc.stats.primal_final == 42.0
        assert lc.stats.dual_final == -math.inf  # the root's bound, not 42.0

    def test_last_contender_dies_while_failed_racers_survive(self):
        # rank 1 drops out with a contained step failure (solver stays
        # alive), then rank 2 — the last contender — dies: nobody finished
        # exploring the racing root, so no optimality claim
        lc = make_lc(2, ramp_up="racing", heartbeat_timeout=0.5)
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.handle_message(
            Message(tag=MessageTag.SOLUTION_FOUND, src=2, dst=0,
                    payload={"solution": ParaSolution(42.0), "rank": 2}),
            send, 0.1,
        )
        lc.handle_message(
            Message(tag=MessageTag.TERMINATED, src=1, dst=0,
                    payload={"rank": 1, "failed": True}),
            send, 0.2,
        )
        assert not lc.finished
        lc.on_tick(send, 1.0)  # rank 2 silent since t=0.1
        assert lc.finished
        assert lc.dead == {2}
        assert not lc.proven_complete
        assert lc.stats.dual_final == -math.inf

    def test_all_racers_failed_forfeits_optimality(self):
        # every racer reports a contained base-solver failure: the run ends
        # gracefully but the racing root was never explored
        lc = make_lc(2, ramp_up="racing")
        sent, send = collect_sends()
        lc.start(send, 0.0)
        lc.handle_message(
            Message(tag=MessageTag.SOLUTION_FOUND, src=1, dst=0,
                    payload={"solution": ParaSolution(42.0), "rank": 1}),
            send, 0.1,
        )
        for rank in (1, 2):
            lc.handle_message(
                Message(tag=MessageTag.TERMINATED, src=rank, dst=0,
                        payload={"rank": rank, "failed": True}),
                send, 0.2,
            )
        assert lc.finished
        assert not lc.proven_complete
        assert lc.stats.primal_final == 42.0
        assert lc.stats.dual_final == -math.inf


class TestStepFailureContainment:
    def test_para_solver_contains_base_solver_error(self):
        plugins = CountdownPlugins(n=5, fail_at=3)
        solver = ParaSolver(1, "inst", plugins, ParamSet(), seed=0)
        sent, send = collect_sends()
        node = ParaNode({})
        solver.handle_message(
            Message(tag=MessageTag.SUBPROBLEM, src=0, dst=1,
                    payload={"node": node, "incumbent": None, "settings": None}),
            send,
        )
        solver.do_work(send)  # 5 -> 4
        solver.do_work(send)  # 4 -> 3
        work = solver.do_work(send)  # remaining == 3 -> raises inside, contained
        assert work is not None
        assert solver.state == "idle" and solver.handle is None
        failed = [p for _d, t, p in sent if t is MessageTag.TERMINATED]
        assert failed and failed[-1]["failed"] is True

    def test_failed_node_is_retried_elsewhere_and_run_completes(self):
        # rank 1's first handle fails on its third step; the LC reclaims the
        # node and the retry (a fresh handle) succeeds
        engine, lc = build(SimEngine, n_solvers=2,
                           plugins=CountdownPlugins(n=5, fail_at=3, fail_once=True))
        engine.run()
        assert lc.finished
        assert lc.incumbent is not None and lc.incumbent.value == 5.0
        assert lc.stats.step_failures == 1
        assert lc.stats.nodes_reclaimed == 1
        assert lc.proven_complete

    def test_poisonous_node_gives_up_after_max_retries(self):
        engine, lc = build(SimEngine, n_solvers=2, max_node_retries=2,
                           plugins=CountdownPlugins(n=5, fail_at=3))
        engine.run()
        assert lc.finished
        assert lc.stats.step_failures == 3  # initial try + 2 retries
        assert not lc.proven_complete  # the subtree was abandoned

    def test_prunable_node_reclaim_keeps_completeness(self):
        # a node already prunable by bound that exhausts its retry budget
        # must not forfeit the optimality claim — nothing explorable was lost
        lc = make_lc(1, max_node_retries=0)
        lc.incumbent = ParaSolution(10.0)
        lc.active[1] = ParaNode({}, dual_bound=10.0)
        lc._reclaim_active_node(1)
        assert lc.proven_complete
        assert lc.stats.nodes_reclaimed == 0


# -- engine-level fault injection ---------------------------------------------


class TestSimEngineFaults:
    def test_crashed_solver_detected_and_work_reassigned(self):
        plan = FaultPlan(crashes=(SolverCrash(rank=1, at_nodes=3),))
        engine, lc = build(SimEngine, n_solvers=2, heartbeat_timeout=0.5, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.dead == {1}
        assert lc.stats.solver_failures == 1
        assert lc.stats.nodes_reclaimed == 1
        # the survivor finished the reclaimed subproblem
        assert lc.incumbent is not None and lc.incumbent.value == 5.0

    def test_all_solvers_crashed_still_terminates(self):
        plan = FaultPlan(crashes=(SolverCrash(rank=1, at_nodes=2), SolverCrash(rank=2, at_time=0.0)))
        engine, lc = build(SimEngine, n_solvers=2, heartbeat_timeout=0.3, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.stats.solver_failures == 2
        assert not lc.live_solvers()

    def test_replay_is_bit_identical(self):
        def once():
            plan = FaultPlan(
                crashes=(SolverCrash(rank=1, at_nodes=3),),
                message_faults=(MessageFault(tag=MessageTag.STATUS, src=2, count=1),),
            )
            engine, lc = build(SimEngine, n_solvers=3, heartbeat_timeout=0.5, fault_plan=plan)
            engine.run()
            s = lc.stats
            return (s.solver_failures, s.nodes_reclaimed, s.messages_dropped,
                    s.computing_time, s.nodes_generated, s.transferred_nodes, s.faults_injected)

        assert once() == once()

    def test_transient_send_failures_absorbed_by_retry(self):
        plan = FaultPlan(send_faults=(SendFault(src=1, nth_send=2, count=2),))
        engine, lc = build(SimEngine, n_solvers=2, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.incumbent is not None and lc.incumbent.value == 5.0
        assert lc.stats.send_retries >= 2
        assert lc.stats.faults_injected >= 2

    def test_both_racers_crash_during_racing_no_optimality_claim(self):
        # both racers crash before the (distant) racing deadline: the run
        # ends without anyone exploring the root, so nothing is proven
        plan = FaultPlan(crashes=(SolverCrash(rank=1, at_time=0.05),
                                  SolverCrash(rank=2, at_time=0.05)))
        engine, lc = build(SimEngine, n_solvers=2, plugins=CountdownPlugins(n=50),
                           ramp_up="racing", racing_deadline=1e9,
                           heartbeat_timeout=0.3, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.stats.solver_failures == 2
        assert not lc.proven_complete
        assert lc.stats.dual_final == -math.inf

    def test_deadline_crowns_dead_winner_and_orphans_dead_loser(self):
        # the racing deadline may pick an already-crashed winner and orphan
        # a crashed loser; heartbeat monitoring must cover the loser too or
        # the engine spins forever waiting for its TERMINATED
        plan = FaultPlan(crashes=(SolverCrash(rank=1, at_time=0.05),
                                  SolverCrash(rank=2, at_time=0.05)))
        engine, lc = build(SimEngine, n_solvers=2, plugins=CountdownPlugins(n=50),
                           ramp_up="racing", racing_deadline=0.1,
                           heartbeat_timeout=0.3, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.stats.solver_failures == 2
        assert not lc.live_solvers()
        # the winner's node was reclaimed but nobody was left to solve it
        assert lc.pool_size() == 1
        assert lc.stats.nodes_reclaimed == 1

    def test_dropped_status_does_not_stall_run(self):
        plan = FaultPlan(message_faults=(MessageFault(tag=MessageTag.STATUS, count=3),))
        engine, lc = build(SimEngine, n_solvers=2, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.stats.messages_dropped >= 1


class TestThreadEngineFaults:
    def test_crashed_thread_detected_and_run_completes(self):
        plan = FaultPlan(crashes=(SolverCrash(rank=1, at_nodes=3),))
        engine, lc = build(ThreadEngine, n_solvers=2, heartbeat_timeout=0.5,
                           time_limit=30.0, fault_plan=plan)
        engine.run()
        assert lc.finished
        assert lc.stats.solver_failures == 1
        assert lc.incumbent is not None and lc.incumbent.value == 5.0


# -- acceptance: the Tables 2-3 restart-series scenario ------------------------


@pytest.fixture(scope="module")
def hc5():
    return hypercube_instance(5, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc5_optimum(hc5):
    return SteinerSolver(hc5.copy(), seed=0).solve(node_limit=2000).cost


CRASHES = (SolverCrash(rank=2, at_time=0.2), SolverCrash(rank=3, at_nodes=3))


def _campaign_config(path, plan):
    return UGConfig(
        time_limit=1e9,
        objective_epsilon=1 - 1e-6,
        heartbeat_timeout=0.4,  # > the longest observed node step on hc5
        checkpoint_path=path,
        checkpoint_interval=0.25,
        checkpoint_retain=2,
        fault_plan=plan,
    )


def _campaign_run(hc5, path, plan):
    cfg = _campaign_config(path, plan)
    return ug(hc5.copy(), SteinerUserPlugins(), n_solvers=8, comm="sim",
              config=cfg, wall_clock_limit=120).run()


class TestFaultToleranceEndToEnd:
    def test_campaign_survives_crashes_and_corruption(self, tmp_path, hc5, hc5_optimum):
        # phase 1 — discover (deterministically) how many checkpoints the
        # crashing run writes, so the fault plan can corrupt the last one
        dry_path = str(tmp_path / "dry" / "cp.json")
        r_dry = _campaign_run(hc5, dry_path, FaultPlan(crashes=CRASHES))
        n_writes = r_dry.stats.checkpoints_written
        assert n_writes >= 2  # need a .bak to fall back to

        # phase 2 — the real campaign: two solvers die mid-ramp-up AND the
        # final checkpoint write is truncated on disk
        plan = FaultPlan(
            crashes=CRASHES,
            checkpoint_faults=(CheckpointFault(nth_write=n_writes, mode="truncate"),),
        )
        path = str(tmp_path / "real" / "cp.json")
        r1 = _campaign_run(hc5, path, plan)
        # ...the run itself still terminates and proves optimality with the
        # six survivors, having reclaimed the dead solvers' nodes
        assert r1.solved
        assert r1.objective == pytest.approx(hc5_optimum)
        assert r1.stats.solver_failures == 2
        assert r1.stats.nodes_reclaimed >= 1
        assert r1.stats.surviving_solvers == 6
        assert r1.stats.checkpoints_written == n_writes

        # phase 3 — the primary checkpoint really is unusable, and the
        # loader transparently falls back to the newest rotated backup
        with pytest.raises(CheckpointError):
            load_checkpoint(path, fallback=False)
        cp = load_checkpoint(path)
        assert cp.recovered
        assert cp.source == str(backup_path(path, 1))
        assert "dual_bound" in cp.meta and "checkpoint_time" in cp.meta

        # phase 4 — restart the campaign from the recovered checkpoint and
        # prove optimality again (the paper's restart-series pattern)
        cfg2 = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6)
        r2 = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=8, comm="sim",
                config=cfg2, wall_clock_limit=120).run(restart_from=path)
        assert r2.solved
        assert r2.objective == pytest.approx(hc5_optimum)
        assert r2.stats.checkpoints_recovered == 1

    def test_campaign_replays_bit_identically(self, tmp_path, hc5):
        def once(tag):
            path = str(tmp_path / tag / "cp.json")
            plan = FaultPlan(crashes=CRASHES,
                             checkpoint_faults=(CheckpointFault(nth_write=2, mode="corrupt"),))
            r = _campaign_run(hc5, path, plan)
            s = r.stats
            return (s.solver_failures, s.nodes_reclaimed, s.nodes_generated,
                    s.transferred_nodes, s.computing_time, s.checkpoints_written,
                    s.faults_injected, r.objective)

        assert once("a") == once("b")
