"""Tests for the PCSTP solver and the MWCS reduction, vs brute force."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.steiner.instances import random_instance
from repro.steiner.mst import mst_on_subgraph
from repro.steiner.prize_collecting import (
    PCSTP,
    PrizeCollectingSolver,
    mwcs_to_pcstp,
    pcstp_to_sap,
)


def brute_force_pcstp(instance: PCSTP) -> float:
    """Enumerate connected vertex subsets (tiny graphs only)."""
    g = instance.graph
    alive = [int(v) for v in g.alive_vertices()]
    best = instance.solution_value([], set())  # pay all penalties
    for k in range(1, len(alive) + 1):
        for subset in itertools.combinations(alive, k):
            vs = set(subset)
            if k == 1:
                best = min(best, instance.solution_value([], vs))
                continue
            mst = mst_on_subgraph(g, vs)
            if mst is None:
                continue
            best = min(best, instance.solution_value(mst[0], vs))
    return best


def random_pcstp(seed: int, n: int = 7, m: int = 11) -> PCSTP:
    rng = np.random.default_rng(seed)
    g = random_instance(n, m, 2, seed=seed, max_cost=9)
    for v in range(n):
        g.terminal_mask[v] = False  # PCSTP has no hard terminals
    prizes = rng.integers(0, 13, n).astype(float)
    if prizes.max() == 0:
        prizes[0] = 5.0
    return PCSTP(g, prizes)


class TestTransformation:
    def test_terminal_per_positive_prize(self):
        inst = random_pcstp(1)
        pcsap = pcstp_to_sap(inst)
        n_potential = int(np.count_nonzero(inst.prizes > 0))
        assert len(pcsap.sap.sinks()) == n_potential
        assert len(pcsap.collect_arc) == n_potential
        assert len(pcsap.entry_arc) == n_potential

    def test_prize_validation(self):
        g = random_instance(4, 4, 2, seed=0)
        with pytest.raises(GraphError):
            PCSTP(g, np.array([1.0, -1.0, 0.0, 0.0]))
        with pytest.raises(GraphError):
            PCSTP(g, np.array([1.0, 1.0]))

    def test_all_zero_prizes_rejected(self):
        g = random_instance(4, 4, 2, seed=0)
        inst = PCSTP(g, np.zeros(4))
        with pytest.raises(GraphError):
            pcstp_to_sap(inst)


class TestSolver:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_matches_bruteforce(self, seed):
        inst = random_pcstp(seed)
        expected = brute_force_pcstp(inst)
        sol = PrizeCollectingSolver(inst, seed=seed).solve(node_limit=400)
        assert sol.value == pytest.approx(expected)
        inst.validate(sol.edges, sol.vertices)

    def test_empty_solution_when_prizes_cheap(self):
        g = random_instance(5, 7, 2, seed=3, max_cost=50)
        for v in range(5):
            g.terminal_mask[v] = False
        inst = PCSTP(g, np.full(5, 0.5))  # prizes cheaper than any edge
        sol = PrizeCollectingSolver(inst).solve(node_limit=200)
        assert sol.value == pytest.approx(brute_force_pcstp(inst))

    def test_collect_everything_when_prizes_huge(self):
        g = random_instance(5, 8, 2, seed=4, max_cost=2)
        for v in range(5):
            g.terminal_mask[v] = False
        inst = PCSTP(g, np.full(5, 100.0))
        sol = PrizeCollectingSolver(inst).solve(node_limit=200)
        assert sol.vertices == set(range(5))


class TestMWCS:
    def brute_force_mwcs(self, g, weights) -> float:
        alive = [int(v) for v in g.alive_vertices()]
        best = 0.0  # empty subgraph
        for k in range(1, len(alive) + 1):
            for subset in itertools.combinations(alive, k):
                vs = set(subset)
                if k > 1 and mst_on_subgraph(g, vs) is None:
                    continue
                best = max(best, float(sum(weights[v] for v in vs)))
        return best

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_reduction_preserves_optimum(self, seed):
        rng = np.random.default_rng(seed)
        g = random_instance(6, 9, 2, seed=seed)
        for v in range(6):
            g.terminal_mask[v] = False
        weights = rng.integers(-6, 8, 6).astype(float)
        if weights.max() <= 0:
            weights[0] = 3.0
        expected = self.brute_force_mwcs(g, weights)
        pcstp, positive_sum = mwcs_to_pcstp(g, weights)
        pc_opt = brute_force_pcstp(pcstp)
        assert positive_sum - pc_opt == pytest.approx(expected)

    def test_end_to_end_via_solver(self):
        rng = np.random.default_rng(11)
        g = random_instance(6, 10, 2, seed=11)
        for v in range(6):
            g.terminal_mask[v] = False
        weights = np.array([4.0, -2.0, 3.0, -1.0, 5.0, -3.0])
        expected = self.brute_force_mwcs(g, weights)
        pcstp, positive_sum = mwcs_to_pcstp(g, weights)
        sol = PrizeCollectingSolver(pcstp, seed=0).solve(node_limit=500)
        assert positive_sum - sol.value == pytest.approx(expected)
