"""Tests for the repro.obs telemetry subsystem and the accounting fixes
that rode along with it (stale STATUS, gap sign, objective epsilon,
running node totals)."""

from __future__ import annotations

import json
import math

import pytest

from repro.cip.params import ParamSet
from repro.obs.metrics import MetricsRegistry, busy_timelines, timeline_idle_ratios
from repro.obs.reporters import (
    Report,
    progress_report,
    render_table,
    scaling_report,
    winner_histogram,
    winner_histogram_report,
    write_bench_json,
)
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.ug.engines import SimEngine, ThreadEngine
from repro.ug.faults import FaultPlan
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.para_solver import ParaSolver
from repro.ug.statistics import UGStatistics
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


# -- shared stubs ---------------------------------------------------------------


class CountdownHandle(SolverHandle):
    def __init__(self, n: int, work: float, value: float):
        self.remaining = n
        self.work = work
        self.value = value

    def step(self) -> HandleStep:
        self.remaining -= 1
        done = self.remaining <= 0
        sols = [ParaSolution(self.value)] if done else []
        return HandleStep(done, self.work, self.value - 1.0, self.remaining, sols, 1)

    def extract_para_node(self):
        return None

    def inject_incumbent_value(self, value: float) -> None:
        pass

    def dual_bound(self) -> float:
        return self.value - 1.0

    def n_open(self) -> int:
        return self.remaining


class CountdownPlugins(UserPlugins):
    base_solver_name = "Countdown"

    def __init__(self, n=10, work=0.01, value=5.0):
        self.n, self.work, self.value = n, work, value

    def create_handle(self, instance, node, params, seed, incumbent):
        return CountdownHandle(self.n, self.work, self.value)


def build(engine_cls, n_solvers=2, plugins=None, **cfg):
    config = UGConfig(**cfg)
    lc = LoadCoordinator("inst", plugins or CountdownPlugins(), ParamSet(), config, n_solvers)
    solvers = {
        r: ParaSolver(r, lc.instance, lc.user_plugins, ParamSet(), 0,
                      status_interval_work=config.status_interval_work)
        for r in range(1, n_solvers + 1)
    }
    return engine_cls(lc, solvers, config), lc


# -- Tracer ----------------------------------------------------------------------


class TestTracer:
    def test_disabled_is_noop(self):
        tr = Tracer(enabled=False)
        tr.emit(0.0, "send", 1, dst=2)
        assert len(tr) == 0 and tr.to_jsonl() == ""

    def test_null_tracer_shared_and_disabled(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(0.0, "anything", 5)
        assert len(NULL_TRACER) == 0

    def test_ring_overflow_counts_drops(self):
        tr = Tracer(capacity=3)
        for i in range(5):
            tr.emit(float(i), "e")
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [e.t for e in tr.events()] == [2.0, 3.0, 4.0]

    def test_filtering_and_canonical_jsonl(self):
        tr = Tracer()
        tr.emit(0.5, "send", 1, dst=2, tag="status")
        tr.emit(0.7, "wake", 2)
        assert len(tr.events("send")) == 1
        assert len(tr.events(rank=2)) == 1
        lines = tr.to_jsonl().splitlines()
        assert json.loads(lines[0]) == {
            "data": {"dst": 2, "tag": "status"}, "kind": "send", "rank": 1, "t": 0.5
        }
        # canonical encoding: sorted keys, compact separators
        assert lines[0] == '{"data":{"dst":2,"tag":"status"},"kind":"send","rank":1,"t":0.5}'

    def test_dump_roundtrip(self, tmp_path):
        tr = Tracer()
        tr.emit(1.0, "assign", 1, lc_id=0)
        p = tr.dump(tmp_path / "trace.jsonl")
        assert p.read_text() == tr.to_jsonl()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# -- MetricsRegistry -------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_mirror_to_sink(self):
        stats = UGStatistics()
        m = MetricsRegistry(sink=stats)
        m.inc("transferred_nodes")
        m.inc("transferred_nodes", 2)
        m.set("root_time", 1.5)
        assert stats.transferred_nodes == 3
        assert stats.root_time == 1.5
        assert m.value("transferred_nodes") == 3

    def test_maximize_reports_new_max(self):
        m = MetricsRegistry()
        assert m.maximize("max_active_solvers", 2)
        assert not m.maximize("max_active_solvers", 1)
        assert m.maximize("max_active_solvers", 5)
        assert m.value("max_active_solvers") == 5

    def test_unmatched_name_not_mirrored(self):
        stats = UGStatistics()
        m = MetricsRegistry(sink=stats)
        m.inc("no_such_attribute")  # must not blow up or create attrs
        assert not hasattr(stats, "no_such_attribute")

    def test_timer_aggregates(self):
        m = MetricsRegistry()
        t = m.timer("checkpoint_write_seconds")
        t.observe(0.2)
        t.observe(0.4)
        d = t.as_dict()
        assert d["count"] == 2
        assert d["total"] == pytest.approx(0.6)
        assert d["mean"] == pytest.approx(0.3)
        with t.time():
            pass
        assert t.count == 3

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_as_dict_snapshot(self):
        m = MetricsRegistry()
        m.inc("a")
        m.set("b", 7)
        snap = m.as_dict()
        assert snap["a"] == 1 and snap["b"] == 7


class TestTimelines:
    def test_busy_timelines_merge_overlaps(self):
        events = [
            TraceEvent(0.0, "work", 1, {"work": 0.5}),
            TraceEvent(0.4, "work", 1, {"work": 0.2}),  # overlaps the first
            TraceEvent(1.0, "work", 1, {"work": 0.1}),
            TraceEvent(0.0, "work", 2, {"work": 0.1}),
            TraceEvent(0.0, "wake", 1, {}),  # ignored: not a work event
        ]
        tl = busy_timelines(events)
        assert len(tl[1]) == 2  # the two overlapping intervals merged
        assert tl[1][0][0] == 0.0 and tl[1][0][1] == pytest.approx(0.6)
        assert tl[1][1] == (1.0, 1.1)
        assert tl[2] == [(0.0, 0.1)]

    def test_idle_ratios_cover_silent_ranks(self):
        tl = {1: [(0.0, 0.5)]}
        ratios = timeline_idle_ratios(tl, span=1.0, ranks=[1, 2])
        assert ratios[1] == pytest.approx(0.5)
        assert ratios[2] == pytest.approx(1.0)  # never worked

    def test_timelines_from_tracer(self):
        tr = Tracer()
        tr.emit(0.0, "work", 3, work=0.25)
        assert busy_timelines(tr) == {3: [(0.0, 0.25)]}


# -- reporters -------------------------------------------------------------------


class TestReporters:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, float("nan")]])
        lines = text.splitlines()
        assert lines[0] == "\n=== T ===".strip("\n") or "=== T ===" in lines[0] or "=== T ===" in lines[1]
        assert any("2.5" in ln for ln in lines)
        assert any("-" in ln for ln in lines)  # nan renders as "-"

    def test_scaling_report_shape(self):
        results = {
            "cc3-4p": {"times": {1: 0.5, 2: 0.4}, "root_time": 0.1, "max_solvers": 2,
                       "first_max_active": 0.2},
            "hc5u": {"times": {1: 1.5, 2: 0.9}, "root_time": 0.05, "max_solvers": 2,
                     "first_max_active": 0.3},
        }
        rep = scaling_report("Table 1", results, [1, 2])
        assert rep.header == ["", "cc3-4p", "hc5u"]
        assert rep.rows[0] == ["1 solvers", 0.5, 1.5]
        assert rep.rows[1] == ["2 solvers", 0.4, 0.9]
        labels = [r[0] for r in rep.rows]
        assert "root time" in labels and "max # solvers" in labels and "first max active" in labels
        assert "Table 1" in rep.render()

    def test_winner_histogram_counts(self):
        counts = winner_histogram({"CLS": [2, 2, 4], "Mk-P": [1, 3]}, n_settings=4)
        assert counts["CLS"] == {1: 0, 2: 2, 3: 0, 4: 1}
        assert counts["Mk-P"] == {1: 1, 2: 0, 3: 1, 4: 0}

    def test_winner_histogram_report_bars_and_kinds(self):
        rep = winner_histogram_report(
            "Figure 1", {"CLS": [2, 2], "Mk-P": [1]}, n_settings=2,
            setting_kind=lambda k: "SDP" if k % 2 == 1 else "LP", bar_width=4,
        )
        assert rep.header == ["setting", "kind", "CLS", "Mk-P", ""]
        assert rep.rows[0][:2] == [1, "SDP"]
        assert rep.rows[1][:2] == [2, "LP"]
        assert rep.rows[1][-1] == "####"  # setting 2 holds the peak
        assert rep.extra["counts"]["CLS"][2] == 2

    def test_progress_report_derives_percentages(self):
        rep = progress_report("Table 2", [
            {"run": "1.1", "cores": 4, "time": 1.2, "idle": 0.25, "gap": 0.1,
             "nodes": 100, "open_final": 7},
            {"run": "1.2", "cores": 8, "time": 1.0, "idle": 0.5, "gap": math.inf,
             "nodes": 50, "open_final": 0, "restarted_from": 7},
        ])
        assert rep.header[0] == "run"
        idle_col = rep.header.index("idle%")
        gap_col = rep.header.index("gap%")
        assert rep.rows[0][idle_col] == pytest.approx(25.0)
        assert rep.rows[0][gap_col] == pytest.approx(10.0)
        assert rep.rows[1][gap_col] is None  # infinite gap renders as "-"

    def test_write_bench_json_sanitizes_and_uses_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path / "artifacts"))
        rep = Report("t", ["a"], [[float("inf")]])
        path = write_bench_json("demo", {"report": rep, "nan": float("nan"),
                                         "stats": UGStatistics()})
        assert path == tmp_path / "artifacts" / "BENCH_demo.json"
        doc = json.loads(path.read_text())  # strictly-valid JSON
        assert doc["report"]["rows"] == [["inf"]]
        assert doc["nan"] == "nan"
        assert doc["stats"]["primal_initial"] == "inf"


# -- satellite fixes -------------------------------------------------------------


class TestStaleStatus:
    def _racing_lc(self, n=3):
        config = UGConfig(ramp_up="racing", racing_deadline=100.0, racing_open_node_threshold=5)
        lc = LoadCoordinator("inst", CountdownPlugins(), ParamSet(), config, n)
        sent: list[tuple[int, MessageTag, object]] = []
        lc.start(lambda d, t, p: sent.append((d, t, p)), 0.0)
        return lc, sent

    def test_stale_status_cannot_crown_a_winner(self):
        """A delayed STATUS from a rank that already left the race must not
        re-enter _last_status and trip the open-node threshold."""
        lc, sent = self._racing_lc()
        send = lambda d, t, p: sent.append((d, t, p))  # noqa: E731
        # rank 3 drops out of the race
        lc.handle_message(
            Message(tag=MessageTag.TERMINATED, src=3, dst=0,
                    payload={"rank": 3, "racing_loser": True}),
            send, 0.01,
        )
        assert 3 not in lc.active
        # ...then its delayed STATUS (huge open count) arrives
        lc.handle_message(
            Message(tag=MessageTag.STATUS, src=3, dst=0,
                    payload={"rank": 3, "dual_bound": 99.0, "n_open": 10**6,
                             "nodes_processed": 1, "state": "racing"}),
            send, 0.02,
        )
        assert 3 not in lc._last_status
        assert lc._racing  # the race goes on — no spurious winner
        assert lc.stats.racing_winner is None

    def test_live_status_still_tracked(self):
        lc, sent = self._racing_lc()
        send = lambda d, t, p: sent.append((d, t, p))  # noqa: E731
        lc.handle_message(
            Message(tag=MessageTag.STATUS, src=1, dst=0,
                    payload={"rank": 1, "dual_bound": 4.0, "n_open": 2,
                             "nodes_processed": 1, "state": "racing"}),
            send, 0.01,
        )
        assert lc._last_status[1]["n_open"] == 2

    def test_stale_status_emits_trace_event(self):
        lc, sent = self._racing_lc()
        lc.tracer = Tracer()
        send = lambda d, t, p: sent.append((d, t, p))  # noqa: E731
        lc.handle_message(
            Message(tag=MessageTag.TERMINATED, src=2, dst=0,
                    payload={"rank": 2, "racing_loser": True}), send, 0.01,
        )
        lc.handle_message(
            Message(tag=MessageTag.STATUS, src=2, dst=0,
                    payload={"rank": 2, "dual_bound": 0.0, "n_open": 10**6,
                             "nodes_processed": 0, "state": "racing"}), send, 0.02,
        )
        assert lc.tracer.events("stale_status")[0].rank == 2


class TestGapSign:
    def test_opposite_sign_bounds_give_infinite_gap(self):
        st = UGStatistics(primal_final=5.0, dual_final=-5.0,
                          primal_initial=5.0, dual_initial=-5.0)
        assert math.isinf(st.gap_final)
        assert math.isinf(st.gap_initial)

    def test_same_sign_gap_finite(self):
        st = UGStatistics(primal_final=10.0, dual_final=8.0)
        assert st.gap_final == pytest.approx(0.2)

    def test_zero_bound_gap(self):
        st = UGStatistics(primal_final=0.5, dual_final=0.0)
        assert st.gap_final == pytest.approx(0.5)  # max(|p|,|d|,1) denominator

    def test_as_dict_contains_derived(self):
        d = UGStatistics(primal_final=4.0, dual_final=4.0, n_solvers=3).as_dict()
        assert d["gap_final"] == 0.0
        assert d["surviving_solvers"] == 3


class TestObjectiveEpsilon:
    def _solver(self, eps: float):
        sol_a = ParaSolution(10.0)
        sol_b = ParaSolution(10.0 - 0.3)  # improves by 0.3 only
        script = [
            HandleStep(False, 0.01, 1.0, 2, [sol_a], 1),
            HandleStep(False, 0.01, 1.0, 2, [sol_b], 1),
            HandleStep(True, 0.01, 1.0, 0, [], 1),
        ]

        class P(UserPlugins):
            base_solver_name = "Scripted"

            def create_handle(self, instance, node, params, seed, incumbent):
                class H(SolverHandle):
                    def step(self_h):
                        return script.pop(0)

                    def extract_para_node(self_h):
                        return None

                    def inject_incumbent_value(self_h, value):
                        pass

                    def dual_bound(self_h):
                        return 0.0

                    def n_open(self_h):
                        return len(script)

                return H()

        solver = ParaSolver(1, "inst", P(), ParamSet(), 0, objective_epsilon=eps)
        sent: list[tuple[int, MessageTag, object]] = []
        send = lambda d, t, p: sent.append((d, t, p))  # noqa: E731
        solver.handle_message(
            Message(tag=MessageTag.SUBPROBLEM, src=0, dst=1,
                    payload={"node": ParaNode({}), "incumbent": None, "settings": None}),
            send,
        )
        while solver.is_busy:
            solver.do_work(send)
        return [p for _d, t, p in sent if t is MessageTag.SOLUTION_FOUND]

    def test_wide_epsilon_filters_marginal_improvement(self):
        found = self._solver(eps=0.5)
        assert len(found) == 1  # the 0.3 improvement is below the 0.5 epsilon

    def test_tight_epsilon_reports_it(self):
        found = self._solver(eps=1e-9)
        assert len(found) == 2

    def test_config_epsilon_threaded_into_solvers(self, monkeypatch):
        import repro.ug.instantiation as inst

        seen: list[float] = []
        real = inst.ParaSolver

        class Recording(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                seen.append(self.objective_epsilon)

        monkeypatch.setattr(inst, "ParaSolver", Recording)
        cfg = UGConfig(objective_epsilon=0.123)
        ug("inst", CountdownPlugins(n=2), n_solvers=2, comm="sim", config=cfg).run()
        assert seen == [0.123, 0.123]


class TestRunningNodeTotals:
    def test_sim_engine_total_matches_solvers(self):
        engine, lc = build(SimEngine, n_solvers=2, plugins=CountdownPlugins(n=8))
        engine.run()
        assert engine._nodes_total == sum(
            s.nodes_processed_total for s in engine.solvers.values()
        )
        assert engine._nodes_total == lc.stats.nodes_generated

    def test_thread_engine_total_matches_solvers(self):
        engine, lc = build(ThreadEngine, n_solvers=2, time_limit=30.0,
                           plugins=CountdownPlugins(n=8))
        engine.run()
        assert engine._nodes_total == sum(
            s.nodes_processed_total for s in engine.solvers.values()
        )

    def test_sim_node_limit_still_interrupts(self):
        engine, lc = build(SimEngine, n_solvers=1, node_limit=3,
                           plugins=CountdownPlugins(n=1000, work=0.01))
        engine.run()
        assert lc.finished
        assert engine._nodes_total >= 3


# -- end-to-end tracing ----------------------------------------------------------


class TestTracedRuns:
    def test_sim_engine_emits_protocol_events(self):
        engine, lc = build(SimEngine, n_solvers=2, trace_enabled=True)
        engine.run()
        tr = engine.tracer
        kinds = {e.kind for e in tr.events()}
        assert {"assign", "send", "deliver", "wake", "work", "step", "terminate"} <= kinds
        # work timeline reconstructs the busy accounting
        tl = busy_timelines(tr)
        busy_1 = sum(e - s for s, e in tl.get(1, []))
        assert busy_1 == pytest.approx(engine._busy[1], abs=1e-9)

    def test_disabled_run_traces_nothing(self):
        engine, lc = build(SimEngine, n_solvers=2)
        engine.run()
        assert len(engine.tracer) == 0
        assert not engine.tracer.enabled

    def test_thread_engine_trace_has_work_events(self):
        engine, lc = build(ThreadEngine, n_solvers=2, time_limit=30.0, trace_enabled=True)
        engine.run()
        assert engine.tracer.events("work")
        assert engine.tracer.events("send")

    def test_ug_result_carries_trace(self):
        cfg = UGConfig(trace_enabled=True)
        res = ug("inst", CountdownPlugins(n=3), n_solvers=2, comm="sim", config=cfg).run()
        assert res.trace is not None and res.trace.enabled
        assert res.trace.events("assign")

    def test_racing_events_traced(self):
        engine, lc = build(
            SimEngine, n_solvers=3, trace_enabled=True, ramp_up="racing",
            racing_deadline=0.02, racing_open_node_threshold=10**6,
            plugins=CountdownPlugins(n=50, work=0.01),
        )
        engine.run()
        tr = engine.tracer
        assert len(tr.events("racing_start")) == 3
        assert len(tr.events("racing_winner")) == 1
        assert len(tr.events("racing_loser")) == 2


class TestTraceDeterminism:
    def _traced_run(self) -> str:
        plan = FaultPlan.random_plan(seed=3, n_solvers=3, n_crashes=1, n_message_drops=1)
        engine, lc = build(
            SimEngine, n_solvers=3, trace_enabled=True, ramp_up="racing",
            racing_deadline=0.05, racing_open_node_threshold=10**6,
            heartbeat_timeout=0.1, time_limit=5.0,
            plugins=CountdownPlugins(n=120, work=0.01), fault_plan=plan,
        )
        engine.run()
        return engine.tracer.to_jsonl()

    def test_same_seed_same_faultplan_byte_identical(self):
        first = self._traced_run()
        second = self._traced_run()
        assert first  # the trace is non-trivial
        assert first == second

    def test_trace_survives_dump_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(self._traced_run())
        b.write_text(self._traced_run())
        assert a.read_bytes() == b.read_bytes()
