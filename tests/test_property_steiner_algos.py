"""Property-based tests (seeded, dependency-free) for the Steiner graph
algorithms, each checked against a naive reference implementation."""

from __future__ import annotations

import math
from collections import deque

import numpy as np
import pytest

from repro.steiner.graph import SteinerGraph
from repro.steiner.instances import random_instance
from repro.steiner.maxflow import MaxFlow
from repro.steiner.mst import mst_on_subgraph
from repro.steiner.shortest_paths import dijkstra, extract_path
from repro.steiner.union_find import UnionFind

pytestmark = pytest.mark.fast

SEEDS = range(25)


# -- naive references ----------------------------------------------------------


def bfs_components(n: int, edges: list[tuple[int, int]]) -> list[int]:
    """Component label per vertex by plain BFS."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    label = [-1] * n
    for s in range(n):
        if label[s] >= 0:
            continue
        label[s] = s
        q = deque([s])
        while q:
            v = q.popleft()
            for w in adj[v]:
                if label[w] < 0:
                    label[w] = s
                    q.append(w)
    return label


def prim_mst_cost(n: int, edges: list[tuple[int, int, float]], vertices: set[int]) -> float | None:
    """O(n^2) Prim on the induced subgraph; None if disconnected."""
    vs = sorted(vertices)
    if not vs:
        return 0.0
    w: dict[tuple[int, int], float] = {}
    for u, v, c in edges:
        if u in vertices and v in vertices:
            key = (min(u, v), max(u, v))
            w[key] = min(w.get(key, math.inf), c)
    in_tree = {vs[0]}
    cost = 0.0
    while len(in_tree) < len(vs):
        best = None
        for u in in_tree:
            for v in vs:
                if v in in_tree:
                    continue
                c = w.get((min(u, v), max(u, v)))
                if c is not None and (best is None or c < best[0]):
                    best = (c, v)
        if best is None:
            return None
        cost += best[0]
        in_tree.add(best[1])
    return cost


def bellman_ford(n: int, edges: list[tuple[int, int, float]], source: int) -> list[float]:
    dist = [math.inf] * n
    dist[source] = 0.0
    for _ in range(n):
        changed = False
        for u, v, c in edges:
            if dist[u] + c < dist[v] - 1e-12:
                dist[v] = dist[u] + c
                changed = True
            if dist[v] + c < dist[u] - 1e-12:
                dist[u] = dist[v] + c
                changed = True
        if not changed:
            break
    return dist


def ford_fulkerson(n: int, arcs: list[tuple[int, int, float]], s: int, t: int) -> float:
    """BFS augmenting paths on an adjacency-matrix residual network."""
    cap = np.zeros((n, n))
    for u, v, c in arcs:
        cap[u, v] += c
    flow = 0.0
    while True:
        pred = [-1] * n
        pred[s] = s
        q = deque([s])
        while q and pred[t] < 0:
            v = q.popleft()
            for w in range(n):
                if pred[w] < 0 and cap[v, w] > 1e-12:
                    pred[w] = v
                    q.append(w)
        if pred[t] < 0:
            return flow
        bottleneck = math.inf
        v = t
        while v != s:
            bottleneck = min(bottleneck, cap[pred[v], v])
            v = pred[v]
        v = t
        while v != s:
            cap[pred[v], v] -= bottleneck
            cap[v, pred[v]] += bottleneck
            v = pred[v]
        flow += bottleneck


def graph_edges(g: SteinerGraph) -> list[tuple[int, int, float]]:
    return [(g.edges[e].u, g.edges[e].v, g.edges[e].cost) for e in g.alive_edges()]


# -- properties ----------------------------------------------------------------


class TestUnionFindProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_bfs_connectivity(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        m = int(rng.integers(0, 2 * n))
        edges = [(int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(m)]
        uf = UnionFind(n)
        for u, v in edges:
            merged = uf.union(u, v)
            assert uf.connected(u, v)
            if merged:
                assert uf.find(u) == uf.find(v)
        label = bfs_components(n, edges)
        for a in range(n):
            for b in range(n):
                assert uf.connected(a, b) == (label[a] == label[b])
        assert uf.n_components == len(set(label))

    def test_union_is_idempotent(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 3


class TestMSTProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cost_matches_prim(self, seed):
        rng = np.random.default_rng(seed)
        g = random_instance(10, 18, 3, seed=seed)
        all_vs = [int(v) for v in g.alive_vertices()]
        size = int(rng.integers(2, len(all_vs) + 1))
        vs = set(int(v) for v in rng.choice(all_vs, size=size, replace=False))
        result = mst_on_subgraph(g, vs)
        expected = prim_mst_cost(g.n, graph_edges(g), vs)
        if expected is None:
            assert result is None
        else:
            edge_ids, cost = result
            assert cost == pytest.approx(expected)
            # the chosen edges genuinely span vs without cycles
            uf = UnionFind(g.n)
            for eid in edge_ids:
                e = g.edges[eid]
                assert e.u in vs and e.v in vs
                assert uf.union(e.u, e.v)
            root = uf.find(next(iter(vs)))
            assert all(uf.find(v) == root for v in vs)


class TestDijkstraProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_distances_match_bellman_ford(self, seed):
        g = random_instance(12, 22, 3, seed=seed)
        source = seed % g.n
        dist, pred = dijkstra(g, source)
        expected = bellman_ford(g.n, graph_edges(g), source)
        for v in range(g.n):
            assert dist[v] == pytest.approx(expected[v])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_extracted_path_cost_equals_distance(self, seed):
        g = random_instance(12, 22, 3, seed=seed)
        rng = np.random.default_rng(seed)
        source, target = (int(x) for x in rng.choice(g.n, size=2, replace=False))
        dist, pred = dijkstra(g, source)
        if not math.isfinite(dist[target]):
            return
        path = extract_path(g, pred, target)
        assert sum(g.edges[e].cost for e in path) == pytest.approx(dist[target])


class TestMaxFlowProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_flow_value_matches_ford_fulkerson(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        m = int(rng.integers(n, 3 * n))
        tails = rng.integers(0, n, size=m)
        heads = rng.integers(0, n, size=m)
        keep = tails != heads
        tails, heads = tails[keep], heads[keep]
        caps = rng.integers(1, 10, size=len(tails)).astype(float)
        s, t = 0, n - 1
        mf = MaxFlow(n, tails, heads)
        mf.set_capacities(caps)
        value = mf.max_flow(s, t)
        expected = ford_fulkerson(n, list(zip(tails, heads, caps)), s, t)
        assert value == pytest.approx(expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_min_cut_capacity_equals_flow(self, seed):
        rng = np.random.default_rng(seed + 1000)
        n = int(rng.integers(4, 9))
        m = int(rng.integers(n, 3 * n))
        tails = rng.integers(0, n, size=m)
        heads = rng.integers(0, n, size=m)
        keep = tails != heads
        tails, heads = tails[keep], heads[keep]
        caps = rng.integers(1, 10, size=len(tails)).astype(float)
        s, t = 0, n - 1
        mf = MaxFlow(n, tails, heads)
        mf.set_capacities(caps)
        value = mf.max_flow(s, t)
        source_side = mf.min_cut_source_side(s)
        assert source_side[s] and not source_side[t]
        # max-flow/min-cut: crossing capacity equals the flow value
        crossing = sum(c for u, v, c in zip(tails, heads, caps)
                       if source_side[u] and not source_side[v])
        assert crossing == pytest.approx(value)
