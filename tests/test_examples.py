"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))
SLOW = {"steiner_puc_campaign.py"}


@pytest.mark.parametrize("script", [e for e in EXAMPLES if e.name not in SLOW], ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_example_inventory():
    """The deliverable requires a quickstart plus >= 2 domain scenarios."""
    names = {e.name for e in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
