"""Tests for the MISDP model and the ADMM relaxation engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.linalg import eig_pairs_below, min_eig, project_psd, sym
from repro.sdp.model import MISDP


def toy_sdp() -> MISDP:
    """max y s.t. [[1, y], [y, 1]] >= 0, -5 <= y <= 5: optimum y = 1."""
    m = MISDP("toy", b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
    m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
    return m


class TestModel:
    def test_validation_symmetric(self):
        m = MISDP(b=np.zeros(1), lb=np.zeros(1), ub=np.ones(1))
        with pytest.raises(ModelError):
            m.add_block(np.array([[0.0, 1.0], [0.0, 0.0]]), {})

    def test_validation_bounds(self):
        with pytest.raises(ModelError):
            MISDP(b=np.zeros(1), lb=np.ones(1), ub=np.zeros(1))

    def test_validation_integer_range(self):
        with pytest.raises(ModelError):
            MISDP(b=np.zeros(1), lb=np.zeros(1), ub=np.ones(1), integers=[3])

    def test_block_evaluate(self):
        m = toy_sdp()
        Z = m.blocks[0].evaluate(np.array([0.5]))
        assert Z[0, 1] == pytest.approx(0.5)

    def test_is_feasible(self):
        m = toy_sdp()
        assert m.is_feasible(np.array([0.9]))
        assert not m.is_feasible(np.array([1.5]))
        assert not m.is_feasible(np.array([9.0]))  # bound violated

    def test_linear_row_feasibility(self):
        m = toy_sdp()
        m.add_linear_row({0: 1.0}, rhs=0.5)
        assert not m.is_feasible(np.array([0.9]))


class TestLinalg:
    def test_project_psd_idempotent(self):
        rng = np.random.default_rng(0)
        B = rng.normal(size=(5, 5))
        M = sym(B)
        P = project_psd(M)
        assert min_eig(P)[0] >= -1e-9
        assert np.allclose(project_psd(P), P, atol=1e-9)

    def test_project_psd_fixes_psd(self):
        M = np.diag([1.0, 2.0])
        assert np.allclose(project_psd(M), M)

    def test_eig_pairs_below(self):
        M = np.diag([-2.0, -0.5, 1.0])
        pairs = eig_pairs_below(M, 0.0)
        assert len(pairs) == 2
        assert pairs[0][0] == pytest.approx(-2.0)

    def test_min_eig_vector(self):
        M = np.diag([3.0, -1.0])
        lam, v = min_eig(M)
        assert lam == pytest.approx(-1.0)
        assert abs(v[1]) == pytest.approx(1.0)


class TestADMM:
    def test_toy_optimum(self):
        r = solve_sdp_relaxation(toy_sdp())
        assert r.status == "optimal"
        assert r.objective == pytest.approx(1.0, abs=1e-4)

    def test_linear_row_binds(self):
        m = MISDP(b=np.array([1.0, 1.0]), lb=np.zeros(2), ub=np.ones(2))
        m.add_block(np.eye(2), {0: np.diag([1.0, 0.0]), 1: np.diag([0.0, 1.0])})
        m.add_linear_row({0: 1.0, 1: 1.0}, rhs=1.5)
        r = solve_sdp_relaxation(m)
        assert r.objective == pytest.approx(1.5, abs=1e-4)

    def test_contradictory_bounds_infeasible(self):
        m = toy_sdp()
        r = solve_sdp_relaxation(m, lb=np.array([2.0]), ub=np.array([1.0]))
        assert r.status == "infeasible"

    def test_penalty_detects_infeasible_block(self):
        m = MISDP(b=np.array([1.0]), lb=np.array([0.0]), ub=np.array([1.0]))
        m.add_block(np.array([[-1.0]]), {0: np.zeros((1, 1))})
        r = solve_sdp_relaxation(m, penalty=True)
        assert r.status == "infeasible"

    def test_penalty_on_feasible_reports_feasible_point(self):
        m = toy_sdp()
        r1 = solve_sdp_relaxation(m, penalty=True)
        assert r1.status == "optimal"  # feasible: r ~ 0
        assert m.is_feasible(r1.y, tol=1e-3)

    def test_safe_upper_bound_dominates(self):
        r = solve_sdp_relaxation(toy_sdp())
        assert r.safe_upper_bound >= r.objective

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_random_feasible_point(self, seed):
        rng = np.random.default_rng(seed)
        n, mvars = 4, 3
        m = MISDP(b=rng.normal(size=mvars), lb=-np.ones(mvars), ub=np.ones(mvars))
        mats = {}
        for i in range(mvars):
            B = rng.normal(size=(n, n))
            mats[i] = (B + B.T) / 4
        m.add_block(np.eye(n) * 2, mats)
        r = solve_sdp_relaxation(m)
        assert r.status == "optimal"
        assert m.is_feasible(r.y, tol=1e-3)

    def test_bound_tightening_reduces_objective(self):
        m = toy_sdp()
        full = solve_sdp_relaxation(m).objective
        tight = solve_sdp_relaxation(m, lb=np.array([-5.0]), ub=np.array([0.5])).objective
        assert tight <= full + 1e-6
        assert tight == pytest.approx(0.5, abs=1e-4)
