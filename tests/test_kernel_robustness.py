"""Failure-injection tests for the solver-kernel robustness layer.

Covers the ISSUE 3 tentpole: uniform ``LPStatus`` reporting from both
backends, the :class:`RobustLPSolver` failover chain (plain -> scaled ->
perturbed -> switched backend), plugin quarantine (flaky optional
plugins are contained and eventually skipped; essential-plugin failure
degrades the solve to ``NUMERICAL_ERROR`` with a still-valid dual
bound), budget-aware limit enforcement (deadlines honored within one
iteration of simplex, ADMM and the cut loop; soft-memory pressure sheds
the cut pool), and the completeness accounting for dropped subtrees.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
import scipy.linalg as sla

from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.plugins import (
    BranchingRule,
    ConstraintHandler,
    Cut,
    EventHandler,
    Heuristic,
    PropagationResult,
    Relaxator,
)
from repro.cip.result import SolveStatus
from repro.lp import LinearProgram, LPStatus, RobustLPSolver, solve_lp
from repro.lp.simplex import solve_with_simplex
from repro.obs.trace import Tracer
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.model import MISDP
from repro.utils import Budget
from tests.conftest import brute_force_binary_mip


# -- shared helpers -----------------------------------------------------------


class FakeClock:
    """Deterministic clock that advances by ``tick`` on every read."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


def small_lp() -> LinearProgram:
    lp = LinearProgram()
    x = lp.add_variable(0, 10, obj=-1.0)
    y = lp.add_variable(0, 10, obj=-2.0)
    lp.add_row({x: 1.0, y: 1.0}, rhs=6.0)
    lp.add_row({x: 1.0, y: -1.0}, lhs=-3.0)
    return lp


def knapsack_model() -> Model:
    m = Model("knap")
    vals = [10, 13, 7, 11]
    wts = [3, 4, 2, 3]
    for i in range(4):
        m.add_variable(f"x{i}", VarType.BINARY, obj=-vals[i])
    m.add_constraint({i: float(wts[i]) for i in range(4)}, rhs=7.0)
    return m


def toy_sdp() -> MISDP:
    m = MISDP("toy", b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
    m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
    return m


class FlakyHeuristic(Heuristic):
    name = "flaky_heur"
    priority = 100

    def __init__(self) -> None:
        self.calls = 0

    def run(self, solver, node, x):
        self.calls += 1
        raise RuntimeError("heuristic numerical breakdown")


class FlakyEventHandler(EventHandler):
    name = "flaky_event"

    def on_new_incumbent(self, solver, value, data):
        raise RuntimeError("event handler exploded")


class FailingRelaxator(Relaxator):
    name = "bad_relax"

    def solve(self, solver, node):
        raise RuntimeError("relaxation diverged")


class FailingBranchingRule(BranchingRule):
    name = "bad_branch"
    priority = 1000

    def branch(self, solver, node, x):
        raise RuntimeError("branching score overflow")


class RejectAllHandler(ConstraintHandler):
    """Rejects every candidate and offers no cuts: an unresolvable hole."""

    name = "reject_all"

    def check(self, solver, x):
        return False

    def separate(self, solver, node, x):
        return []

    def propagate(self, solver, node):
        return PropagationResult()


# -- uniform LPStatus reporting (satellite c) ---------------------------------


class TestLPStatusUniformity:
    def test_simplex_singular_basis_returns_error(self, monkeypatch):
        def boom(*args, **kwargs):
            raise sla.LinAlgError("injected singular basis")

        monkeypatch.setattr(sla, "lu_factor", boom)
        sol = solve_with_simplex(small_lp())
        assert sol.status is LPStatus.ERROR

    def test_simplex_iteration_limit_status(self):
        sol = solve_with_simplex(small_lp(), max_iter=1)
        assert sol.status is LPStatus.ITERATION_LIMIT

    def test_highs_numerical_failure_returns_error(self, monkeypatch):
        class FakeRes:
            status = 4
            message = "injected numerical difficulties"
            nit = 3

        monkeypatch.setattr("repro.lp.scipy_backend.linprog", lambda *a, **k: FakeRes())
        sol = solve_lp(small_lp(), "highs")
        assert sol.status is LPStatus.ERROR

    def test_plain_solution_has_empty_attempts(self):
        sol = solve_lp(small_lp(), "highs")
        assert sol.status is LPStatus.OPTIMAL
        assert sol.attempts == []


# -- the failover chain -------------------------------------------------------


class TestRobustLPSolver:
    def test_optimal_short_circuits_chain(self):
        sol = RobustLPSolver("highs").solve(small_lp())
        assert sol.status is LPStatus.OPTIMAL
        assert [a.strategy for a in sol.attempts] == ["plain"]

    def test_scaled_retry_recovers_from_transient_failure(self, monkeypatch):
        real = sla.lu_factor
        state = {"failures": 1}

        def flaky(*args, **kwargs):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise sla.LinAlgError("injected singular basis")
            return real(*args, **kwargs)

        monkeypatch.setattr(sla, "lu_factor", flaky)
        sol = RobustLPSolver("simplex").solve(small_lp())
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-10.5)
        assert [a.strategy for a in sol.attempts] == ["plain", "scaled"]
        assert sol.attempts[0].status is LPStatus.ERROR

    def test_backend_switch_is_the_last_resort(self, monkeypatch):
        def boom(*args, **kwargs):
            raise sla.LinAlgError("injected singular basis")

        monkeypatch.setattr(sla, "lu_factor", boom)  # kills every simplex attempt
        sol = RobustLPSolver("simplex").solve(small_lp())
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-10.5)
        assert [a.strategy for a in sol.attempts] == ["plain", "scaled", "perturbed", "switched"]
        assert sol.attempts[-1].backend == "highs"

    def test_iteration_limit_escalates_to_other_backend(self):
        sol = RobustLPSolver("simplex").solve(small_lp(), max_iter=1)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.attempts[-1].strategy == "switched"
        assert all(a.status is LPStatus.ITERATION_LIMIT for a in sol.attempts[:-1])

    def test_terminal_infeasible_stops_chain(self):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        lp.add_row({x: 1.0}, lhs=2.0)
        sol = RobustLPSolver("highs").solve(lp)
        assert sol.status is LPStatus.INFEASIBLE
        assert len(sol.attempts) == 1

    def test_deadline_stops_chain_between_links(self, monkeypatch):
        def boom(*args, **kwargs):
            raise sla.LinAlgError("injected singular basis")

        monkeypatch.setattr(sla, "lu_factor", boom)
        budget = Budget(time_limit=1.5, clock=FakeClock(1.0)).start()
        sol = RobustLPSolver("simplex", budget=budget).solve(small_lp())
        assert sol.status is LPStatus.TIME_LIMIT
        assert len(sol.attempts) < 4  # surrendered before exhausting the chain


# -- plugin quarantine --------------------------------------------------------


class TestPluginQuarantine:
    def test_flaky_heuristic_is_contained_and_quarantined(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(heur_frequency=1))
        heur = FlakyHeuristic()
        solver.include_heuristic(heur)
        tracer = Tracer()
        solver.tracer = tracer
        res = solver.solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-24.0)
        assert solver.quarantine.is_quarantined("flaky_heur")
        assert heur.calls == solver.params.plugin_max_failures  # skipped afterwards
        assert solver.stats.extra["plugins_quarantined"] == 1
        assert len(tracer.events("plugin_failure")) == solver.params.plugin_max_failures
        assert [e.data["plugin"] for e in tracer.events("plugin_quarantined")] == ["flaky_heur"]

    def test_flaky_event_handler_does_not_lose_incumbent(self):
        solver = make_mip_solver(knapsack_model())
        solver.include_event_handler(FlakyEventHandler())
        res = solver.solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-24.0)
        assert solver.stats.extra["plugin_failures"] >= 1

    def test_relaxator_quarantine_degrades_with_valid_bound(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(plugin_max_failures=1))
        solver.set_relaxator(FailingRelaxator())
        tracer = Tracer()
        solver.tracer = tracer
        res = solver.solve()
        assert res.status is SolveStatus.NUMERICAL_ERROR
        assert res.dual_bound <= -24.0 + 1e-9  # still a valid lower bound
        assert solver.stats.extra["numerical_degradations"] == 1
        assert [e.data["reason"] for e in tracer.events("solver_degraded")] == ["relaxator"]

    def test_all_branching_rules_failing_degrades(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        solver.branching_rules.clear()
        solver.include_branching_rule(FailingBranchingRule())
        res = solver.solve()
        assert res.status is SolveStatus.NUMERICAL_ERROR
        assert math.isfinite(res.dual_bound)
        assert res.dual_bound <= -24.0 + 1e-6  # capped by the dropped root
        assert solver.stats.extra["unresolved_nodes"] >= 1

    def test_surviving_branching_rule_keeps_solve_exact(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        solver.include_branching_rule(FailingBranchingRule())  # outranks the others
        res = solver.solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-24.0)
        assert solver.quarantine.is_quarantined("bad_branch")


# -- completeness accounting for dropped subtrees (satellite a) ----------------


class TestUnresolvedNodeAccounting:
    def test_unresolvable_nodes_forfeit_infeasibility_claim(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        solver.include_constraint_handler(RejectAllHandler())
        tracer = Tracer()
        solver.tracer = tracer
        res = solver.solve()
        # every integral point is rejected and no rule can branch further:
        # the pre-robustness kernel claimed INFEASIBLE here
        assert res.status is SolveStatus.UNKNOWN
        assert solver.stats.extra["unresolved_nodes"] >= 1
        assert math.isfinite(res.dual_bound)
        assert len(tracer.events("node_unresolved")) >= 1

    def test_unresolved_subtree_forfeits_optimal_and_caps_dual(self):
        class RejectX3(ConstraintHandler):
            name = "reject_x3"

            def check(self, solver, x):
                return x[3] <= 0.5

            def separate(self, solver, node, x):
                return []

            def propagate(self, solver, node):
                return PropagationResult()

        solver = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        solver.include_constraint_handler(RejectX3())
        res = solver.solve()
        # best solution with x3 = 0 is x0 = x1 = 1 -> -23, but the x3 = 1
        # subtree is dropped unresolved below it, so OPTIMAL is forfeit
        assert res.best_solution is not None
        assert res.objective == pytest.approx(-23.0)
        assert res.status is SolveStatus.UNKNOWN
        assert res.dual_bound <= res.objective + 1e-9


# -- root accounting across resumed solves (satellite b) -----------------------


class TestRootNodeCounting:
    def test_root_counted_once_across_resumed_solves(self):
        one_shot = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        reference = one_shot.solve()

        resumed = make_mip_solver(knapsack_model(), ParamSet(heuristics=False))
        res = resumed.solve(node_limit=1)
        while res.status is SolveStatus.NODE_LIMIT:
            res = resumed.solve(node_limit=resumed.stats.nodes_processed + 1)
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(reference.objective)
        assert resumed.stats.nodes_created == one_shot.stats.nodes_created


# -- budget-aware limit enforcement -------------------------------------------


class TestBudget:
    def test_budget_basics(self):
        clk = FakeClock(1.0)
        b = Budget(time_limit=3.0, node_limit=5, soft_memory_limit_mb=100, clock=clk, rss_mb=lambda: 50)
        assert not b.started
        b.start()
        assert b.limited and b.has_deadline
        assert not b.time_exceeded()  # elapsed 1
        assert b.remaining_time() < 3.0
        assert b.time_exceeded() or b.time_exceeded()  # clock keeps ticking past 3
        assert b.nodes_exceeded(5) and not b.nodes_exceeded(4)
        assert not b.memory_pressure()

    def test_unlimited_budget_is_constant_time_false(self):
        b = Budget().start()
        assert not b.limited
        assert not b.time_exceeded()
        assert not b.nodes_exceeded(10**9)
        assert not b.memory_pressure()

    def test_memory_pressure_uses_injected_probe(self):
        b = Budget(soft_memory_limit_mb=100, rss_mb=lambda: 500).start()
        assert b.limited and b.memory_pressure()

    def test_deadline_mid_simplex_honored_within_one_pivot(self):
        budget = Budget(time_limit=3.0, clock=FakeClock(1.0)).start()
        sol = solve_with_simplex(small_lp(), budget=budget)
        assert sol.status is LPStatus.TIME_LIMIT
        assert sol.iterations <= 4

    def test_deadline_mid_admm_honored_within_one_iteration(self):
        budget = Budget(time_limit=3.0, clock=FakeClock(1.0)).start()
        r = solve_sdp_relaxation(toy_sdp(), budget=budget)
        assert r.status == "time_limit"
        assert r.iterations <= 4

    def test_deadline_mid_solve_is_traced_as_budget_stop(self):
        solver = make_mip_solver(knapsack_model(), ParamSet(lp_backend="simplex", heuristics=False))
        tracer = Tracer()
        solver.tracer = tracer
        budget = Budget(time_limit=40.0, clock=FakeClock(1.0)).start()
        res = solver.solve(budget=budget)
        assert res.status is SolveStatus.TIME_LIMIT
        assert solver.stats.extra.get("budget_stops", 0) >= 1
        scopes = {e.data["scope"] for e in tracer.events("budget_exhausted")}
        assert scopes & {"relaxation", "cut_loop", "heuristics"}

    def test_memory_pressure_sheds_cut_pool_and_throttles_heuristics(self):
        solver = make_mip_solver(knapsack_model())
        solver.setup()
        for i in range(10):
            solver.cutpool.add(Cut.from_dict({0: 1.0}, rhs=float(10 + i), name=f"c{i}"))
        assert len(solver.cutpool) == 10
        solver.budget = Budget(soft_memory_limit_mb=100, rss_mb=lambda: 500).start()
        tracer = Tracer()
        solver.tracer = tracer
        solver.step()
        assert len(solver.cutpool) == 5
        assert solver._heur_throttle == 2
        assert solver.stats.extra["memory_pressure_events"] >= 1
        assert tracer.events("memory_pressure")[0].data["cuts_evicted"] == 5


# -- the acceptance storm + determinism ---------------------------------------


class TestAcceptance:
    def _storm_model(self):
        rng = np.random.default_rng(2)  # needs real branching (13 nodes clean)
        n = 8
        c = rng.integers(-9, 10, n).astype(float)
        A = rng.integers(-4, 5, (4, n)).astype(float)
        b = rng.integers(2, 9, 4).astype(float)
        m = Model("storm")
        for i in range(n):
            m.add_variable(vtype=VarType.BINARY, obj=float(c[i]))
        for r in range(4):
            m.add_constraint({i: float(A[r, i]) for i in range(n)}, rhs=float(b[r]))
        return m, c, A, b

    def test_combined_failure_storm_keeps_valid_bound(self, monkeypatch):
        """Always-failing heuristic + intermittent singular bases + a
        mid-relaxation deadline: the pre-robustness kernel crashed with
        LPError here; now the solve must end in a safe status with a
        dual bound that never exceeds the primal."""
        real = sla.lu_factor
        state = {"calls": 0}

        def flaky(*args, **kwargs):
            state["calls"] += 1
            if state["calls"] % 5 == 0:
                raise sla.LinAlgError("injected singular basis")
            return real(*args, **kwargs)

        monkeypatch.setattr(sla, "lu_factor", flaky)
        m, c, A, b = self._storm_model()
        params = ParamSet(
            lp_backend="simplex", heur_frequency=1, plugin_max_failures=2, presolve=False
        )
        solver = make_mip_solver(m, params)
        solver.include_heuristic(FlakyHeuristic())
        tracer = Tracer()
        solver.tracer = tracer
        budget = Budget(time_limit=300.0, clock=FakeClock(1.0)).start()
        res = solver.solve(budget=budget)

        assert res.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.TIME_LIMIT,
            SolveStatus.UNKNOWN,
            SolveStatus.NUMERICAL_ERROR,
        )
        if res.best_solution is not None:
            assert res.dual_bound <= res.objective + 1e-6
        if res.status is SolveStatus.OPTIMAL:
            assert res.objective == pytest.approx(brute_force_binary_mip(c, A, b))
        assert solver.quarantine.is_quarantined("flaky_heur")
        assert solver.stats.extra.get("lp_failovers", 0) >= 1
        assert len(tracer.events("lp_failover")) >= 1
        assert len(tracer.events("plugin_quarantined")) >= 1

    def test_robustness_trace_is_deterministic(self):
        def run() -> str:
            solver = make_mip_solver(knapsack_model(), ParamSet(heur_frequency=1))
            solver.include_heuristic(FlakyHeuristic())
            solver.include_constraint_handler(RejectAllHandler())
            tracer = Tracer()
            solver.tracer = tracer
            solver.solve()
            return tracer.to_jsonl()

        assert run() == run()
