"""Differential sweep: generator zoo vs brute-force oracles (slow tier).

Every tiny-config instance of every family is solved by the CIP kernel
and compared against the exhaustive references in
``repro.verify.differential``; the new primal heuristics must produce
certificate-valid trees on the same instances, and a full
ug[SteinerJack, sim] racing run must survive the UG-level certificate
audit. Runs in the nightly slow job (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import math

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.instances import generate_family, tiny_zoo
from repro.sdp.solver import MISDPSolver
from repro.steiner.heuristics import (
    key_vertex_local_search,
    mst_construction_heuristic,
    repeated_shortest_path_heuristic,
)
from repro.steiner.solver import SteinerSolver
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.verify.differential import brute_force_misdp, brute_force_steiner
from repro.verify.steiner import check_steiner_tree, check_ug_steiner_result

pytestmark = pytest.mark.slow

STP_ZOO = tiny_zoo(seeds=(0, 1, 2), kind="stp")
MISDP_ZOO = tiny_zoo(seeds=(0, 1, 2), kind="misdp")


@pytest.mark.parametrize("gi", STP_ZOO, ids=lambda gi: gi.name)
class TestSteinerDifferential:
    def test_cip_matches_brute_force(self, gi):
        optimum = brute_force_steiner(gi.instance)
        sol = SteinerSolver(gi.instance.copy(), seed=3).solve()
        assert math.isclose(sol.cost, optimum, rel_tol=1e-9, abs_tol=1e-6), gi.name

    def test_mst_construction_certificate_valid(self, gi):
        res = mst_construction_heuristic(gi.instance)
        assert res is not None, f"{gi.name}: construction failed on a connected instance"
        edges, cost = res
        report = check_steiner_tree(gi.instance, edges, cost)
        assert report.ok, f"{gi.name}: {report.render() if hasattr(report, 'render') else report}"
        # a heuristic tree is an upper bound on the optimum
        assert cost >= brute_force_steiner(gi.instance) - 1e-9

    def test_key_vertex_search_improves_and_stays_valid(self, gi):
        start = repeated_shortest_path_heuristic(gi.instance, n_starts=2, seed=5)
        assert start is not None
        edges, cost = key_vertex_local_search(gi.instance, start[0], max_rounds=3, seed=5)
        assert cost <= start[1] + 1e-9, f"{gi.name}: local search worsened the tree"
        assert check_steiner_tree(gi.instance, edges, cost).ok, gi.name


@pytest.mark.parametrize("gi", MISDP_ZOO, ids=lambda gi: gi.name)
class TestMisdpDifferential:
    def test_sdp_approach_matches_brute_force(self, gi):
        ref = brute_force_misdp(gi.instance)
        assert ref is not None, f"{gi.name}: anchored instance must be feasible"
        sol = MISDPSolver(gi.instance, approach="sdp", seed=3).solve(node_limit=5000)
        assert math.isclose(sol.objective, ref[0], rel_tol=1e-4, abs_tol=1e-4), gi.name

    def test_lp_approach_matches_brute_force(self, gi):
        ref = brute_force_misdp(gi.instance)
        assert ref is not None
        sol = MISDPSolver(gi.instance, approach="lp", seed=3).solve(node_limit=5000)
        assert math.isclose(sol.objective, ref[0], rel_tol=1e-4, abs_tol=1e-4), gi.name


class TestUgRacingCertificates:
    def test_racing_run_passes_ug_audit(self):
        gi = generate_family(
            "orlib_random", seed=5, configs=({"n": 30, "m": 60, "n_terminals": 6},)
        )[0]
        seq = SteinerSolver(gi.instance.copy(), seed=0).solve()
        cfg = UGConfig(
            ramp_up="racing",
            racing_deadline=0.02,
            racing_open_node_threshold=8,
            time_limit=60.0,
        )
        res = ug(
            gi.instance.copy(), SteinerUserPlugins(), n_solvers=5, comm="sim",
            params=ParamSet(), config=cfg, seed=1, wall_clock_limit=120.0,
        ).run()
        assert res.solved
        report = check_ug_steiner_result(gi.instance, res)
        assert report.ok, report
        assert math.isclose(res.objective, seq.cost, rel_tol=1e-9, abs_tol=1e-6)

    def test_heuristic_portfolio_run_is_exact_per_portfolio(self):
        from repro.apps.stp_plugins import STP_PORTFOLIOS

        gi = generate_family(
            "incidence", seed=2, configs=({"n": 14, "extra_edges": 10, "n_terminals": 4},)
        )[0]
        optimum = brute_force_steiner(gi.instance)
        for _name, portfolio in STP_PORTFOLIOS:
            sol = SteinerSolver(
                gi.instance.copy(),
                params=ParamSet(heuristic_portfolio=portfolio),
                seed=4,
            ).solve()
            assert math.isclose(sol.cost, optimum, rel_tol=1e-9, abs_tol=1e-6), _name
