"""Solution checkers of ``repro.verify``: every checker must accept the
genuine artifact and reject a corrupted copy of it."""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.exceptions import VerificationError
from repro.lp.interface import solve_lp
from repro.lp.model import LinearProgram
from repro.obs.metrics import MetricsRegistry
from repro.sdp.instances import min_k_partitioning
from repro.sdp.solver import MISDPSolver
from repro.steiner.graph import SteinerGraph
from repro.steiner.instances import hypercube_instance
from repro.steiner.prize_collecting import PCSTP
from repro.steiner.transformations import spg_to_sap
from repro.verify import (
    CheckReport,
    check_lp_certificate,
    check_misdp_result,
    check_misdp_solution,
    check_pc_solution,
    check_sap_arborescence,
    check_steiner_tree,
    check_ug_steiner_result,
)

pytestmark = pytest.mark.fast


def path_graph(costs: list[float]) -> SteinerGraph:
    g = SteinerGraph.create(len(costs) + 1)
    for i, c in enumerate(costs):
        g.add_edge(i, i + 1, float(c))
    g.set_terminal(0)
    g.set_terminal(len(costs))
    return g


class TestCheckReport:
    def test_add_and_tallies(self):
        r = CheckReport(subject="t")
        r.add("a", True)
        r.add("b", False, "broken")
        assert (r.passed, r.failed, r.ok) == (1, 1, False)
        assert [c.name for c in r.failures] == ["b"]
        assert "FAIL] b — broken" in r.summary()

    def test_raise_if_failed(self):
        r = CheckReport(subject="t")
        r.add("fine", True)
        r.raise_if_failed()  # no failures: returns quietly
        r.add("bad", False, "detail")
        with pytest.raises(VerificationError, match="bad"):
            r.raise_if_failed()

    def test_merge_and_skip(self):
        a = CheckReport()
        b = CheckReport()
        b.add("x", False)
        a.merge(b)
        assert a.failed == 1
        s = CheckReport().mark_skipped("untraced")
        assert s.skipped and s.ok
        assert "skipped" in s.summary()

    def test_record_onto_metrics(self):
        m = MetricsRegistry()
        r = CheckReport()
        r.add("a", True)
        r.add("b", False)
        r.record(m)
        CheckReport().mark_skipped("why").record(m)
        assert m.counter("verify_checks").value == 2
        assert m.counter("verify_failures").value == 1
        assert m.counter("verify_reports_skipped").value == 1


class TestLPCertificate:
    def small_lp(self) -> LinearProgram:
        lp = LinearProgram()
        lp.add_variable(0.0, 2.0, -1.0, "x0")
        lp.add_variable(0.0, 2.0, -2.0, "x1")
        lp.add_row({0: 1.0, 1: 1.0}, rhs=2.5, name="cap")
        lp.add_row({0: 1.0, 1: -1.0}, lhs=-1.0, rhs=1.0, name="band")
        return lp

    def test_genuine_certificate_accepted(self):
        lp = self.small_lp()
        sol = solve_lp(lp, "simplex")
        report = check_lp_certificate(lp, sol)
        assert report.ok, report.summary()

    def test_perturbed_primal_rejected(self):
        lp = self.small_lp()
        sol = solve_lp(lp, "simplex")
        bad = dataclasses.replace(sol, x=sol.x + 0.3)
        report = check_lp_certificate(lp, bad)
        assert not report.ok

    def test_wrong_objective_rejected(self):
        lp = self.small_lp()
        sol = solve_lp(lp, "simplex")
        bad = dataclasses.replace(sol, objective=sol.objective - 1.0)
        report = check_lp_certificate(lp, bad)
        assert any(c.name == "objective_recomputed" for c in report.failures)

    def test_flipped_duals_rejected(self):
        lp = self.small_lp()
        sol = solve_lp(lp, "simplex")
        assert np.any(sol.duals != 0.0)  # the cap row must be binding
        bad = dataclasses.replace(sol, duals=-sol.duals)
        report = check_lp_certificate(lp, bad)
        assert not report.ok


class TestSteinerTreeChecker:
    def test_genuine_tree_accepted(self):
        g = path_graph([2.0, 3.0, 4.0])
        report = check_steiner_tree(g, [0, 1, 2], claimed_value=9.0)
        assert report.ok, report.summary()

    def test_wrong_weight_rejected(self):
        g = path_graph([2.0, 3.0, 4.0])
        report = check_steiner_tree(g, [0, 1, 2], claimed_value=8.0)
        assert any(c.name == "weight_recomputed" for c in report.failures)

    def test_disconnected_terminals_rejected(self):
        g = path_graph([2.0, 3.0, 4.0])
        report = check_steiner_tree(g, [0, 2], claimed_value=6.0)
        assert any(c.name == "tree_valid" for c in report.failures)

    def test_cycle_rejected(self):
        g = path_graph([2.0, 3.0])
        g.add_edge(0, 2, 10.0)
        report = check_steiner_tree(g, [0, 1, 2])
        assert any(c.name == "tree_valid" for c in report.failures)


class TestPCChecker:
    def instance(self) -> PCSTP:
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 5.0)
        return PCSTP(g, np.array([4.0, 4.0, 2.0]))

    def test_genuine_solution_accepted(self):
        # connect 0-1 (cost 1), forgo vertex 2's prize (2): value 3
        report = check_pc_solution(self.instance(), [0], {0, 1}, claimed_value=3.0)
        assert report.ok, report.summary()

    def test_wrong_value_rejected(self):
        report = check_pc_solution(self.instance(), [0], {0, 1}, claimed_value=1.0)
        assert any(c.name == "pc_value_recomputed" for c in report.failures)

    def test_edge_leaving_vertex_set_rejected(self):
        report = check_pc_solution(self.instance(), [0, 1], {0, 1}, claimed_value=6.0)
        assert any(c.name == "pc_tree_valid" for c in report.failures)

    def test_empty_vertex_set_rejected(self):
        report = check_pc_solution(self.instance(), [], set())
        assert any(c.name == "pc_tree_valid" for c in report.failures)


class TestSAPChecker:
    def test_genuine_arborescence_accepted(self):
        g = path_graph([2.0, 3.0])
        sap = spg_to_sap(g, root=0)
        # forward arcs along the path: edge k's root-ward arc is 2k
        arcs = [a for a in range(sap.num_arcs)
                if sap.arc_tail[a] < sap.arc_head[a]]
        report = check_sap_arborescence(sap, arcs, claimed_value=5.0)
        assert report.ok, report.summary()

    def test_arc_into_root_rejected(self):
        g = path_graph([2.0, 3.0])
        sap = spg_to_sap(g, root=0)
        backwards = [a for a in range(sap.num_arcs) if sap.arc_head[a] == 0]
        report = check_sap_arborescence(sap, backwards, claimed_value=2.0)
        assert any(c.name == "arborescence_valid" for c in report.failures)

    def test_unreachable_arc_rejected(self):
        g = path_graph([2.0, 3.0])
        sap = spg_to_sap(g, root=0)
        # only the far arc (1 -> 2): not connected to the root
        far = [a for a in range(sap.num_arcs)
               if sap.arc_tail[a] == 1 and sap.arc_head[a] == 2]
        report = check_sap_arborescence(sap, far)
        assert any(c.name == "arborescence_valid" for c in report.failures)


class TestMISDPChecker:
    def test_genuine_solution_accepted(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        assert sol.y is not None
        report = check_misdp_result(m, sol)
        assert report.ok, report.summary()

    def test_fractional_point_rejected(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        y = np.full(m.num_vars, 0.5)
        report = check_misdp_solution(m, y)
        assert any(c.name == "integrality" for c in report.failures)

    def test_bound_violation_rejected(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        y = np.full(m.num_vars, 2.0)
        report = check_misdp_solution(m, y)
        assert any(c.name == "bounds" for c in report.failures)

    def test_wrong_objective_rejected(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        report = check_misdp_solution(m, sol.y, claimed_value=sol.objective + 5.0)
        assert any(c.name == "objective_recomputed" for c in report.failures)

    def test_broken_weak_duality_rejected(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        bad = dataclasses.replace(sol, dual_bound=sol.objective - 10.0)
        report = check_misdp_result(m, bad)
        assert any(c.name == "weak_duality" for c in report.failures)

    def test_missing_solution_is_trivially_ok(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        empty = dataclasses.replace(sol, y=None)
        report = check_misdp_result(m, empty)
        assert report.ok


class TestUGSteinerChecker:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.apps.stp_plugins import SteinerUserPlugins
        from repro.ug import ug
        from repro.ug.config import UGConfig

        g = hypercube_instance(3, perturbed=True, seed=4)
        solver = ug(g.copy(), SteinerUserPlugins(), n_solvers=2, comm="sim",
                    config=UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6),
                    seed=1, wall_clock_limit=90.0)
        return g, solver.run()

    def test_genuine_result_accepted(self, run):
        g, res = run
        assert res.solved
        report = check_ug_steiner_result(g, res)
        assert report.ok, report.summary()

    def test_tampered_edges_rejected(self, run):
        g, res = run
        edges = list(res.incumbent.payload["edges"])
        tampered = dataclasses.replace(
            res, incumbent=dataclasses.replace(
                res.incumbent, payload={"edges": edges[:-1]}))
        report = check_ug_steiner_result(g, tampered)
        assert not report.ok

    def test_tampered_value_rejected(self, run):
        g, res = run
        tampered = dataclasses.replace(
            res, incumbent=dataclasses.replace(
                res.incumbent, value=res.incumbent.value - 1.0))
        report = check_ug_steiner_result(g, tampered)
        assert any(c.name == "weight_recomputed" for c in report.failures)

    def test_bogus_dual_bound_rejected(self, run):
        g, res = run
        tampered = dataclasses.replace(res, dual_bound=res.objective + 5.0)
        report = check_ug_steiner_result(g, tampered)
        assert any(c.name == "weak_duality" for c in report.failures)

    def test_no_incumbent_is_trivially_ok(self, run):
        g, res = run
        empty = dataclasses.replace(res, incumbent=None)
        report = check_ug_steiner_result(g, empty)
        assert report.ok and any(c.name == "no_incumbent" for c in report.checks)


class TestGapConventions:
    def test_solve_result_gap_opposite_signs_is_inf(self):
        from repro.cip.result import SolveResult, SolveStatus, Solution

        res = SolveResult(status=SolveStatus.NODE_LIMIT,
                          best_solution=Solution(5.0, np.zeros(1)),
                          dual_bound=-5.0, nodes_processed=1)
        assert res.gap == math.inf

    def test_tolerances_rel_gap_opposite_signs_is_inf(self):
        from repro.utils.tolerances import DEFAULT_TOL

        assert DEFAULT_TOL.rel_gap(5.0, -5.0) == math.inf
        assert DEFAULT_TOL.rel_gap(math.inf, 3.0) == math.inf
        assert DEFAULT_TOL.rel_gap(110.0, 100.0) == pytest.approx(10.0 / 110.0)
