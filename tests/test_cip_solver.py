"""Tests for the CIP solve loop: MIP correctness, limits, plugins, events."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.plugins import EventHandler, Heuristic, Presolver
from repro.cip.result import SolveStatus
from repro.cip.solver import CIPSolver
from repro.exceptions import PluginError
from tests.conftest import brute_force_binary_mip


def knapsack_model() -> Model:
    m = Model("knap")
    vals = [10, 13, 7, 11]
    wts = [3, 4, 2, 3]
    for i in range(4):
        m.add_variable(f"x{i}", VarType.BINARY, obj=-vals[i])
    m.add_constraint({i: float(wts[i]) for i in range(4)}, rhs=7.0)
    return m


class TestMIPSolve:
    def test_knapsack_optimal(self):
        res = make_mip_solver(knapsack_model()).solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-24.0)
        assert res.gap == pytest.approx(0.0, abs=1e-9)

    def test_infeasible(self):
        m = Model()
        m.add_variable(vtype=VarType.INTEGER, lb=0, ub=10, obj=1.0)
        m.add_constraint({0: 2.0}, lhs=3.0, rhs=3.0)
        res = make_mip_solver(m).solve()
        assert res.status is SolveStatus.INFEASIBLE
        assert res.best_solution is None

    def test_continuous_only(self):
        m = Model()
        m.add_variable(lb=0, ub=4, obj=-1.0)
        res = make_mip_solver(m).solve()
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-4.0)

    def test_node_limit(self):
        m = Model()
        # a problem needing branching: maximize sum x_i with parity rows
        for i in range(8):
            m.add_variable(vtype=VarType.BINARY, obj=-1.0)
        m.add_constraint({i: 1.0 for i in range(8)}, rhs=4.5)
        solver = make_mip_solver(m, ParamSet(heuristics=False, presolve=False))
        res = solver.solve(node_limit=1)
        assert res.nodes_processed <= 1

    def test_objective_integral_cutoff(self):
        m = knapsack_model()
        m.objective_integral = True
        solver = make_mip_solver(m)
        res = solver.solve()
        assert res.objective == pytest.approx(-24.0)

    def test_callback_interrupt(self):
        m = knapsack_model()
        solver = make_mip_solver(m, ParamSet(heuristics=False))
        res = solver.solve(callback=lambda s: False)
        assert res.status is SolveStatus.INTERRUPTED

    def test_maximisation_via_sense(self):
        m = Model(obj_sense=-1)
        m.add_variable(vtype=VarType.INTEGER, lb=0, ub=3, obj=-2.0)  # internal min(-2x)
        res = make_mip_solver(m).solve()
        assert m.external_objective(res.objective) == pytest.approx(6.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_binary_vs_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        c = rng.integers(-9, 10, n).astype(float)
        A = rng.integers(-4, 5, (3, n)).astype(float)
        b = rng.integers(2, 9, 3).astype(float)
        m = Model()
        for i in range(n):
            m.add_variable(vtype=VarType.BINARY, obj=float(c[i]))
        for r in range(3):
            m.add_constraint({i: float(A[r, i]) for i in range(n)}, rhs=float(b[r]))
        expected = brute_force_binary_mip(c, A, b)
        res = make_mip_solver(m).solve(node_limit=2000)
        if expected is None:
            assert res.status is SolveStatus.INFEASIBLE
        else:
            assert res.status is SolveStatus.OPTIMAL
            assert res.objective == pytest.approx(expected, abs=1e-6)


class TestPlugins:
    def test_double_registration_rejected(self):
        solver = make_mip_solver(knapsack_model())
        with pytest.raises(PluginError):
            from repro.cip.heuristics import RoundingHeuristic

            solver.include_heuristic(RoundingHeuristic())

    def test_relaxator_single(self):
        from repro.cip.plugins import Relaxator

        class Dummy(Relaxator):
            name = "dummy"

        solver = CIPSolver(knapsack_model())
        solver.set_relaxator(Dummy())
        with pytest.raises(PluginError):
            solver.set_relaxator(Dummy())

    def test_step_requires_setup(self):
        solver = CIPSolver(knapsack_model())
        with pytest.raises(PluginError):
            solver.step()

    def test_event_handler_sees_incumbents(self):
        events = []

        class Recorder(EventHandler):
            name = "recorder"

            def on_new_incumbent(self, solver, value, data):
                events.append(value)

        solver = make_mip_solver(knapsack_model())
        solver.include_event_handler(Recorder())
        solver.solve()
        assert events and min(events) == pytest.approx(-24.0)

    def test_presolver_fixpoint(self):
        calls = []

        class Once(Presolver):
            name = "once"

            def presolve(self, solver):
                calls.append(1)
                return 0

        solver = CIPSolver(knapsack_model())
        solver.include_presolver(Once())
        solver.presolve()
        assert len(calls) == 1  # zero reductions -> no second round

    def test_heuristic_frequency_zero_disables(self):
        ran = []

        class Spy(Heuristic):
            name = "spy"

            def run(self, solver, node, x):
                ran.append(1)

        solver = make_mip_solver(knapsack_model(), ParamSet(heur_frequency=0))
        solver.include_heuristic(Spy())
        solver.solve()
        assert not ran


class TestIncumbentManagement:
    def test_add_solution_rejects_worse(self):
        solver = make_mip_solver(knapsack_model())
        solver.setup()
        assert solver.add_solution(-10.0, np.array([1.0, 0, 0, 1.0]), check=True)
        assert not solver.add_solution(-5.0, np.array([1.0, 0, 0, 0]), check=True)

    def test_add_solution_checks_feasibility(self):
        solver = make_mip_solver(knapsack_model())
        solver.setup()
        # weight 13 > 7: infeasible, must be rejected
        assert not solver.add_solution(-41.0, np.array([1.0, 1.0, 1.0, 1.0]), check=True)

    def test_set_cutoff_prunes(self):
        solver = make_mip_solver(knapsack_model())
        solver.setup()
        solver.set_cutoff_value(-1000.0)
        out = solver.step()
        assert out.finished
        # cutoff below optimum: everything pruned, no solution retained

    def test_dual_bound_before_setup(self):
        solver = make_mip_solver(knapsack_model())
        assert solver.dual_bound() == -math.inf
