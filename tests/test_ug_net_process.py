"""True-parallel ProcessEngine: spawned ranks over the wire codec.

These tests fork real OS processes (``multiprocessing`` spawn context),
so they are kept separate from the single-process net tests.  The
2-rank pipe smoke stays in the fast CI tier (it is the CI workflow's
process-engine smoke step); the 4-rank / TCP / crash scenarios carry
``@pytest.mark.slow``.
"""

from __future__ import annotations

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.steiner.instances import hypercube_instance
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.ug.faults import FaultPlan, SolverCrash
from repro.verify import audit_ug_run, check_ug_steiner_result

STP_CFG = dict(time_limit=1e9, objective_epsilon=1 - 1e-6)


def run_pair(graph, n_solvers, **cfg):
    """Solve ``graph`` with the SimEngine and the ProcessEngine, verify
    both, and return (sim_result, process_result)."""
    plugins = SteinerUserPlugins()
    sim = ug(graph.copy(), plugins, n_solvers=n_solvers, comm="sim",
             config=UGConfig(**STP_CFG)).run()
    res = ug(graph.copy(), plugins, n_solvers=n_solvers, comm="process",
             config=UGConfig(**STP_CFG, **cfg)).run()
    for r in (sim, res):
        check_ug_steiner_result(graph, r).raise_if_failed()
        audit_ug_run(r).raise_if_failed()
    return sim, res


def test_process_smoke_two_ranks():
    """Fast CI smoke: 2 spawned ranks over pipes reach the SimEngine's
    optimum on a tiny instance and pass every verifier."""
    graph = hypercube_instance(4, perturbed=False, seed=1)
    sim, res = run_pair(graph, 2, trace_enabled=True)
    assert res.solved and sim.solved
    assert res.objective == sim.objective
    assert res.name == "ug[SteinerJack, MPI]"
    # the wire was genuinely exercised and every rank did real work
    assert res.stats.net_frames_sent > 0
    assert res.stats.net_frames_received > 0
    assert set(res.stats.solver_busy) == {1, 2}


def test_process_warm_pool_reuse():
    """Back-to-back runs are served by parked pooled workers, not fresh
    spawns: the second run reports every rank as a pool reuse, and the
    answers stay right.  Also pins the alive-interval idle accounting —
    a pipelined 1-rank run is busy nearly wall-to-wall."""
    from repro.ug.net.process_engine import WORKER_POOL, warm_pool

    graph = hypercube_instance(4, perturbed=False, seed=1)
    plugins = SteinerUserPlugins()
    sim = ug(graph.copy(), plugins, n_solvers=1, comm="sim",
             config=UGConfig(**STP_CFG)).run()
    warm_pool(1)
    results = [
        ug(graph.copy(), plugins, n_solvers=1, comm="process",
           config=UGConfig(**STP_CFG)).run()
        for _ in range(2)
    ]
    for res in results:
        assert res.solved and res.objective == sim.objective
        assert res.stats.warm_pool_reuses == 1
        # satellite (a): idle is measured against the rank's alive span,
        # not span x nranks — a busy single rank cannot look mostly idle
        assert 0.0 <= res.stats.idle_ratio < 0.5
        check_ug_steiner_result(graph, res).raise_if_failed()
    # the worker went back to the pool after each run
    assert WORKER_POOL.size() >= 1


def test_warm_pool_not_used_under_fault_plans():
    """Fault-injected runs must see pristine workers (a pooled worker
    carries no injector state), so the pool is bypassed."""
    from repro.ug.net.process_engine import warm_pool

    graph = hypercube_instance(4, perturbed=False, seed=1)
    warm_pool(1)
    plan = FaultPlan(crashes=(SolverCrash(rank=1, at_time=1e9),))  # inert
    res = ug(graph.copy(), SteinerUserPlugins(), n_solvers=1, comm="process",
             config=UGConfig(fault_plan=plan, **STP_CFG)).run()
    assert res.solved
    assert res.stats.warm_pool_reuses == 0


@pytest.mark.slow
def test_process_four_ranks_matches_sim():
    """The ISSUE acceptance run: 4 ranks, real processes, OPTIMAL with
    the same objective the deterministic SimEngine proves."""
    graph = hypercube_instance(5, perturbed=False, seed=1)
    sim, res = run_pair(graph, 4, trace_enabled=True)
    assert res.solved and sim.solved
    assert res.objective == sim.objective
    assert res.stats.nodes_generated > 0
    assert set(res.stats.solver_busy) == {1, 2, 3, 4}
    assert all(b > 0.0 for b in res.stats.solver_busy.values())


@pytest.mark.slow
def test_process_tcp_transport():
    """Same protocol over TCP sockets with the hello handshake."""
    graph = hypercube_instance(4, perturbed=False, seed=1)
    sim, res = run_pair(graph, 2, net_transport="tcp")
    assert res.solved
    assert res.objective == sim.objective
    assert res.stats.net_bytes_sent > 0


def test_process_elastic_smoke():
    """Fast CI elastic smoke: 2 spawned ranks, one is killed mid-run and a
    fresh rank is admitted by the ClusterSupervisor; the solve still
    completes at the SimEngine optimum and passes every verifier."""
    from repro.ug.cluster import ClusterEvent, ClusterPlan

    graph = hypercube_instance(4, perturbed=False, seed=1)
    plugins = SteinerUserPlugins()
    sim = ug(graph.copy(), plugins, n_solvers=2, comm="sim",
             config=UGConfig(**STP_CFG)).run()
    cfg = UGConfig(
        trace_enabled=True,
        fault_plan=FaultPlan(crashes=(SolverCrash(rank=2, at_time=0.2),)),
        cluster_plan=ClusterPlan(events=(ClusterEvent(at_time=0.3, action="join"),)),
        # heartbeats are the backstop here: a fresh joiner pays spawn/import
        # cost before its first status, and the process sentinel already
        # catches real deaths fast
        heartbeat_timeout=10.0,
        time_limit=60.0,
        objective_epsilon=1 - 1e-6,
    )
    res = ug(graph.copy(), plugins, n_solvers=2, comm="process", config=cfg).run()
    assert res.stats.solver_failures == 1
    assert res.stats.ranks_joined == 1
    assert res.objective == sim.objective
    check_ug_steiner_result(graph, res).raise_if_failed()
    audit_ug_run(res).raise_if_failed()
    kinds = {e.kind for e in res.trace.events()}
    assert "rank_death_observed" in kinds and "rank_join" in kinds


@pytest.mark.slow
def test_process_elastic_tcp_drain():
    """Graceful scale-down over real TCP sockets: a drained rank flushes
    its DRAINED goodbye before exiting (no phantom death), and a late
    joiner dials in through the persistent accept loop."""
    from repro.ug.cluster import ClusterEvent, ClusterPlan

    graph = hypercube_instance(5, perturbed=False, seed=1)
    plugins = SteinerUserPlugins()
    sim = ug(graph.copy(), plugins, n_solvers=3, comm="sim",
             config=UGConfig(**STP_CFG)).run()
    cfg = UGConfig(
        trace_enabled=True,
        net_transport="tcp",
        cluster_plan=ClusterPlan(events=(
            ClusterEvent(at_time=0.3, action="join"),
            ClusterEvent(at_time=0.6, action="drain"),
        )),
        heartbeat_timeout=10.0,
        time_limit=120.0,
        objective_epsilon=1 - 1e-6,
    )
    res = ug(graph.copy(), plugins, n_solvers=3, comm="process", config=cfg).run()
    assert res.stats.ranks_joined == 1
    assert res.stats.ranks_drained == 1
    assert res.stats.drain_timeouts == 0
    assert res.stats.solver_failures == 0
    assert res.objective == sim.objective
    check_ug_steiner_result(graph, res).raise_if_failed()
    audit_ug_run(res).raise_if_failed()


@pytest.mark.slow
def test_process_rank_crash_detected_and_survived():
    """A worker process dying mid-run (injected ``os._exit``) is detected
    by the parent, mapped onto the heartbeat-failure path, and the run
    still ends with a correct tree and an honest claim."""
    graph = hypercube_instance(5, perturbed=False, seed=1)
    plugins = SteinerUserPlugins()
    sim = ug(graph.copy(), plugins, n_solvers=3, comm="sim",
             config=UGConfig(**STP_CFG)).run()
    plan = FaultPlan(crashes=(SolverCrash(rank=2, at_time=0.05),))
    cfg = UGConfig(trace_enabled=True, fault_plan=plan, **STP_CFG)
    res = ug(graph.copy(), plugins, n_solvers=3, comm="process",
             config=cfg).run()
    assert res.stats.solver_failures == 1
    assert res.stats.surviving_solvers == 2
    assert res.incumbent is not None
    assert res.objective == sim.objective
    # unlike the deterministic loopback scenario, real-process timing may
    # kill the rank while it holds no assignment — then there is nothing
    # to reclaim and solved=True is still honest; the LC reclaims any
    # node the dead rank *did* hold before it may claim completeness.
    check_ug_steiner_result(graph, res).raise_if_failed()
    audit_ug_run(res).raise_if_failed()
    kinds = {e.kind for e in res.trace.events()}
    assert "rank_death_observed" in kinds
