"""Tests for the CIP framework: model, tree, nodes, cut pool, params."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cip.cutpool import CutPool
from repro.cip.model import Model, VarType
from repro.cip.node import Node, _merge_local
from repro.cip.params import EMPHASIS_PRESETS, ParamSet, emphasis
from repro.cip.plugins import Cut
from repro.cip.tree import NodeTree
from repro.exceptions import ModelError


class TestModel:
    def test_binary_bounds_clamped(self):
        m = Model()
        v = m.add_variable(vtype=VarType.BINARY, lb=-3, ub=7)
        assert (v.lb, v.ub) == (0.0, 1.0)

    def test_integer_indices(self):
        m = Model()
        m.add_variable(vtype=VarType.CONTINUOUS)
        m.add_variable(vtype=VarType.INTEGER)
        m.add_variable(vtype=VarType.BINARY)
        assert m.integer_indices == [1, 2]

    def test_objective_offset_and_sense(self):
        m = Model(obj_offset=5.0, obj_sense=-1)
        m.add_variable(obj=2.0)
        assert m.objective_value(np.array([3.0])) == pytest.approx(11.0)
        assert m.external_objective(11.0) == pytest.approx(-11.0)

    def test_check_linear(self):
        m = Model()
        m.add_variable(lb=0, ub=1)
        m.add_constraint({0: 1.0}, rhs=0.5)
        assert m.check_linear(np.array([0.4]))
        assert not m.check_linear(np.array([0.9]))

    def test_constraint_validation(self):
        m = Model()
        m.add_variable()
        with pytest.raises(ModelError):
            m.add_constraint({3: 1.0})
        with pytest.raises(ModelError):
            m.add_constraint({0: 1.0}, lhs=2.0, rhs=1.0)

    def test_copy_independent(self):
        m = Model()
        m.add_variable(lb=0, ub=5)
        m.add_constraint({0: 1.0}, rhs=3.0)
        c = m.copy()
        c.variables[0].ub = 1.0
        c.constraints[0].rhs = 9.0
        assert m.variables[0].ub == 5.0
        assert m.constraints[0].rhs == 3.0


class TestNode:
    def test_child_merges_bounds_by_intersection(self):
        root = Node(0, -1, 0, 0.0, {1: (0.0, 5.0)})
        child = root.child(1, {1: (2.0, 10.0)}, {}, None)
        assert child.bound_changes[1] == (2.0, 5.0)
        assert child.depth == 1

    def test_child_estimate_monotone(self):
        root = Node(0, -1, 0, 7.0)
        child = root.child(1, {}, {}, 3.0)
        assert child.lower_bound == 7.0

    def test_local_rows_accumulate(self):
        cut = Cut.from_dict({0: 1.0}, lhs=1.0)
        root = Node(0, -1, 0, 0.0)
        child = root.child(1, {}, {}, None, (cut,))
        grand = child.child(2, {}, {}, None, (cut,))
        assert len(grand.local_rows) == 2

    def test_merge_local_tuples_append(self):
        merged = _merge_local({"d": ((1, "in"),)}, {"d": ((2, "out"),)})
        assert merged["d"] == ((1, "in"), (2, "out"))

    def test_merge_local_scalars_replace(self):
        assert _merge_local({"k": 1}, {"k": 2})["k"] == 2


class TestNodeTree:
    def test_bestbound_order(self):
        t = NodeTree("bestbound")
        t.push(Node(1, 0, 1, 5.0))
        t.push(Node(2, 0, 1, 3.0))
        t.push(Node(3, 0, 1, 4.0))
        assert [t.pop().node_id for _ in range(3)] == [2, 3, 1]

    def test_dfs_order(self):
        t = NodeTree("dfs")
        t.push(Node(1, 0, 1, 0.0))
        t.push(Node(2, 0, 2, 0.0))
        t.push(Node(3, 0, 2, 0.0))
        assert t.pop().node_id == 3  # deepest, most recent

    def test_unknown_selection(self):
        with pytest.raises(ValueError):
            NodeTree("random")

    def test_prune(self):
        t = NodeTree()
        for b in (1.0, 2.0, 3.0):
            t.push(Node(int(b), 0, 1, b))
        assert t.prune_worse_than(2.5) == 1
        assert len(t) == 2
        assert t.best_bound() == 1.0

    def test_extract_heaviest_prefers_shallow(self):
        t = NodeTree()
        t.push(Node(1, 0, 5, 1.0))
        t.push(Node(2, 0, 2, 2.0))
        assert t.extract_heaviest().node_id == 2
        assert len(t) == 1

    def test_empty_behaviour(self):
        t = NodeTree()
        assert t.best_bound() == math.inf
        assert t.extract_heaviest() is None
        assert not t


class TestCutPool:
    def test_dedup(self):
        pool = CutPool()
        c = Cut.from_dict({0: 1.0, 1: 2.0}, rhs=3.0)
        assert pool.add(c)
        assert not pool.add(Cut.from_dict({1: 2.0, 0: 1.0}, rhs=3.0))
        assert len(pool) == 1

    def test_eviction(self):
        pool = CutPool(max_size=9)
        for i in range(12):
            pool.add(Cut.from_dict({0: float(i + 1)}, rhs=1.0))
        assert len(pool) <= 10

    def test_violation(self):
        c = Cut.from_dict({0: 1.0}, lhs=1.0)
        assert c.violation(np.array([0.2])) == pytest.approx(0.8)
        assert c.violation(np.array([1.5])) == 0.0


class TestParams:
    def test_emphasis_presets_exist(self):
        for name in ("default", "easycip", "aggressive", "feasibility", "optimality"):
            assert name in EMPHASIS_PRESETS
            p = emphasis(name)
            assert p.emphasis == name

    def test_unknown_emphasis(self):
        with pytest.raises(ModelError):
            emphasis("supersonic")

    def test_with_changes_known_field(self):
        p = ParamSet().with_changes(node_limit=5)
        assert p.node_limit == 5
        assert ParamSet().node_limit != 5 or True  # original untouched

    def test_with_changes_extras(self):
        p = ParamSet().with_changes(**{"steiner/extended_reductions": True})
        assert p.get_extra("steiner/extended_reductions") is True
        q = p.with_changes(node_limit=3)
        assert q.get_extra("steiner/extended_reductions") is True

    def test_easycip_cheaper_than_aggressive(self):
        assert emphasis("easycip").max_sepa_rounds < emphasis("aggressive").max_sepa_rounds
