"""Wire codec, transports, channels and the deterministic loopback engine."""

from __future__ import annotations

import math
import socket
import struct

import numpy as np
import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.params import ParamSet
from repro.steiner.instances import hypercube_instance
from repro.ug import ug
from repro.ug.config import UGConfig
from repro.ug.engines import SimEngine, ThreadEngine
from repro.ug.faults import FaultPlan, FrameFault, SolverCrash
from repro.ug.messages import Message, MessageTag, SeqStamper
from repro.ug.net.channel import MessageChannel, corrupt_frame
from repro.ug.net.codec import (
    HEADER_SIZE,
    WIRE_VERSION,
    BadMagicError,
    ChecksumError,
    FrameDecodeError,
    PayloadDecodeError,
    PayloadEncodeError,
    TruncatedFrameError,
    UnknownTagError,
    UnsupportedVersionError,
    decode_message,
    encode_message,
    roundtrip_message,
)
from repro.ug.net.transport import (
    BackpressureError,
    LoopbackTransport,
    PipeTransport,
    TcpTransport,
    TransportClosedError,
    tcp_listener,
)
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.verify import audit_ug_run, check_ug_steiner_result

STP_CFG = dict(time_limit=1e9, objective_epsilon=1 - 1e-6)

TAGS = list(MessageTag)


def random_payload(rng: np.random.Generator, depth: int = 0):
    """A randomized protocol-shaped payload (every wire kind reachable)."""
    kind = rng.integers(0, 9 if depth < 2 else 6)
    if kind == 0:
        return None
    if kind == 1:
        return int(rng.integers(-(2**40), 2**40))
    if kind == 2:
        return float(rng.choice([rng.normal() * 1e6, math.inf, -math.inf, 0.0]))
    if kind == 3:
        return "".join(chr(int(c)) for c in rng.integers(32, 0x2FA0, size=8))
    if kind == 4:
        return ParaNode(
            payload={"fixed": [int(x) for x in rng.integers(0, 100, size=5)]},
            dual_bound=float(rng.normal()),
            depth=int(rng.integers(0, 30)),
            lc_id=int(rng.integers(-1, 1000)),
            lineage=tuple(int(x) for x in rng.integers(0, 50, size=3)),
            attempts=int(rng.integers(0, 4)),
        )
    if kind == 5:
        return ParaSolution(float(rng.normal()), payload={"edges": [1, 2, 3]})
    if kind == 6:
        return {f"k{i}": random_payload(rng, depth + 1) for i in range(int(rng.integers(1, 4)))}
    if kind == 7:
        return [random_payload(rng, depth + 1) for _ in range(int(rng.integers(1, 4)))]
    return ParamSet(permutation_seed=int(rng.integers(0, 100)), time_limit=math.inf)


def assert_payload_equal(a, b):
    if isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b)
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for k in a:
            assert_payload_equal(a[k], b[k])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_payload_equal(x, y)
    else:
        assert a == b


class TestCodecRoundtrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_messages(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(8):
            msg = Message(
                tag=TAGS[int(rng.integers(0, len(TAGS)))],
                src=int(rng.integers(0, 64)),
                dst=int(rng.integers(0, 64)),
                payload=random_payload(rng),
                seq=int(rng.integers(0, 2**40)),
            )
            out = roundtrip_message(msg)
            assert out.tag is msg.tag
            assert out.src == msg.src and out.dst == msg.dst and out.seq == msg.seq
            assert_payload_equal(msg.payload, out.payload)

    def test_nan_payload(self):
        out = roundtrip_message(Message(MessageTag.STATUS, 1, 0, {"x": math.nan}, seq=1))
        assert math.isnan(out.payload["x"])

    def test_numpy_scalars_coerced(self):
        msg = Message(MessageTag.STATUS, 1, 0, {"n": np.int64(7), "x": np.float64(1.5)}, seq=0)
        out = roundtrip_message(msg)
        assert out.payload == {"n": 7, "x": 1.5}
        assert isinstance(out.payload["n"], int)

    def test_kind_key_escaping(self):
        """A user dict that shadows the codec's tag survives unscathed."""
        payload = {"__kind": "ParaNode", "v": [1, 2]}
        out = roundtrip_message(Message(MessageTag.STATUS, 1, 0, payload, seq=0))
        assert out.payload == payload
        assert isinstance(out.payload, dict)

    def test_no_aliasing(self):
        """Decoded objects share nothing with what was encoded."""
        node = ParaNode(payload={"fixed": [1, 2]}, dual_bound=3.0)
        msg = Message(MessageTag.SUBPROBLEM, 0, 1, {"node": node, "incumbent": 9.0}, seq=4)
        out = roundtrip_message(msg)
        got = out.payload["node"]
        assert got is not node and got.payload is not node.payload
        got.payload["fixed"].append(99)
        assert node.payload["fixed"] == [1, 2]

    def test_paramset_roundtrip_keeps_extras_and_infs(self):
        ps = ParamSet(time_limit=math.inf, extras={"custom": 3})
        out = roundtrip_message(Message(MessageTag.RACING_START, 0, 1, {"settings": ps}, seq=0))
        got = out.payload["settings"]
        assert isinstance(got, ParamSet)
        assert got.time_limit == math.inf and got.extras == {"custom": 3}

    def test_unencodable_payload_raises(self):
        with pytest.raises(PayloadEncodeError):
            encode_message(Message(MessageTag.STATUS, 1, 0, {"bad": object()}, seq=0))
        with pytest.raises(PayloadEncodeError):
            encode_message(Message(MessageTag.STATUS, 1, 0, {1: "non-string key"}, seq=0))


class TestCodecRejection:
    def frame(self, payload=None) -> bytes:
        return encode_message(Message(MessageTag.STATUS, 3, 0, payload or {"rank": 3}, seq=7))

    def test_truncated_frame(self):
        f = self.frame()
        with pytest.raises(TruncatedFrameError):
            decode_message(f[: len(f) // 2])
        with pytest.raises(TruncatedFrameError):
            decode_message(f[: HEADER_SIZE - 2])

    def test_flipped_crc_byte(self):
        f = bytearray(self.frame())
        f[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            decode_message(bytes(f))

    def test_flipped_payload_byte(self):
        f = self.frame()
        pos = HEADER_SIZE + 2
        bad = f[:pos] + bytes([f[pos] ^ 0x55]) + f[pos + 1 :]
        with pytest.raises(ChecksumError):
            decode_message(bad)

    def test_bad_magic(self):
        f = self.frame()
        with pytest.raises(BadMagicError):
            decode_message(b"XX" + f[2:])

    def test_wrong_version(self):
        f = bytearray(self.frame())
        f[2] = WIRE_VERSION + 1
        # CRC re-stamped so the version check (not the checksum) fires
        import zlib

        body = bytes(f[:-4])
        with pytest.raises(UnsupportedVersionError):
            decode_message(body + struct.pack("!I", zlib.crc32(body)))

    def test_unknown_tag_code(self):
        import zlib

        f = bytearray(self.frame())
        f[3] = 250  # no MessageTag has this code
        body = bytes(f[:-4])
        with pytest.raises(UnknownTagError):
            decode_message(body + struct.pack("!I", zlib.crc32(body)))

    def test_trailing_garbage(self):
        with pytest.raises(FrameDecodeError):
            decode_message(self.frame() + b"extra")

    def test_garbage_payload_json(self):
        import zlib

        head = struct.Struct("!2sBBiiqI").pack(b"UG", WIRE_VERSION, 10, 1, 0, 0, 4)
        body = head + b"!!!!"
        with pytest.raises(PayloadDecodeError):
            decode_message(body + struct.pack("!I", zlib.crc32(body)))

    def test_corrupt_frame_helper_is_caught(self):
        for mode in ("corrupt", "truncate"):
            with pytest.raises(FrameDecodeError):
                decode_message(corrupt_frame(self.frame(), mode))


class TestSeqStamper:
    def test_per_run_sequences(self):
        a, b = SeqStamper(), SeqStamper()
        assert [a(), a(), a()] == [0, 1, 2]
        assert b() == 0  # independent of any other stamper

    def test_bare_message_still_autostamps(self):
        m1, m2 = Message(MessageTag.STATUS, 1, 0), Message(MessageTag.STATUS, 1, 0)
        assert m1.seq is not None and m2.seq is not None and m1 < m2

    def test_engines_stamp_from_their_own_counter(self):
        from tests.test_ug_engines import build

        e1, _ = build(SimEngine, n_solvers=1)
        e2, _ = build(SimEngine, n_solvers=1)
        assert e1._msg_seq() == 0
        assert e2._msg_seq() == 0  # a fresh engine run restarts its sequence


class TestLoopbackTransport:
    def test_fifo_pair(self):
        a, b = LoopbackTransport.pair()
        a.send_frame(b"one")
        a.send_frame(b"two")
        assert b.recv_frame() == b"one"
        assert b.pending() == 1
        assert b.recv_frame() == b"two"
        assert b.recv_frame() is None

    def test_closed_peer(self):
        a, b = LoopbackTransport.pair()
        b.close()
        with pytest.raises(TransportClosedError):
            a.send_frame(b"x")
        with pytest.raises(TransportClosedError):
            b.recv_frame()

    def test_buffered_frames_survive_peer_close(self):
        a, b = LoopbackTransport.pair()
        a.send_frame(b"last words")
        a.close()
        assert b.recv_frame() == b"last words"
        with pytest.raises(TransportClosedError):
            b.recv_frame()


class TestPipeTransport:
    def test_roundtrip_and_eof(self):
        import multiprocessing

        c1, c2 = multiprocessing.Pipe(duplex=True)
        a, b = PipeTransport(c1), PipeTransport(c2)
        a.send_frame(b"hello")
        assert b.recv_frame(timeout=1.0) == b"hello"
        assert b.recv_frame(timeout=0.0) is None
        a.close()
        with pytest.raises(TransportClosedError):
            b.recv_frame(timeout=0.5)


class TestTcpTransport:
    def make_pair(self, **kwargs):
        srv = tcp_listener()
        host, port = srv.getsockname()
        client = TcpTransport.connect(host, port, **kwargs)
        sock, _ = srv.accept()
        server = TcpTransport(sock, **kwargs)
        srv.close()
        return client, server

    def test_roundtrip(self):
        a, b = self.make_pair()
        try:
            a.send_frame(b"ping" * 100)
            got = None
            for _ in range(100):
                got = b.recv_frame(timeout=0.1)
                if got is not None:
                    break
            assert got == b"ping" * 100
        finally:
            a.close()
            b.close()

    def test_connect_refused_raises_after_retries(self):
        srv = tcp_listener()
        host, port = srv.getsockname()
        srv.close()  # nobody listening any more
        with pytest.raises(TransportClosedError):
            TcpTransport.connect(host, port, connect_retries=1, connect_timeout=0.2, backoff=0.01)

    def test_backpressure_bounded_queue(self):
        a, b = self.make_pair(max_outbound=2, send_timeout=0.2)
        try:
            # tiny socket buffers so the sender thread wedges quickly
            a.sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            b.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            big = b"\x00" * (1 << 20)
            with pytest.raises(BackpressureError):
                for _ in range(64):  # nobody reads: queue must fill
                    a.send_frame(big)
            assert a.queue_peak >= 1
        finally:
            a.close()
            b.close()


class TestMessageChannel:
    def test_send_recv_counts(self):
        ta, tb = LoopbackTransport.pair()
        a = MessageChannel(ta, local_rank=0, remote_rank=1)
        b = MessageChannel(tb, local_rank=1, remote_rank=0)
        assert a.send(1, MessageTag.INCUMBENT, {"value": 5.0})
        msg = b.recv()
        assert msg is not None and msg.payload == {"value": 5.0} and msg.seq == 0
        assert a.frames_sent == 1 and a.bytes_sent > 0
        assert b.frames_received == 1 and b.decode_errors == 0

    def test_decode_error_degrades_to_loss(self):
        ta, tb = LoopbackTransport.pair()
        a = MessageChannel(ta, local_rank=0, remote_rank=1)
        b = MessageChannel(tb, local_rank=1, remote_rank=0)
        ta.send_frame(b"not a frame at all")
        a.send(1, MessageTag.STATUS, {"rank": 0})
        drained = b.drain()
        assert len(drained) == 1 and drained[0].tag is MessageTag.STATUS
        assert b.decode_errors == 1

    def test_send_to_dead_peer_is_blackhole(self):
        ta, tb = LoopbackTransport.pair()
        a = MessageChannel(ta, local_rank=0, remote_rank=1)
        tb.close()
        assert a.send(1, MessageTag.STATUS, None) is False


@pytest.fixture(scope="module")
def hc4():
    return hypercube_instance(4, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc5():
    # big enough that a mid-run kill actually lands while ranks are busy
    return hypercube_instance(5, perturbed=False, seed=1)


@pytest.fixture(scope="module")
def hc5_sim(hc5):
    return ug(hc5.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
              config=UGConfig(**STP_CFG)).run()


class TestLoopbackNetEngine:
    def test_matches_sim_objective(self, hc4):
        cfg = UGConfig(trace_enabled=True, **STP_CFG)
        sim = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
                 config=UGConfig(**STP_CFG)).run()
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=cfg).run()
        assert res.solved and res.objective == sim.objective
        assert res.stats.net_frames_sent > 0
        assert res.stats.net_bytes_sent > 0
        assert res.stats.net_decode_errors == 0
        check_ug_steiner_result(hc4, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()

    def test_racing_ramp_up(self, hc4):
        cfg = UGConfig(ramp_up="racing", trace_enabled=True, **STP_CFG)
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=cfg).run()
        assert res.solved
        check_ug_steiner_result(hc4, res).raise_if_failed()

    def test_rank_kill_detected_and_recovered(self, hc5, hc5_sim):
        """The ISSUE's acceptance scenario, fully deterministic: a rank is
        killed mid-run, the heartbeat path declares it dead, its node is
        reclaimed, and the final claim stays honest."""
        plan = FaultPlan(crashes=(SolverCrash(rank=2, at_time=0.05),))
        cfg = UGConfig(heartbeat_timeout=0.5, trace_enabled=True,
                       fault_plan=plan, **STP_CFG)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=cfg).run()
        assert res.stats.solver_failures == 1
        assert res.stats.surviving_solvers == 2
        assert res.objective == hc5_sim.objective
        # honest claim: either the node was reclaimed and re-explored
        # (still optimal) or completeness was surrendered (not solved)
        if res.solved:
            assert res.stats.nodes_reclaimed >= 1
        check_ug_steiner_result(hc5, res).raise_if_failed()
        audit_ug_run(res).raise_if_failed()
        kinds = {e.kind for e in res.trace.events()}
        assert "crash" in kinds and "solver_dead" in kinds

    def test_frame_corruption_survived(self, hc5, hc5_sim):
        """Corrupted frames degrade to message loss, which the heartbeat
        path recovers from — the run still ends with a correct tree."""
        plan = FaultPlan(frame_faults=(FrameFault(src=1, action="corrupt", count=2),))
        cfg = UGConfig(heartbeat_timeout=0.5, trace_enabled=True,
                       fault_plan=plan, **STP_CFG)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=cfg).run()
        assert res.stats.net_decode_errors >= 1
        assert res.incumbent is not None
        assert res.objective == hc5_sim.objective
        check_ug_steiner_result(hc5, res).raise_if_failed()
        kinds = {e.kind for e in res.trace.events()}
        assert "frame_fault" in kinds and "net_decode_error" in kinds

    def test_frame_drop_survived(self, hc5, hc5_sim):
        plan = FaultPlan(frame_faults=(FrameFault(src=2, action="drop", count=1),
                                       FrameFault(src=1, action="truncate", count=1)))
        cfg = UGConfig(heartbeat_timeout=0.5, trace_enabled=True,
                       fault_plan=plan, **STP_CFG)
        res = ug(hc5.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
                 config=cfg).run()
        assert res.incumbent is not None
        assert res.objective == hc5_sim.objective
        assert res.stats.faults_injected >= 2

    def test_deterministic_replay(self, hc4):
        cfg = dict(trace_enabled=True, **STP_CFG)
        runs = [
            ug(hc4.copy(), SteinerUserPlugins(), n_solvers=3, comm="loopback",
               config=UGConfig(**cfg)).run()
            for _ in range(2)
        ]
        assert runs[0].objective == runs[1].objective
        assert runs[0].stats.net_frames_sent == runs[1].stats.net_frames_sent
        assert runs[0].stats.net_bytes_sent == runs[1].stats.net_bytes_sent
        t0 = [e.to_json() for e in runs[0].trace.events()]
        t1 = [e.to_json() for e in runs[1].trace.events()]
        assert t0 == t1


class TestThreadEnginePayloadIsolation:
    def _engine(self):
        from tests.test_ug_engines import build

        engine, _ = build(ThreadEngine, n_solvers=1)
        return engine

    def test_delivered_payload_does_not_alias_sender(self):
        """Regression: ThreadEngine used to put the sender's Message object
        straight onto the receiver's queue, so mutating a delivered payload
        mutated the sender's dict.  Every delivery now crosses the codec."""
        engine = self._engine()
        send = engine._send(1)
        original = {"rank": 1, "inner": {"n_open": 3}, "items": [1, 2]}
        send(0, MessageTag.STATUS, original)
        delivered = engine._lc_queue.get_nowait()
        assert delivered.payload == original
        assert delivered.payload is not original
        delivered.payload["inner"]["n_open"] = 999
        delivered.payload["items"].append(99)
        assert original == {"rank": 1, "inner": {"n_open": 3}, "items": [1, 2]}

    def test_wire_counters_tick(self):
        engine = self._engine()
        send = engine._send(1)
        send(0, MessageTag.STATUS, {"rank": 1})
        assert engine.lc.stats.net_frames_sent == 1
        assert engine.lc.stats.net_frames_received == 1
        assert engine.lc.stats.net_bytes_sent > 0

    def test_full_thread_run_over_codec(self, hc4):
        res = ug(hc4.copy(), SteinerUserPlugins(), n_solvers=2, comm="threads",
                 config=UGConfig(**STP_CFG), wall_clock_limit=120).run()
        assert res.solved
        assert res.stats.net_frames_sent > 0
        assert res.stats.net_frames_sent == res.stats.net_frames_received
        check_ug_steiner_result(hc4, res).raise_if_failed()
