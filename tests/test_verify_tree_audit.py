"""Tree auditors: replaying B&B runs from their traces, rejecting
tampered streams, and the checkpoint crash/restore round trip."""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.apps.stp_plugins import SteinerUserPlugins
from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.result import SolveStatus
from repro.obs.trace import TraceEvent, Tracer
from repro.steiner.instances import hypercube_instance
from repro.steiner.solver import SteinerSolver
from repro.ug import ug
from repro.ug.checkpoint import backup_path, load_checkpoint
from repro.ug.config import UGConfig
from repro.verify import audit_cip_trace, audit_ug_run


def branching_model(n: int = 8) -> Model:
    m = Model("parity")
    for i in range(n):
        m.add_variable(f"x{i}", VarType.BINARY, obj=-1.0)
    m.add_constraint({i: 1.0 for i in range(n)}, rhs=n / 2 + 0.5)
    return m


def traced_mip_solve(params: ParamSet | None = None):
    solver = make_mip_solver(branching_model(), params)
    solver.tracer = Tracer()
    res = solver.solve()
    return solver.tracer, res


def node_event(nid, parent, depth, b_in, b_out, outcome, *, t=0.0, cutoff=math.inf,
               processed=True, children=0, value=None, rank=0):
    data = dict(node=nid, parent=parent, depth=depth, bound_in=b_in, bound=b_out,
                outcome=outcome, children=children, cutoff=cutoff, processed=processed)
    if value is not None:
        data["value"] = value
    return TraceEvent(t, "bb_node", rank, data)


class TestCIPAudit:
    def test_genuine_traced_solve_accepted(self):
        tracer, res = traced_mip_solve()
        assert res.status is SolveStatus.OPTIMAL
        report = audit_cip_trace(tracer, res)
        assert not report.skipped
        assert report.ok, report.summary()

    def test_branching_heavy_solve_accepted(self):
        tracer, res = traced_mip_solve(ParamSet(heuristics=False, presolve=False))
        report = audit_cip_trace(tracer, res)
        assert report.ok, report.summary()
        audited = next(c for c in report.checks if c.name == "nodes_audited")
        assert audited.data["total"] > 1  # the run actually branched

    def test_untraced_solve_is_skipped(self):
        res = make_mip_solver(branching_model()).solve()
        report = audit_cip_trace([], res)
        assert report.skipped and report.ok

    def test_overflowed_ring_buffer_voids_audit(self):
        solver = make_mip_solver(branching_model(), ParamSet(heuristics=False, presolve=False))
        solver.tracer = Tracer(capacity=1)
        res = solver.solve()
        assert solver.tracer.dropped > 0
        report = audit_cip_trace(solver.tracer, res)
        assert any(c.name == "trace_complete" for c in report.failures)

    def test_dropped_override_voids_audit(self):
        tracer, res = traced_mip_solve()
        report = audit_cip_trace(tracer.events(), res, dropped=3)
        assert not report.ok


class TestCIPAuditRejectsTampering:
    def test_decreasing_bound_rejected(self):
        events = [node_event(0, -1, 0, 5.0, 3.0, "branched", children=2)]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("bound_monotone") for c in report.failures)

    def test_child_below_parent_bound_rejected(self):
        events = [
            node_event(0, -1, 0, 0.0, 10.0, "branched", children=2),
            node_event(1, 0, 1, 4.0, 12.0, "branched", children=2),
        ]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("parent_bound") for c in report.failures)

    def test_unjustified_prune_rejected(self):
        events = [node_event(0, -1, 0, 2.0, 3.0, "pruned_bound", cutoff=7.0)]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("prune_justified") for c in report.failures)

    def test_cutoff_above_incumbent_rejected(self):
        events = [
            TraceEvent(0.0, "bb_incumbent", 0, {"value": 5.0, "source": "solution"}),
            node_event(0, -1, 0, 9.0, 9.0, "pruned_bound", cutoff=8.0),
        ]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("cutoff_vs_incumbent") for c in report.failures)

    def test_worsening_incumbent_rejected(self):
        events = [
            TraceEvent(0.0, "bb_incumbent", 0, {"value": 5.0, "source": "solution"}),
            TraceEvent(1.0, "bb_incumbent", 0, {"value": 6.0, "source": "solution"}),
        ]
        report = audit_cip_trace(events)
        assert any(c.name == "incumbent_improving" for c in report.failures)

    def test_duplicate_node_rejected(self):
        events = [
            node_event(0, -1, 0, 0.0, 1.0, "branched", children=2),
            node_event(1, 0, 1, 1.0, 2.0, "infeasible"),
            node_event(1, 0, 1, 1.0, 2.0, "infeasible"),
        ]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("node_unique") for c in report.failures)

    def test_unknown_outcome_rejected(self):
        events = [node_event(0, -1, 0, 0.0, 1.0, "vanished")]
        report = audit_cip_trace(events)
        assert any(c.name.startswith("outcome_known") for c in report.failures)

    def test_fresh_root_resets_node_ids(self):
        # UG ParaSolvers build one CIPSolver per subproblem: a second root
        # restarts the id space, which must NOT count as a duplicate
        events = [
            node_event(0, -1, 0, 0.0, 1.0, "infeasible"),
            node_event(0, -1, 0, 2.0, 3.0, "infeasible"),
        ]
        report = audit_cip_trace(events)
        assert report.ok, report.summary()

    def test_optimal_claim_with_unresolved_node_rejected(self):
        events = [node_event(0, -1, 0, 0.0, 1.0, "unresolved")]
        result = SimpleNamespace(status=SimpleNamespace(value="optimal"),
                                 best_solution=None, objective=math.inf,
                                 dual_bound=1.0, stats=None)
        report = audit_cip_trace(events, result)
        assert any(c.name == "complete_claim_vs_unresolved" for c in report.failures)

    def test_mismatched_final_incumbent_rejected(self):
        tracer, res = traced_mip_solve()
        events = tracer.events()
        fake = SimpleNamespace(status=res.status, best_solution=res.best_solution,
                               objective=res.objective - 1.0, dual_bound=res.dual_bound,
                               stats=None)
        report = audit_cip_trace(events, fake)
        assert any(c.name == "final_incumbent_matches" for c in report.failures)

    def test_wrong_node_accounting_rejected(self):
        tracer, res = traced_mip_solve()
        fake_stats = SimpleNamespace(nodes_processed=res.stats.nodes_processed + 7,
                                     extra=res.stats.extra)
        fake = SimpleNamespace(status=res.status, best_solution=res.best_solution,
                               objective=res.objective, dual_bound=res.dual_bound,
                               stats=fake_stats)
        report = audit_cip_trace(tracer, fake)
        assert any(c.name == "nodes_processed_accounting" for c in report.failures)


class TestUGAudit:
    @pytest.fixture(scope="class")
    def run(self):
        # hc5 resists the layered presolve, so the ParaSolvers genuinely
        # branch and their kernels emit bb_node streams
        g = hypercube_instance(5, perturbed=False, seed=1)
        solver = ug(g.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim",
                    config=UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6,
                                    trace_enabled=True),
                    seed=7, wall_clock_limit=120.0)
        return solver.run()

    def test_genuine_run_accepted(self, run):
        assert run.solved
        report = audit_ug_run(run)
        assert report.ok, report.summary()
        names = {c.name for c in report.checks}
        # the strict accounting tier must have run on this fault-free run
        assert {"transferred_nodes_accounting", "nodes_generated_accounting"} <= names

    def test_per_rank_cip_audits_accepted(self, run):
        events = run.trace.events()
        ranks = sorted({e.rank for e in events if e.kind == "bb_node"})
        assert ranks  # the ParaSolvers traced their kernels
        for rank in ranks:
            report = audit_cip_trace(events, rank=rank)
            assert report.ok, report.summary()

    def test_untraced_run_is_reported_not_audited(self):
        g = hypercube_instance(3, perturbed=True, seed=1)
        res = ug(g.copy(), SteinerUserPlugins(), n_solvers=2, comm="sim",
                 config=UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6),
                 seed=1, wall_clock_limit=90.0).run()
        report = audit_ug_run(res)
        # result-level invariants still checked, accounting skipped
        assert report.ok
        assert not any(c.name == "transferred_nodes_accounting" for c in report.checks)

    def test_tampered_statistics_rejected(self, run):
        import dataclasses

        bad_stats = dataclasses.replace(run.stats, nodes_generated=run.stats.nodes_generated + 3)
        bad = dataclasses.replace(run, stats=bad_stats)
        report = audit_ug_run(bad)
        assert any(c.name == "nodes_generated_accounting" for c in report.failures)

    def test_tampered_incumbent_rejected(self, run):
        import dataclasses

        bad = dataclasses.replace(
            run, incumbent=dataclasses.replace(run.incumbent, value=run.incumbent.value + 2.0))
        report = audit_ug_run(bad)
        assert not report.ok


@pytest.mark.slow
class TestCheckpointRoundTrip:
    def test_crash_corrupt_restore_identical(self, tmp_path):
        g = hypercube_instance(5, perturbed=False, seed=1)
        path = tmp_path / "cp.json"
        cfg = UGConfig(time_limit=0.4, checkpoint_path=str(path),
                       checkpoint_interval=0.05, objective_epsilon=1 - 1e-6)
        r1 = ug(g.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim", config=cfg,
                seed=0, wall_clock_limit=90).run()
        assert not r1.solved  # interrupted mid-campaign, checkpoint written
        assert path.exists()

        # simulate a crash mid-write: truncate the primary checkpoint
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        cp = load_checkpoint(path)
        assert cp.recovered and cp.source == str(backup_path(path, 1))

        cfg2 = UGConfig(time_limit=1e9, objective_epsilon=1 - 1e-6, trace_enabled=True)
        r2 = ug(g.copy(), SteinerUserPlugins(), n_solvers=3, comm="sim", config=cfg2,
                seed=0, wall_clock_limit=120).run(restart_from=str(path))
        assert r2.solved

        # the restored campaign's answer matches the sequential reference
        seq = SteinerSolver(g.copy(), seed=0).solve()
        assert r2.objective == pytest.approx(seq.cost)

        # and the restarted run itself withstands the tree audit
        report = audit_ug_run(r2)
        assert report.ok, report.summary()


class TestStandaloneCLI:
    """``python -m repro.verify`` over a dumped trace + bench artifact."""

    def test_trace_roundtrip_and_audit(self, tmp_path):
        from repro.obs.trace import load_trace_jsonl
        from repro.verify.__main__ import audit_trace_file, main

        tracer, res = traced_mip_solve()
        path = tracer.dump(tmp_path / "run.jsonl")
        events = load_trace_jsonl(path)
        assert [e.kind for e in events] == [e.kind for e in tracer.events()]
        reports = audit_trace_file(path)
        assert reports and all(r.ok for r in reports)
        assert main(["--trace", str(path)]) == 0

    def test_malformed_trace_line_raises(self, tmp_path):
        from repro.obs.trace import load_trace_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":0.0,"kind":"step","rank":1,"data":{}}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace_jsonl(path)

    def test_tampered_trace_fails_cli(self, tmp_path):
        from repro.verify.__main__ import main

        tracer, res = traced_mip_solve()
        text = tracer.to_jsonl().replace('"outcome":"branched"', '"outcome":"vanished"')
        path = tmp_path / "tampered.jsonl"
        path.write_text(text)
        assert main(["--trace", str(path)]) == 1

    def test_bench_scan_accepts_and_rejects(self, tmp_path):
        import json

        from repro.verify.__main__ import check_bench_file, main

        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps({"rows": [{"primal": 10.0, "dual": 9.5}]}))
        assert check_bench_file(good).ok
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"rows": [{"primal": 10.0, "dual": 11.0}]}))
        report = check_bench_file(bad)
        assert not report.ok
        assert main(["--bench", str(bad)]) == 1
