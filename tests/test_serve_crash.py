"""Crash safety: kill -9 recovery and the randomized-kill-point property.

Two layers:

* ``test_kill9_smoke`` — the CI smoke: a real daemon subprocess is
  SIGKILLed mid-solve; a restarted daemon on the same journal requeues
  the job and completes it.  The journal lands in ``$SERVE_ARTIFACT_DIR``
  when set, so CI uploads it on failure.
* ``test_randomized_kill_points_exactly_once`` — the acceptance property:
  across seeded random kill points, every accepted job reaches a terminal
  state *exactly once* (journal replay is idempotent, no duplicated
  terminal records), and every served answer re-verifies offline against
  an instance rebuilt from the journal's own request record — no served
  answer without a passing certificate.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    JobRequest,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    daemon_in_thread,
    reduce_journal,
    replay_journal,
)
from repro.serve import runner
from repro.serve.jobs import SERVED_STATES, JobState

pytestmark = pytest.mark.fast

REPO = Path(__file__).resolve().parent.parent

# ~2s of solving under the SimEngine: long enough that SIGKILL lands
# mid-solve, bounded by the node budget so recovery stays fast
SLOW_JOB = {
    "kind": "stp",
    "payload": {"generator": "hypercube", "params": {"dim": 6, "perturbed": False}},
    "node_limit": 20,
}


def _artifact_dir(tmp_path: Path) -> Path:
    out = Path(os.environ.get("SERVE_ARTIFACT_DIR", tmp_path))
    out.mkdir(parents=True, exist_ok=True)
    return out


def _spawn_daemon(journal: Path, port_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "daemon",
            "--journal", str(journal),
            "--port-file", str(port_file),
            "--slots", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died on startup: {proc.stderr.read().decode(errors='replace')}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise TimeoutError("daemon did not write its port file")
        time.sleep(0.02)
    return proc


def test_kill9_smoke(tmp_path):
    """SIGKILL a real daemon mid-solve; the restart completes the job."""
    art = _artifact_dir(tmp_path)
    journal = art / "kill9_journal.jsonl"
    port_file = tmp_path / "port1"
    proc = _spawn_daemon(journal, port_file)
    try:
        port = int(port_file.read_text().split()[0])
        with ServeClient(port=port) as client:
            view = client.submit(SLOW_JOB)
            job_id = view["job_id"]
            deadline = time.monotonic() + 20
            while client.status(job_id)["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)  # no goodbye, no journal flush
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    # the journal shows the job accepted and started but not terminal
    jobs = reduce_journal(replay_journal(journal).records)
    assert jobs[job_id].state == JobState.RUNNING and not jobs[job_id].terminal

    port_file2 = tmp_path / "port2"
    proc2 = _spawn_daemon(journal, port_file2)
    try:
        port2 = int(port_file2.read_text().split()[0])
        with ServeClient(port=port2) as client:
            stats = client.stats()
            assert stats["serve"]["jobs_requeued"] == 1
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "degraded"
            assert final["outcome"]["certified"] is True
            assert final["outcome"]["attempts"] == 2  # one per daemon life
            client.shutdown()
        proc2.wait(timeout=15)
    finally:
        if proc2.poll() is None:
            proc2.kill()

    # post-mortem: the journal now holds exactly one terminal record
    jobs = reduce_journal(replay_journal(journal).records)
    assert jobs[job_id].terminal and jobs[job_id].duplicate_terminals == 0


class _AbandonableDaemon:
    """An in-process daemon whose event loop can be abandoned mid-flight —
    the closest in-process analogue of kill -9 (no graceful stop(), no
    final journal writes from in-flight coroutines)."""

    def __init__(self, config: ServeConfig) -> None:
        self.daemon = ServeDaemon(config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.daemon.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30)

    def crash(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


def test_randomized_kill_points_exactly_once(tmp_path):
    rng = random.Random(20260808)
    journal = tmp_path / "journal.jsonl"
    requests = [
        JobRequest(
            kind="stp",
            payload={"generator": "grid",
                     "params": {"rows": 3, "cols": 3, "n_terminals": 4, "seed": s}},
        ).to_json()
        for s in range(4)
    ]

    def cfg() -> ServeConfig:
        return ServeConfig(journal_path=str(journal), slots=1)

    # life 0: accept every job, then die at a random point
    life = _AbandonableDaemon(cfg())
    with ServeClient(port=life.daemon.port) as client:
        job_ids = [client.submit(r)["job_id"] for r in requests]
    time.sleep(rng.uniform(0.0, 0.5))
    life.crash()

    # chaotic middle lives: restart, run a random slice, die again
    for _ in range(4):
        jobs = reduce_journal(replay_journal(journal).records)
        if all(jobs[j].terminal for j in job_ids):
            break
        life = _AbandonableDaemon(cfg())
        time.sleep(rng.uniform(0.0, 0.8))
        life.crash()

    # final life: graceful — drain whatever is still unfinished
    with daemon_in_thread(cfg()) as daemon:
        with ServeClient(port=daemon.port) as client:
            for job_id in job_ids:
                client.wait(job_id, timeout=120)

    replay = replay_journal(journal)
    assert replay.corrupt is None  # crashes may tear the tail, never the middle
    jobs = reduce_journal(replay.records)
    for job_id in job_ids:
        job = jobs[job_id]
        # exactly-once: terminal, and no duplicated terminal record even
        # though the job may have been started by several daemon lives
        assert job.terminal, f"{job_id} never reached a terminal state"
        assert job.duplicate_terminals == 0
        outcome = job.outcome()
        assert outcome is not None
        if outcome.state in SERVED_STATES:
            # offline re-verification from the journal alone: rebuild the
            # instance from the stored request and re-run the certificate
            request = JobRequest.from_json(job.request_json)
            instance = runner.build_instance(request)
            report = runner.verify_certificate(
                request.kind,
                instance,
                outcome.solution,
                outcome.objective,
                outcome.bound,
                solved=outcome.solved,
                gap_slack=request.objective_epsilon or 0.0,
            )
            assert report.ok, f"served answer for {job_id} fails offline re-verification: " \
                              f"{[str(c) for c in report.failures]}"
        else:
            assert outcome.state in (JobState.FAILED, JobState.CANCELLED)


def test_journal_survives_restart_without_crash(tmp_path):
    """A clean stop/start cycle keeps terminal outcomes without re-running."""
    journal = tmp_path / "journal.jsonl"

    def cfg() -> ServeConfig:
        return ServeConfig(journal_path=str(journal), slots=1)

    with daemon_in_thread(cfg()) as daemon:
        with ServeClient(port=daemon.port) as client:
            view = client.submit(
                {"kind": "stp",
                 "payload": {"generator": "grid",
                             "params": {"rows": 2, "cols": 3, "n_terminals": 3, "seed": 5}}}
            )
            final = client.wait(view["job_id"], timeout=60)
            objective = final["outcome"]["objective"]

    with daemon_in_thread(cfg()) as daemon2:
        with ServeClient(port=daemon2.port) as client:
            again = client.status(view["job_id"])
            assert again["state"] == "succeeded"
            assert again["outcome"]["objective"] == objective
            assert again["outcome"]["attempts"] == 1  # completed work is never re-run
            assert daemon2.stats.jobs_requeued == 0
