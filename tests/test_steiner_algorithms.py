"""Tests for Steiner graph algorithms: paths, MST, max-flow, dual ascent."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.steiner.dual_ascent import dual_ascent
from repro.steiner.graph import SteinerGraph
from repro.steiner.instances import random_instance
from repro.steiner.maxflow import MaxFlow
from repro.steiner.mst import mst_on_subgraph, prune_steiner_tree
from repro.steiner.shortest_paths import (
    bottleneck_steiner_distance,
    dijkstra,
    extract_path,
    radius_lower_bound,
    voronoi,
)
from repro.steiner.transformations import arborescence_from_arcs, spg_to_sap
from tests.conftest import brute_force_steiner


def to_networkx(g: SteinerGraph) -> nx.Graph:
    G = nx.Graph()
    G.add_nodes_from(int(v) for v in g.alive_vertices())
    for eid in g.alive_edges():
        e = g.edges[eid]
        if G.has_edge(e.u, e.v):
            G[e.u][e.v]["weight"] = min(G[e.u][e.v]["weight"], e.cost)
        else:
            G.add_edge(e.u, e.v, weight=e.cost)
    return G


class TestDijkstra:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_matches_networkx(self, seed):
        g = random_instance(10, 20, 3, seed=seed)
        G = to_networkx(g)
        dist, pred = dijkstra(g, 0)
        nx_dist = nx.single_source_dijkstra_path_length(G, 0)
        for v in range(g.n):
            expected = nx_dist.get(v, math.inf)
            assert dist[v] == pytest.approx(expected)

    def test_extract_path_cost_matches(self):
        g = random_instance(10, 20, 3, seed=5)
        dist, pred = dijkstra(g, 0)
        for target in range(1, 10):
            if math.isinf(dist[target]):
                continue
            path = extract_path(g, pred, target)
            assert sum(g.edge_cost(e) for e in path) == pytest.approx(dist[target])

    def test_early_stop_targets(self):
        g = random_instance(12, 25, 3, seed=2)
        dist_full, _ = dijkstra(g, 0)
        dist_stop, _ = dijkstra(g, 0, targets={3})
        assert dist_stop[3] == pytest.approx(dist_full[3])


class TestVoronoi:
    def test_bases_are_nearest_terminals(self):
        g = random_instance(12, 25, 4, seed=7)
        vor = voronoi(g)
        terms = [int(t) for t in g.terminals]
        for v in range(g.n):
            if vor.base[v] < 0:
                continue
            dists = {t: dijkstra(g, t)[0][v] for t in terms}
            assert vor.dist[v] == pytest.approx(min(dists.values()))

    def test_radius_bound_below_optimum(self):
        for seed in range(8):
            g = random_instance(9, 16, 4, seed=seed)
            opt = brute_force_steiner(g)
            assert radius_lower_bound(g) <= opt + 1e-9


class TestBottleneckSD:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_upper_bounds_have_witness_paths(self, seed):
        """Every reported SD value must be >= the plain bottleneck of some
        path, which is >= the true SD; and never smaller than the direct
        shortest-path bottleneck lower bound we can verify on tiny graphs."""
        g = random_instance(8, 14, 3, seed=seed)
        for u in range(g.n):
            sd = bottleneck_steiner_distance(g, int(u), limit=1e9)
            dist, _ = dijkstra(g, int(u))
            for v, val in sd.items():
                if v == u:
                    continue
                # SD <= plain shortest path distance, and our value is an
                # upper bound on SD but must still be <= that distance too
                assert val <= dist[v] + 1e-9

    def test_avoid_vertex(self):
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        sd = bottleneck_steiner_distance(g, 0, limit=10.0, avoid=1)
        assert 2 not in sd


class TestMST:
    def test_disconnected_returns_none(self):
        g = SteinerGraph.create(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        assert mst_on_subgraph(g, {0, 1, 2, 3}) is None

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_matches_networkx(self, seed):
        g = random_instance(10, 22, 3, seed=seed)
        G = to_networkx(g)
        res = mst_on_subgraph(g, set(range(10)))
        assert res is not None
        nx_cost = sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(G).edges(data=True))
        assert res[1] == pytest.approx(nx_cost)

    def test_prune_removes_nonterminal_leaves(self):
        g = SteinerGraph.create(4)
        e0 = g.add_edge(0, 1, 1.0)
        e1 = g.add_edge(1, 2, 1.0)
        e2 = g.add_edge(2, 3, 1.0)
        g.set_terminal(0)
        g.set_terminal(2)
        pruned, cost = prune_steiner_tree(g, [e0, e1, e2])
        assert sorted(pruned) == [e0, e1]
        assert cost == pytest.approx(2.0)


class TestMaxFlow:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 6
        arcs = [(u, v) for u in range(n) for v in range(n) if u != v and rng.random() < 0.5]
        if not arcs:
            arcs = [(0, 1)]
        caps = rng.uniform(0.1, 2.0, len(arcs))
        mf = MaxFlow(n, np.array([a[0] for a in arcs]), np.array([a[1] for a in arcs]))
        mf.set_capacities(caps)
        flow = mf.max_flow(0, n - 1)
        D = nx.DiGraph()
        for (u, v), c in zip(arcs, caps):
            if D.has_edge(u, v):
                D[u][v]["capacity"] += c
            else:
                D.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(D, 0, n - 1) if D.has_node(0) and D.has_node(n - 1) and nx.has_path(D, 0, n-1) else 0.0
        assert flow == pytest.approx(expected, abs=1e-6)

    def test_min_cut_separates(self):
        arcs = [(0, 1), (1, 2)]
        mf = MaxFlow(3, np.array([0, 1]), np.array([1, 2]))
        mf.set_capacities(np.array([0.5, 1.0]))
        flow = mf.max_flow(0, 2)
        assert flow == pytest.approx(0.5)
        reach = mf.min_cut_source_side(0)
        assert reach[0] and not reach[2]

    def test_flow_limit_early_exit(self):
        mf = MaxFlow(2, np.array([0]), np.array([1]))
        mf.set_capacities(np.array([5.0]))
        assert mf.max_flow(0, 1, limit=1.0) == pytest.approx(1.0)


class TestDualAscent:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2000))
    def test_lower_bound_below_optimum(self, seed):
        g = random_instance(8, 14, 3, seed=seed)
        opt = brute_force_steiner(g)
        da = dual_ascent(spg_to_sap(g))
        assert da.lower_bound <= opt + 1e-6

    def test_reduced_costs_nonnegative(self):
        g = random_instance(10, 20, 4, seed=3)
        da = dual_ascent(spg_to_sap(g))
        assert np.all(da.reduced_costs >= -1e-9)

    def test_root_reaches_all_terminals_via_saturated(self):
        g = random_instance(10, 20, 4, seed=4)
        sap = spg_to_sap(g)
        da = dual_ascent(sap)
        # forward rc-distance to every terminal must be ~0 at termination
        for t in sap.sinks():
            assert da.root_dist[t] <= 1e-6

    def test_infeasible_instance_inf_bound(self):
        g = SteinerGraph.create(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        g.set_terminal(0)
        g.set_terminal(2)
        da = dual_ascent(spg_to_sap(g))
        assert math.isinf(da.lower_bound)

    def test_arc_fixing_bound_valid(self):
        # bound for any arc in an optimal tree must not exceed the optimum
        for seed in range(6):
            g = random_instance(8, 14, 3, seed=seed)
            opt = brute_force_steiner(g)
            sap = spg_to_sap(g)
            da = dual_ascent(sap)
            # at least the overall bound must satisfy lb <= opt (spot check
            # the formula's components are consistent)
            for a in range(0, sap.num_arcs, 7):
                bound = da.arc_fixing_bound(a, int(sap.arc_tail[a]), int(sap.arc_head[a]))
                assert bound >= da.lower_bound - 1e-9


class TestTransformations:
    def test_arc_pairing(self):
        g = random_instance(8, 14, 3, seed=0)
        sap = spg_to_sap(g)
        for a in range(sap.num_arcs):
            partner = sap.reverse_arc(a)
            assert partner is not None
            assert sap.arc_tail[a] == sap.arc_head[partner]
            assert sap.arc_cost[a] == sap.arc_cost[partner]

    def test_root_is_terminal(self):
        g = random_instance(8, 14, 3, seed=1)
        sap = spg_to_sap(g)
        assert g.is_terminal(sap.root)
        assert sap.root not in sap.sinks()

    def test_arborescence_extraction_trims_unreachable(self):
        g = SteinerGraph.create(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.set_terminal(0)
        g.set_terminal(2)
        sap = spg_to_sap(g)
        x = np.ones(sap.num_arcs)  # both directions selected
        arcs = arborescence_from_arcs(sap, x)
        assert len(arcs) == 2  # only the root-oriented arcs survive
