"""Journal hardening: CRC records, torn-tail tolerance, idempotent replay."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.serve.jobs import JobOutcome, JobState
from repro.serve.journal import (
    EV_CANCELLED,
    EV_COMPLETED,
    EV_STARTED,
    EV_SUBMITTED,
    JobJournal,
    reduce_journal,
    replay_journal,
)

pytestmark = pytest.mark.fast

REQ = {"kind": "stp", "payload": {"generator": "grid", "params": {"rows": 2, "cols": 2}}}


def outcome_json(state=JobState.SUCCEEDED):
    return JobOutcome(state=state, objective=3.0, bound=3.0, gap=0.0, solved=True,
                      certified=True, solution=[0, 1]).to_json()


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(EV_SUBMITTED, "a", {"request": REQ})
        journal.append(EV_STARTED, "a", {"attempt": 1})
        journal.append(EV_COMPLETED, "a", {"outcome": outcome_json()})
    replay = replay_journal(path)
    assert replay.torn_bytes == 0 and replay.corrupt is None
    assert [r.event for r in replay.records] == [EV_SUBMITTED, EV_STARTED, EV_COMPLETED]
    assert [r.seq for r in replay.records] == [0, 1, 2]
    jobs = reduce_journal(replay.records)
    assert jobs["a"].terminal and jobs["a"].state == JobState.SUCCEEDED
    assert jobs["a"].attempts == 1
    assert jobs["a"].outcome().objective == 3.0


def test_missing_file_replays_empty(tmp_path):
    replay = replay_journal(tmp_path / "never-written.jsonl")
    assert replay.records == [] and replay.torn_bytes == 0


def test_seq_resumes_across_daemon_lives(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as j1:
        j1.append(EV_SUBMITTED, "a", {"request": REQ})
        j1.append(EV_STARTED, "a")
    with JobJournal(path) as j2:
        seq = j2.append(EV_COMPLETED, "a", {"outcome": outcome_json()})
    assert seq == 2
    assert [r.seq for r in replay_journal(path).records] == [0, 1, 2]


def test_torn_tail_is_dropped_and_counted(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(EV_SUBMITTED, "a", {"request": REQ})
        journal.append(EV_STARTED, "a")
    intact = path.read_bytes()
    # simulate kill -9 mid-write: half a record at the end
    path.write_bytes(intact + b'{"seq": 2, "event": "comp')
    replay = replay_journal(path)
    assert len(replay.records) == 2
    assert replay.torn_bytes > 0
    assert replay.corrupt is None  # damage at the tail is the expected crash signature


def test_corruption_before_intact_records_is_reported(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(EV_SUBMITTED, "a", {"request": REQ})
        journal.append(EV_STARTED, "a")
        journal.append(EV_COMPLETED, "a", {"outcome": outcome_json()})
    lines = path.read_bytes().split(b"\n")
    lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # bit-rot mid-file
    path.write_bytes(b"\n".join(lines))
    replay = replay_journal(path)
    assert len(replay.records) == 1  # stops at the damaged record
    assert replay.corrupt is not None and "corrupt" in replay.corrupt


def test_crc_guards_field_tampering(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(EV_SUBMITTED, "a", {"request": REQ})
    doc = json.loads(path.read_text())
    doc["job"] = "b"  # tamper without recomputing the CRC
    path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n")
    assert replay_journal(path).records == []


def test_crc_is_over_canonical_doc(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(EV_STARTED, "a")
    doc = json.loads(path.read_text())
    crc = doc.pop("crc32")
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    assert crc == zlib.crc32(blob)


def test_unknown_event_rejected_on_append(tmp_path):
    with JobJournal(tmp_path / "j.jsonl") as journal:
        with pytest.raises(ValueError, match="unknown journal event"):
            journal.append("exploded", "a")


def test_reduce_is_idempotent_and_counts_duplicates():
    from repro.serve.journal import JournalRecord

    records = [
        JournalRecord(0, EV_SUBMITTED, "a", {"request": REQ}),
        JournalRecord(1, EV_STARTED, "a"),
        JournalRecord(2, EV_COMPLETED, "a", {"outcome": outcome_json()}),
        # a duplicated terminal write (must be ignored, counted)
        JournalRecord(3, EV_COMPLETED, "a", {"outcome": outcome_json(JobState.FAILED)}),
        JournalRecord(4, EV_STARTED, "a"),
    ]
    jobs = reduce_journal(records)
    job = jobs["a"]
    assert job.state == JobState.SUCCEEDED  # the first terminal record wins
    assert job.duplicate_terminals == 1
    assert job.attempts == 1  # the post-terminal started is ignored too
    # replaying the fold twice yields the same end state (idempotency)
    again = reduce_journal(records)
    assert again["a"].state == job.state and again["a"].attempts == job.attempts


def test_reduce_cancelled_and_running_states():
    from repro.serve.journal import JournalRecord

    records = [
        JournalRecord(0, EV_SUBMITTED, "q", {"request": REQ}),
        JournalRecord(1, EV_SUBMITTED, "r", {"request": REQ}),
        JournalRecord(2, EV_STARTED, "r"),
        JournalRecord(3, EV_SUBMITTED, "c", {"request": REQ}),
        JournalRecord(4, EV_CANCELLED, "c", {"outcome": outcome_json(JobState.CANCELLED)}),
    ]
    jobs = reduce_journal(records)
    assert jobs["q"].state == JobState.QUEUED and not jobs["q"].terminal
    assert jobs["r"].state == JobState.RUNNING and not jobs["r"].terminal
    assert jobs["c"].state == JobState.CANCELLED and jobs["c"].terminal
