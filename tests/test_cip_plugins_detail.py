"""Detailed unit tests for generic CIP plugins and SDP propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cip.heuristics import DivingHeuristic, RoundingHeuristic
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.plugins import PropagationStatus
from repro.cip.propagation import IntegralityPropagator, LinearActivityPropagator
from repro.cip.solver import CIPSolver
from repro.sdp.branching import SpatialBranching
from repro.sdp.model import MISDP
from repro.sdp.propagators import DualFixingPropagator


def solver_with_node(model: Model, params: ParamSet | None = None) -> CIPSolver:
    s = CIPSolver(model, params or ParamSet())
    s.setup()
    node = s._tree.pop()  # noqa: SLF001 - white-box test
    s._current_node = node
    assert s._install_local_bounds(node)  # noqa: SLF001
    return s


class TestIntegralityPropagator:
    def test_snaps_bounds(self):
        m = Model()
        m.add_variable(vtype=VarType.INTEGER, lb=0.3, ub=2.7)
        s = solver_with_node(m, ParamSet(presolve=False))
        res = IntegralityPropagator().propagate(s, s.current_node)
        assert res.status is PropagationStatus.REDUCED
        assert s.local_bounds(0) == (1.0, 2.0)

    def test_detects_empty_domain(self):
        m = Model()
        m.add_variable(vtype=VarType.INTEGER, lb=0.3, ub=0.7)
        s = solver_with_node(m, ParamSet(presolve=False))
        res = IntegralityPropagator().propagate(s, s.current_node)
        assert res.status is PropagationStatus.INFEASIBLE


class TestLinearActivityPropagator:
    def test_tightens_from_row(self):
        m = Model()
        m.add_variable(lb=0.0, ub=10.0)
        m.add_variable(lb=0.0, ub=10.0)
        m.add_constraint({0: 1.0, 1: 1.0}, rhs=3.0)
        s = solver_with_node(m, ParamSet(presolve=False))
        res = LinearActivityPropagator().propagate(s, s.current_node)
        assert res.status is PropagationStatus.REDUCED
        assert s.local_bounds(0)[1] == pytest.approx(3.0)

    def test_detects_infeasible_row(self):
        m = Model()
        m.add_variable(lb=0.0, ub=1.0)
        m.add_constraint({0: 1.0}, lhs=5.0)
        s = solver_with_node(m, ParamSet(presolve=False))
        res = LinearActivityPropagator().propagate(s, s.current_node)
        assert res.status is PropagationStatus.INFEASIBLE


class TestGenericHeuristics:
    def knapsack_solver(self) -> CIPSolver:
        m = Model()
        for obj in (-3.0, -2.0):
            m.add_variable(vtype=VarType.BINARY, obj=obj)
        m.add_constraint({0: 1.0, 1: 1.0}, rhs=1.0)
        return solver_with_node(m, ParamSet(presolve=False))

    def test_rounding_finds_solution(self):
        s = self.knapsack_solver()
        RoundingHeuristic().run(s, s.current_node, np.array([0.6, 0.4]))
        assert s.incumbent is not None
        assert s.incumbent.value == pytest.approx(-3.0)

    def test_rounding_never_accepts_infeasible(self):
        s = self.knapsack_solver()
        RoundingHeuristic().run(s, s.current_node, np.array([0.9, 0.9]))
        # rounding both up violates the row; the check must reject it
        if s.incumbent is not None:
            assert s.model.check_linear(s.incumbent.x)

    def test_diving_finds_solution(self):
        s = self.knapsack_solver()
        DivingHeuristic().run(s, s.current_node, np.array([0.5, 0.5]))
        assert s.incumbent is not None


class TestDualFixing:
    def test_fixes_monotone_variable(self):
        # max y with Z = diag(1 - y): raising y TIGHTENS, so direction -1;
        # b = +1 wants y up: no fix. With b = -1 it fixes y to lb.
        m = MISDP(b=np.array([-1.0]), lb=np.array([0.0]), ub=np.array([1.0]))
        m.add_block(np.array([[1.0]]), {0: np.array([[1.0]])})
        from repro.cip.model import Model

        model = Model()
        model.add_variable(lb=0.0, ub=1.0)
        s = solver_with_node(model, ParamSet(presolve=False))
        res = DualFixingPropagator(m).propagate(s, s.current_node)
        assert res.status is PropagationStatus.REDUCED
        assert s.local_bounds(0)[1] == pytest.approx(0.0)

    def test_skips_with_linear_rows(self):
        m = MISDP(b=np.array([-1.0]), lb=np.array([0.0]), ub=np.array([1.0]))
        m.add_block(np.array([[1.0]]), {0: np.array([[1.0]])})
        m.add_linear_row({0: 1.0}, lhs=0.5)
        from repro.cip.model import Model

        model = Model()
        model.add_variable(lb=0.0, ub=1.0)
        s = solver_with_node(model, ParamSet(presolve=False))
        res = DualFixingPropagator(m).propagate(s, s.current_node)
        assert res.status is PropagationStatus.UNCHANGED


class TestSpatialBranching:
    def test_splits_violating_continuous_var(self):
        # block [[1, y],[y, 1]] with y continuous fixed... violated at y=2
        m = MISDP(b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
        m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
        from repro.cip.model import Model

        model = Model()
        model.add_variable(lb=-5.0, ub=5.0)
        s = solver_with_node(model, ParamSet(presolve=False))
        children = SpatialBranching(m).branch(s, s.current_node, np.array([2.0]))
        assert len(children) == 2
        (lo1, hi1) = children[0].bound_changes[0]
        (lo2, hi2) = children[1].bound_changes[0]
        assert hi1 == pytest.approx(lo2)
        assert hi1 < 5.0 and lo2 > -5.0

    def test_no_branching_on_feasible_point(self):
        m = MISDP(b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
        m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
        from repro.cip.model import Model

        model = Model()
        model.add_variable(lb=-5.0, ub=5.0)
        s = solver_with_node(model, ParamSet(presolve=False))
        assert SpatialBranching(m).branch(s, s.current_node, np.array([0.5])) == []
