"""Verified result cache: certificate-gated inserts, LRU behavior."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import VerifiedResultCache
from repro.serve.jobs import JobOutcome, JobState
from repro.verify.result import CheckReport

pytestmark = pytest.mark.fast


def served(state=JobState.SUCCEEDED):
    return JobOutcome(
        state=state, objective=5.0, bound=5.0, gap=0.0, solved=True,
        certified=True, solution=[1, 2, 3], detail="solved",
    )


def passing():
    report = CheckReport(subject="test")
    report.add("always", True, "fine")
    return report


def failing():
    report = CheckReport(subject="test")
    report.add("always", False, "broken")
    return report


def test_insert_requires_passing_certificate():
    cache = VerifiedResultCache()
    assert cache.insert("fp", served(), failing) is False
    assert "fp" not in cache
    assert cache.insert("fp", served(), passing) is True
    assert "fp" in cache


def test_verifier_exception_refuses_insert():
    cache = VerifiedResultCache()

    def explode():
        raise RuntimeError("verifier crashed")

    assert cache.insert("fp", served(), explode) is False
    assert len(cache) == 0


def test_only_served_states_with_solutions_are_cacheable():
    cache = VerifiedResultCache()
    assert cache.insert("a", served(JobState.FAILED), passing) is False
    assert cache.insert("b", served(JobState.CANCELLED), passing) is False
    no_solution = served()
    no_solution.solution = None
    assert cache.insert("c", no_solution, passing) is False
    assert cache.insert("d", served(JobState.DEGRADED), passing) is True


def test_lookup_returns_fresh_copy_marked_from_cache():
    cache = VerifiedResultCache()
    cache.insert("fp", served(), passing)
    first = cache.lookup("fp")
    assert first is not None and first.from_cache
    first.solution.append(99)  # mutating the served copy...
    second = cache.lookup("fp")
    assert second.solution == [1, 2, 3]  # ...does not touch the stored entry


def test_lookup_miss_returns_none():
    assert VerifiedResultCache().lookup("nope") is None


def test_lru_eviction_and_metrics():
    metrics = MetricsRegistry()
    cache = VerifiedResultCache(capacity=2, metrics=metrics)
    cache.insert("a", served(), passing)
    cache.insert("b", served(), passing)
    assert cache.lookup("a") is not None  # refresh a -> b is now oldest
    cache.insert("c", served(), passing)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert metrics.value("cache_evictions") == 1
    assert metrics.value("cache_inserts") == 3
    cache.insert("d", served(), failing)
    assert metrics.value("cache_insert_rejected") == 1


def test_duplicate_insert_is_idempotent():
    calls = []

    def counting_verifier():
        calls.append(1)
        return passing()

    cache = VerifiedResultCache()
    assert cache.insert("fp", served(), counting_verifier)
    assert cache.insert("fp", served(), counting_verifier)
    assert len(calls) == 1  # the second insert did not re-verify
    assert len(cache) == 1
