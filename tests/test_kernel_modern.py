"""Modern kernel subsystem: conflict analysis, symmetry, restarts.

Unit tests for the conflict analyzer/pool/propagator and the tree-size
estimator; a brute-force property test for the symmetry detector (every
found generator is a true model automorphism, found orbits refine the
true orbits); differential sweeps of the full ``modern`` emphasis preset
against the exhaustive oracles (SteinerSolver, flow MIP, both MISDP
approaches); and traced integration runs showing (a) orbital fixing
actually shrinks the tree on a symmetric instance and (b) an in-solve
restart fires, is accounted for, and survives the trace audit plus the
solution certificate.
"""

from __future__ import annotations

import itertools
import math
import random

import pytest

from repro.cip.conflict import (
    Clause,
    ConflictAnalyzer,
    ConflictPool,
    ConflictPropagator,
)
from repro.cip.estimate import RestartManager, TreeSizeEstimator
from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.node import Node
from repro.cip.params import ParamSet, emphasis
from repro.cip.plugins import PropagationStatus
from repro.cip.symmetry import find_generators, is_model_automorphism, orbits_of
from repro.instances import tiny_zoo
from repro.instances.stp import hypercube
from repro.obs.trace import Tracer
from repro.sdp.solver import MISDPSolver
from repro.steiner.milp import solve_stp_flow, stp_flow_mip
from repro.steiner.solver import SteinerSolver
from repro.verify import audit_cip_trace
from repro.verify.differential import brute_force_misdp, brute_force_steiner
from repro.verify.steiner import check_steiner_tree

MODERN = emphasis("modern")


def binary_model(n: int = 3) -> Model:
    m = Model("toy")
    for i in range(n):
        m.add_variable(f"x{i}", VarType.BINARY)
    return m


@pytest.mark.fast
class TestConflictPool:
    def test_deduplicates_by_literal_set(self):
        pool = ConflictPool(8)
        assert pool.add(Clause(((0, 1), (2, 0))))
        assert not pool.add(Clause(((0, 1), (2, 0))))
        assert len(pool) == 1

    def test_capacity_evicts_lowest_activity(self):
        pool = ConflictPool(2)
        a, b = Clause(((0, 1),)), Clause(((1, 1),))
        pool.add(a)
        pool.add(b)
        pool.bump(a)  # b is now the least active clause
        pool.add(Clause(((2, 1),)))
        keys = {c.key() for c in pool}
        assert a.key() in keys and b.key() not in keys
        assert len(pool) == 2


@pytest.mark.fast
class TestConflictAnalyzer:
    def _analyzer(self, n=3):
        m = binary_model(n)
        return ConflictAnalyzer(m, pool_size=16, max_literals=8)

    def test_resolves_reasoned_tightening_to_decisions(self):
        an = self._analyzer()
        node = Node(1, 0, 2, 0.0, {0: (1.0, 1.0), 1: (0.0, 0.0)})
        an.begin_node(node, enabled=True)
        an.note_tightening(2, "ub", 0.0, reason=(0,))
        clause = an.analyze([2, 1])
        assert clause is not None
        assert clause.lits == ((0, 1), (1, 0))
        # same conflict again: deduplicated by the pool
        assert an.analyze([2, 1]) is None

    def test_opaque_antecedent_abandons_learning(self):
        an = self._analyzer()
        node = Node(1, 0, 1, 0.0, {0: (1.0, 1.0)})
        an.begin_node(node, enabled=True)
        an.note_tightening(2, "lb", 1.0, reason=None)  # e.g. orbital fixing
        assert an.analyze([2]) is None
        assert an.analyze_all_decisions() is None
        assert len(an.pool) == 0

    def test_all_decisions_clause_without_opaque_entries(self):
        an = self._analyzer()
        node = Node(1, 0, 2, 0.0, {0: (1.0, 1.0), 2: (0.0, 0.0)})
        an.begin_node(node, enabled=True)
        an.note_tightening(1, "ub", 0.0, reason=(0,))
        clause = an.analyze_all_decisions()
        assert clause is not None and clause.lits == ((0, 1), (2, 0))

    def test_disabled_node_records_nothing(self):
        an = self._analyzer()
        an.begin_node(Node(1, 0, 1, 0.0, {0: (1.0, 1.0)}), enabled=False)
        an.note_tightening(1, "ub", 0.0, reason=(0,))
        assert an.analyze([1]) is None


class _FakeStats:
    def __init__(self):
        self.counts = {}

    def bump(self, key, by=1):
        self.counts[key] = self.counts.get(key, 0) + by


class _FakeSolver:
    """Just enough CIPSolver surface for ConflictPropagator."""

    def __init__(self, bounds):
        self.bounds = dict(bounds)
        self.tightened = []
        self.stats = _FakeStats()

    def local_bounds(self, j):
        return self.bounds[j]

    def tighten_ub(self, j, v, reason=None):
        self.tightened.append(("ub", j, v, reason))
        lo, hi = self.bounds[j]
        self.bounds[j] = (lo, min(hi, v))
        return True

    def tighten_lb(self, j, v, reason=None):
        self.tightened.append(("lb", j, v, reason))
        lo, hi = self.bounds[j]
        self.bounds[j] = (max(lo, v), hi)
        return True


@pytest.mark.fast
class TestConflictPropagator:
    def _prop(self):
        an = ConflictAnalyzer(binary_model(3), pool_size=16, max_literals=8)
        an.pool.add(Clause(((0, 1), (1, 1))))  # no-good: not (x0=1 and x1=1)
        return ConflictPropagator(an)

    def test_unit_clause_forces_last_literal(self):
        prop = self._prop()
        solver = _FakeSolver({0: (1.0, 1.0), 1: (0.0, 1.0), 2: (0.0, 1.0)})
        out = prop.propagate(solver, None)
        assert out.status is PropagationStatus.REDUCED
        assert solver.tightened == [("ub", 1, 0.0, (0,))]

    def test_falsified_clause_proves_infeasibility(self):
        prop = self._prop()
        solver = _FakeSolver({0: (1.0, 1.0), 1: (1.0, 1.0), 2: (0.0, 1.0)})
        out = prop.propagate(solver, None)
        assert out.status is PropagationStatus.INFEASIBLE
        assert out.conflict == (0, 1)
        assert solver.stats.counts.get("conflicts_applied") == 1

    def test_satisfied_clause_is_skipped(self):
        prop = self._prop()
        solver = _FakeSolver({0: (0.0, 0.0), 1: (1.0, 1.0), 2: (0.0, 1.0)})
        out = prop.propagate(solver, None)
        assert out.status is PropagationStatus.UNCHANGED
        assert not solver.tightened


@pytest.mark.fast
class TestTreeSizeEstimation:
    def test_complete_tree_estimate_is_exact(self):
        est = TreeSizeEstimator()
        for _ in range(4):  # the 4 leaves of a complete depth-2 binary tree
            est.observe_leaf(2)
        assert est.estimate_total_leaves() == pytest.approx(4.0)
        assert est.estimate_total_nodes() == pytest.approx(7.0)
        assert est.progress() == pytest.approx(1.0)

    def test_progress_projection(self):
        est = TreeSizeEstimator()
        est.observe_leaf(2)
        est.observe_leaf(2)  # half the tree weight resolved
        assert est.estimate_by_progress(5) == pytest.approx(10.0)
        assert TreeSizeEstimator().estimate_by_progress(5) is None

    def test_restart_uses_max_of_both_projections(self):
        # best-first bias: shallow-leaf sample makes the frequency
        # estimate lag low; the progress projection must still trigger.
        est = TreeSizeEstimator()
        for _ in range(3):
            est.observe_leaf(5)  # freq: 2*32-1 = 63; progress: 10/(3/32) ~ 107
        mgr = RestartManager(max_restarts=1, min_nodes=5, node_factor=8.0)
        assert mgr.should_restart(est, 10)  # 107 >= 80 even though 63 < 80
        mgr = RestartManager(max_restarts=1, min_nodes=5, node_factor=12.0)
        assert not mgr.should_restart(est, 10)  # neither projection reaches 120

    def test_restart_gates(self):
        est = TreeSizeEstimator()
        est.observe_leaf(10)
        mgr = RestartManager(max_restarts=1, min_nodes=50, node_factor=1.0)
        assert not mgr.should_restart(est, 10)  # below min_nodes
        mgr = RestartManager(max_restarts=0, min_nodes=1, node_factor=1.0)
        assert not mgr.should_restart(est, 10)  # budget exhausted
        mgr = RestartManager(max_restarts=1, min_nodes=1, node_factor=1.0)
        mgr.note_restart()
        assert not mgr.should_restart(est, 10)


def random_symmetric_model(seed: int) -> Model:
    """Small random binary model with planted duplicate structure."""
    rng = random.Random(seed)
    n = rng.randint(4, 6)
    m = Model(f"sym{seed}")
    objs = [rng.choice([1.0, 2.0]) for _ in range(n)]
    for i in range(n):
        m.add_variable(f"x{i}", VarType.BINARY, obj=objs[i])
    for _ in range(rng.randint(1, 3)):
        size = rng.randint(2, n)
        support = rng.sample(range(n), size)
        coef = float(rng.choice([1, 2]))
        m.add_constraint({j: coef for j in support}, rhs=float(rng.randint(1, size)))
    return m


@pytest.mark.fast
class TestSymmetryDetection:
    @pytest.mark.parametrize("seed", range(20))
    def test_generators_are_true_automorphisms_and_orbits_refine(self, seed):
        m = random_symmetric_model(seed)
        n = len(m.variables)
        true_auts = [
            p for p in itertools.permutations(range(n)) if is_model_automorphism(m, p)
        ]
        true_orbit_of = {}
        for orbit in orbits_of(n, true_auts):
            for j in orbit:
                true_orbit_of[j] = tuple(orbit)
        info = find_generators(m)
        for gen in info.generators:
            assert is_model_automorphism(m, gen), (seed, gen)
        for orbit in info.orbits:
            # every found orbit sits inside one true orbit
            assert {true_orbit_of[j] for j in orbit} and len(
                {true_orbit_of[j] for j in orbit}
            ) == 1, (seed, orbit)

    def test_identical_variables_are_detected(self):
        m = Model("twins")
        for i in range(3):
            m.add_variable(f"x{i}", VarType.BINARY, obj=1.0)
        m.add_constraint({0: 1.0, 1: 1.0, 2: 1.0}, lhs=1.0, rhs=3.0)
        info = find_generators(m)
        assert info.nontrivial
        assert sorted(map(sorted, info.orbits)) == [[0, 1, 2]]

    def test_detection_is_deterministic(self):
        g = hypercube(dim=3, parity_terminals=True, perturbed=False, seed=0)
        m = stp_flow_mip(g).model
        a, b = find_generators(m), find_generators(m)
        assert a.generators == b.generators and a.orbits == b.orbits
        assert a.nontrivial  # the parity hypercube really is symmetric


ZOO_STP = tiny_zoo(seeds=(0,), kind="stp")
ZOO_MISDP = tiny_zoo(seeds=(0,), kind="misdp")


@pytest.mark.slow
class TestModernDifferential:
    @pytest.mark.parametrize("gi", ZOO_STP, ids=lambda gi: gi.name)
    def test_steiner_solver_modern_matches_brute_force(self, gi):
        optimum = brute_force_steiner(gi.instance)
        sol = SteinerSolver(gi.instance.copy(), params=MODERN, seed=3).solve()
        assert math.isclose(sol.cost, optimum, rel_tol=1e-9, abs_tol=1e-6), gi.name

    @pytest.mark.parametrize(
        "gi",
        [gi for gi in ZOO_STP if gi.name.startswith(("grid_holes", "orlib_random"))],
        ids=lambda gi: gi.name,
    )
    def test_flow_mip_modern_matches_brute_force_and_certifies(self, gi):
        optimum = brute_force_steiner(gi.instance) + gi.instance.fixed_cost
        result, edges, _solver = solve_stp_flow(gi.instance, MODERN)
        assert math.isclose(result.objective, optimum, rel_tol=1e-9, abs_tol=1e-6)
        assert check_steiner_tree(gi.instance, edges, result.objective).ok, gi.name

    @pytest.mark.parametrize("gi", ZOO_MISDP, ids=lambda gi: gi.name)
    @pytest.mark.parametrize("approach", ["sdp", "lp"])
    def test_misdp_modern_matches_brute_force(self, gi, approach):
        ref = brute_force_misdp(gi.instance)
        assert ref is not None
        sol = MISDPSolver(gi.instance, params=MODERN, approach=approach, seed=3).solve(
            node_limit=5000
        )
        assert math.isclose(sol.objective, ref[0], rel_tol=1e-4, abs_tol=1e-4), gi.name


def traced_flow_solve(graph, params):
    fm = stp_flow_mip(graph)
    solver = make_mip_solver(fm.model, params)
    solver.tracer = Tracer(capacity=100000)
    result = solver.solve()
    edges = fm.tree_edges(result.best_solution.x)
    return result, edges, solver


@pytest.mark.slow
class TestModernIntegration:
    def test_symmetry_shrinks_the_parity_hypercube_tree(self):
        g = hypercube(dim=3, parity_terminals=True, perturbed=False, seed=0)
        optimum = brute_force_steiner(g) + g.fixed_cost
        off, off_edges, _ = traced_flow_solve(g, ParamSet())
        on, on_edges, on_solver = traced_flow_solve(g, MODERN)
        assert math.isclose(off.objective, optimum, rel_tol=1e-9)
        assert math.isclose(on.objective, optimum, rel_tol=1e-9)
        assert on.nodes_processed < off.nodes_processed
        assert check_steiner_tree(g, on_edges, on.objective).ok
        report = audit_cip_trace(on_solver.tracer, on)
        assert report.ok, report.summary()

    def test_forced_restart_is_audited_and_certified(self):
        g = hypercube(dim=3, parity_terminals=True, perturbed=False, seed=0)
        optimum = brute_force_steiner(g) + g.fixed_cost
        params = MODERN.with_changes(restart_min_nodes=10, restart_node_factor=1.5)
        result, edges, solver = traced_flow_solve(g, params)
        assert int(result.stats.extra.get("restarts", 0)) >= 1
        assert math.isclose(result.objective, optimum, rel_tol=1e-9)
        assert check_steiner_tree(g, edges, result.objective).ok
        report = audit_cip_trace(solver.tracer, result)
        assert report.ok, report.summary()
        accounting = next(c for c in report.checks if c.name == "restart_accounting")
        assert accounting.ok
