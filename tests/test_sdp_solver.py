"""Tests for the MISDP solver: eigenvector cuts, both approaches, plugins."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cip.params import ParamSet
from repro.sdp.admm import solve_sdp_relaxation
from repro.sdp.eigcuts import initial_diagonal_cuts
from repro.sdp.instances import (
    cardinality_least_squares,
    cblib_collection,
    min_k_partitioning,
    truss_topology_design,
)
from repro.sdp.model import MISDP
from repro.sdp.solver import MISDPSolver

OK_STATUSES = ("optimal", "gap_limit")


def brute_force_misdp(misdp: MISDP) -> float:
    """Enumerate integer assignments; continuous part via ADMM."""
    best = -np.inf
    ints = misdp.integers
    ranges = [range(int(misdp.lb[i]), int(misdp.ub[i]) + 1) for i in ints]
    for combo in itertools.product(*ranges):
        lb = misdp.lb.copy()
        ub = misdp.ub.copy()
        for i, v in zip(ints, combo):
            lb[i] = ub[i] = float(v)
        r = solve_sdp_relaxation(misdp, lb, ub, max_iter=5000)
        if r.status == "optimal" and r.objective > best and misdp.is_feasible(r.y, 1e-3):
            best = r.objective
    return best


class TestEigenvectorCuts:
    def test_cut_separates_infeasible_point(self):
        m = MISDP(b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
        m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
        solver = MISDPSolver(m, approach="lp")
        solver.prepare()
        handler = next(h for h in solver.cip.conshdlrs if h.name == "sdp_eigcuts")
        y_bad = np.array([2.0])
        assert not handler.check(solver.cip, y_bad)
        cuts = handler.separate(solver.cip, None, y_bad)
        assert cuts
        # every cut must cut off y_bad but keep the feasible y = 1
        for cut in cuts:
            assert cut.violation(y_bad) > 1e-6
            assert cut.violation(np.array([1.0])) <= 1e-6

    def test_check_accepts_feasible(self):
        m = MISDP(b=np.array([1.0]), lb=np.array([-5.0]), ub=np.array([5.0]))
        m.add_block(np.eye(2), {0: np.array([[0.0, -1.0], [-1.0, 0.0]])})
        solver = MISDPSolver(m, approach="lp")
        solver.prepare()
        handler = next(h for h in solver.cip.conshdlrs if h.name == "sdp_eigcuts")
        assert handler.check(solver.cip, np.array([0.5]))

    def test_initial_diagonal_cuts_valid(self):
        m = cardinality_least_squares(n_features=3, n_samples=4, seed=0)
        cuts = initial_diagonal_cuts(m)
        assert cuts  # the Schur block has variable diagonal entries
        # any feasible point satisfies every diagonal cut
        y_feas = np.zeros(m.num_vars)
        y_feas[-1] = 1e3
        assert m.is_feasible(y_feas)
        for cut in cuts:
            assert cut.violation(y_feas) <= 1e-9


class TestMISDPSolver:
    @pytest.mark.parametrize("approach", ["sdp", "lp"])
    def test_mkp_matches_bruteforce(self, approach):
        m = min_k_partitioning(n=4, k=2, seed=1)
        bf = brute_force_misdp(m)
        sol = MISDPSolver(m, approach=approach, seed=0).solve(node_limit=500, time_limit=120)
        assert sol.status.value in OK_STATUSES
        assert sol.objective == pytest.approx(bf, abs=5e-3)
        assert m.is_feasible(sol.y, tol=1e-4)

    @pytest.mark.parametrize("approach", ["sdp", "lp"])
    def test_cls_matches_bruteforce(self, approach):
        m = cardinality_least_squares(n_features=3, n_samples=4, seed=1)
        bf = brute_force_misdp(m)
        sol = MISDPSolver(m, approach=approach, seed=0).solve(node_limit=500, time_limit=120)
        assert sol.status.value in OK_STATUSES
        assert sol.objective == pytest.approx(bf, abs=5e-3)

    def test_approaches_agree_on_ttd(self):
        m = truss_topology_design(n_cols=1, seed=0)
        sols = {
            a: MISDPSolver(m, approach=a, seed=0).solve(node_limit=2000, time_limit=120)
            for a in ("sdp", "lp")
        }
        assert abs(sols["sdp"].objective - sols["lp"].objective) < 2e-2

    def test_unknown_approach_rejected(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        with pytest.raises(Exception):
            MISDPSolver(m, approach="quantum")

    def test_approach_via_params_extras(self):
        m = min_k_partitioning(n=4, k=2, seed=0)
        p = ParamSet().with_changes(**{"misdp/approach": "lp"})
        solver = MISDPSolver(m, params=p, approach="sdp")
        assert solver.approach == "lp"

    def test_dual_bound_upper_bounds_objective(self):
        m = min_k_partitioning(n=4, k=2, seed=2)
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        assert sol.dual_bound >= sol.objective - 1e-6

    def test_subproblem_serialization(self):
        m = min_k_partitioning(n=5, k=2, seed=0)
        solver = MISDPSolver(m, approach="lp", seed=0)
        solver.prepare()
        # run a few steps to create open nodes
        for _ in range(4):
            out = solver.cip.step()
            if out.finished:
                break
        node = solver.cip.extract_open_node()
        if node is not None:
            bounds = solver.node_to_subproblem(node)
            solver2 = MISDPSolver(m, approach="lp", seed=0)
            solver2.prepare(bounds)
            assert solver2.cip is not None


class TestInstances:
    def test_ttd_full_structure_feasible(self):
        m = truss_topology_design(n_cols=2, seed=0)
        nb = m.num_vars // 2
        y = np.concatenate([np.full(nb, 2.0), np.ones(nb)])
        # the all-bars design satisfies the SDP but may break the budget row;
        # test the block alone
        Z = m.blocks[0].evaluate(y)
        assert np.linalg.eigvalsh(Z)[0] >= -1e-8

    def test_cls_truth_recoverable(self):
        m = cardinality_least_squares(n_features=4, n_samples=6, seed=3)
        # zero vector with t large is always feasible
        y = np.zeros(m.num_vars)
        y[-1] = 1e3
        assert m.is_feasible(y)

    def test_mkp_all_same_part_feasible(self):
        m = min_k_partitioning(n=5, k=3, seed=0)
        y = np.ones(m.num_vars)  # everything in one part: M(y) = J >= 0
        assert m.is_feasible(y)

    def test_mkp_singleton_partition_infeasible_when_n_exceeds_k(self):
        # n=5 singletons need 5 parts; the k=3 Gram matrix cannot realise it
        m = min_k_partitioning(n=5, k=3, seed=0)
        assert not m.is_feasible(np.zeros(m.num_vars))

    def test_mkp_invalid_args(self):
        with pytest.raises(Exception):
            min_k_partitioning(n=2, k=5)

    def test_cblib_collection_structure(self):
        suite = cblib_collection(n_ttd=2, n_cls=2, n_mkp=2, seed=0)
        assert len(suite) == 6
        families = {fam for fam, _, _ in suite}
        assert families == {"TTD", "CLS", "Mk-P"}
        names = [name for _, name, _ in suite]
        assert len(set(names)) == 6

    def test_generators_deterministic(self):
        a = min_k_partitioning(n=5, k=2, seed=7)
        b = min_k_partitioning(n=5, k=2, seed=7)
        assert np.allclose(a.b, b.b)
