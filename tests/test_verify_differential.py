"""Differential oracles, each exercised over >= 20 seeded instances:
brute force vs B&B, simplex vs HiGHS, SimEngine vs ThreadEngine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.result import SolveStatus
from repro.sdp.instances import min_k_partitioning
from repro.sdp.solver import MISDPSolver
from repro.steiner.instances import hypercube_instance, random_instance
from repro.steiner.solver import SteinerSolver
from repro.verify import (
    brute_force_binary_mip,
    brute_force_misdp,
    brute_force_steiner,
    cross_check_engines,
    cross_check_lp,
    random_lp,
)

pytestmark = pytest.mark.fast

SEEDS = range(20)


class TestBruteForceSteiner:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_matches_enumeration(self, seed):
        g = random_instance(8, 12, 4, seed=seed)
        expected = brute_force_steiner(g)
        sol = SteinerSolver(g.copy(), seed=0).solve()
        assert sol.cost == pytest.approx(expected)


class TestBruteForceBinaryMIP:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        n, rows = 6, 3
        c = rng.integers(-8, 9, size=n).astype(float)
        A = rng.integers(-3, 4, size=(rows, n)).astype(float)
        b = rng.integers(2, 9, size=rows).astype(float)
        expected = brute_force_binary_mip(c, A, b)
        m = Model()
        for j in range(n):
            m.add_variable(f"x{j}", VarType.BINARY, obj=float(c[j]))
        for i in range(rows):
            m.add_constraint({j: float(A[i, j]) for j in range(n) if A[i, j]},
                             rhs=float(b[i]))
        res = make_mip_solver(m).solve()
        if expected is None:
            assert res.status is SolveStatus.INFEASIBLE
        else:
            assert res.status is SolveStatus.OPTIMAL
            assert res.objective == pytest.approx(expected)


class TestBruteForceMISDP:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_matches_grid_enumeration(self, seed):
        m = min_k_partitioning(n=4, k=2, seed=seed)
        expected = brute_force_misdp(m)
        assert expected is not None
        sol = MISDPSolver(m, approach="sdp", seed=0).solve(node_limit=500, time_limit=60)
        assert sol.objective == pytest.approx(expected[0], abs=1e-4)

    def test_rejects_continuous_instances(self):
        from repro.sdp.instances import cardinality_least_squares

        m = cardinality_least_squares(n_features=3, n_samples=4, seed=0)
        with pytest.raises(ValueError, match="all-integer"):
            brute_force_misdp(m)


class TestLPBackendCrossCheck:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_agree_with_certificates(self, seed):
        lp = random_lp(np.random.default_rng(seed))
        report = cross_check_lp(lp)
        assert report.ok, report.summary()

    def test_certificates_actually_checked(self):
        # the cross-check must contain a verified certificate per backend
        report = cross_check_lp(random_lp(np.random.default_rng(0)))
        names = {c.name for c in report.checks}
        assert {"certificate_simplex", "certificate_highs", "objective_agreement"} <= names


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sim_and_threads_prove_same_optimum(self, seed):
        g = random_instance(9, 14, 4, seed=seed)
        report = cross_check_engines(g, n_solvers=2, seed=seed)
        assert report.ok, report.summary()

    @pytest.mark.slow
    def test_presolve_resistant_instance(self):
        # hc4 needs genuine parallel B&B under both engines
        g = hypercube_instance(4, perturbed=False, seed=1)
        report = cross_check_engines(g, n_solvers=2, seed=0)
        assert report.ok, report.summary()
