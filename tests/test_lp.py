"""Tests for the LP substrate: model, simplex, HiGHS backend agreement."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LPError, ModelError
from repro.lp import LinearProgram, LPStatus, solve_lp


def small_lp() -> LinearProgram:
    lp = LinearProgram()
    x = lp.add_variable(0, 10, obj=-1.0, name="x")
    y = lp.add_variable(0, 10, obj=-2.0, name="y")
    lp.add_row({x: 1.0, y: 1.0}, rhs=6.0)
    lp.add_row({x: 1.0, y: -1.0}, lhs=-3.0)
    return lp


class TestModel:
    def test_counts(self):
        lp = small_lp()
        assert lp.num_cols == 2
        assert lp.num_rows == 2

    def test_bad_bounds_raise(self):
        lp = LinearProgram()
        with pytest.raises(ModelError):
            lp.add_variable(lb=1.0, ub=0.0)

    def test_bad_row_raises(self):
        lp = LinearProgram()
        lp.add_variable()
        with pytest.raises(ModelError):
            lp.add_row({5: 1.0})
        with pytest.raises(ModelError):
            lp.add_row({0: 1.0}, lhs=2.0, rhs=1.0)

    def test_is_feasible(self):
        lp = small_lp()
        assert lp.is_feasible(np.array([1.0, 1.0]))
        assert not lp.is_feasible(np.array([10.0, 10.0]))

    def test_set_bounds_and_objective(self):
        lp = small_lp()
        lp.set_bounds(0, 2.0, 3.0)
        assert lp.get_bounds(0) == (2.0, 3.0)
        lp.set_objective(0, 5.0)
        c, *_ = lp.to_arrays()
        assert c[0] == 5.0
        with pytest.raises(ModelError):
            lp.set_bounds(0, 4.0, 3.0)


class TestBackends:
    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_simple_optimal(self, backend):
        sol = solve_lp(small_lp(), backend)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-10.5)

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_infeasible(self, backend):
        lp = LinearProgram()
        x = lp.add_variable(0, 1)
        lp.add_row({x: 1.0}, lhs=2.0)
        assert solve_lp(lp, backend).status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_unbounded(self, backend):
        lp = LinearProgram()
        lp.add_variable(0, math.inf, obj=-1.0)
        assert solve_lp(lp, backend).status is LPStatus.UNBOUNDED

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_equality_rows(self, backend):
        lp = LinearProgram()
        x = lp.add_variable(-5, 5, obj=1.0)
        y = lp.add_variable(-5, 5, obj=1.0)
        lp.add_row({x: 1.0, y: 1.0}, lhs=3.0, rhs=3.0)
        sol = solve_lp(lp, backend)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_free_variable(self, backend):
        lp = LinearProgram()
        x = lp.add_variable(-math.inf, math.inf, obj=1.0)
        lp.add_row({x: 1.0}, lhs=-7.0)
        sol = solve_lp(lp, backend)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-7.0)

    def test_unknown_backend(self):
        with pytest.raises(LPError):
            solve_lp(small_lp(), "cplex")

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_duals_reduced_cost_consistency(self, backend):
        lp = small_lp()
        sol = solve_lp(lp, backend)
        c, A, _, _, _, _ = lp.to_arrays()
        assert np.allclose(sol.reduced_costs, c - A.T @ sol.duals, atol=1e-8)

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_dual_sign_convention(self, backend):
        # min x s.t. x >= 1 -> binding lhs row must have dual +1
        lp = LinearProgram()
        x = lp.add_variable(-10, 10, obj=1.0)
        lp.add_row({x: 1.0}, lhs=1.0)
        sol = solve_lp(lp, backend)
        assert sol.duals[0] == pytest.approx(1.0)
        # min -x s.t. x <= 2 -> binding rhs row must have dual -1
        lp2 = LinearProgram()
        x = lp2.add_variable(-10, 10, obj=-1.0)
        lp2.add_row({x: 1.0}, rhs=2.0)
        sol2 = solve_lp(lp2, backend)
        assert sol2.duals[0] == pytest.approx(-1.0)


@st.composite
def random_lp(draw):
    n = draw(st.integers(2, 6))
    m = draw(st.integers(1, 5))
    lp = LinearProgram()
    for _ in range(n):
        lb = draw(st.floats(-3, 0))
        width = draw(st.floats(0.5, 4))
        obj = draw(st.floats(-2, 2))
        lp.add_variable(lb, lb + width, obj)
    for _ in range(m):
        # keep coefficients well above the solvers' feasibility tolerances:
        # at |coef| ~ 1e-7 a row's violation sits exactly on the tolerance
        # boundary and OPTIMAL vs INFEASIBLE becomes a coin flip per backend
        coefs = {
            j: draw(st.floats(-2, 2).filter(lambda c: abs(c) >= 1e-2))
            for j in range(n)
            if draw(st.booleans())
        }
        if not coefs:
            coefs = {0: 1.0}
        kind = draw(st.integers(0, 2))
        if kind == 0:
            lp.add_row(coefs, rhs=draw(st.floats(0, 3)))
        elif kind == 1:
            lp.add_row(coefs, lhs=draw(st.floats(-3, 0)))
        else:
            v = draw(st.floats(-1, 1))
            lp.add_row(coefs, lhs=v, rhs=v)
    return lp


class TestSimplexVsHighs:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_backends_agree(self, lp):
        a = solve_lp(lp, "highs")
        b = solve_lp(lp, "simplex")
        assert a.status == b.status
        if a.status is LPStatus.OPTIMAL:
            assert a.objective == pytest.approx(b.objective, abs=1e-6)
            assert lp.is_feasible(b.x, tol=1e-6)
