"""LP failover chain: recover from numerical failure instead of crashing.

Production SCIP classifies LP-solver failures and retries with modified
settings (scaling, perturbation, a different solver) before it ever gives
up on a node's relaxation.  :class:`RobustLPSolver` reproduces that chain
for the two backends here:

1. **plain** — the primary backend, untouched.
2. **scaled** — Curtis–Reid-style row/column equilibration applied to a
   copy of the LP; the solution is mapped back to the original space
   (``x = s · x'``, ``y_i = r_i · y'_i``, ``rc_j = rc'_j / s_j``).
3. **perturbed** — finite variable bounds pushed *outward* by a tiny
   relative amount.  This is a relaxation of the original LP, so for a
   minimisation problem its optimum remains a valid dual bound — exactly
   what the branch-and-bound loop consumes.
4. **switched** — the other backend (highs ↔ simplex), plain.

Escalation happens only on ``ERROR`` / ``ITERATION_LIMIT``.  Terminal
statuses (OPTIMAL, INFEASIBLE, UNBOUNDED) stop the chain, and so does
``TIME_LIMIT`` — burning the remaining budget on retries would defeat
the deadline.  If every link fails, the last solution (a safe
non-raising status) is returned and the CIP loop converts it into
"relaxation unavailable, branch anyway".

The failover path is recorded on ``LPSolution.attempts`` so callers
(and the `repro.obs` trace) can see exactly which links ran.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lp.interface import solve_lp
from repro.lp.model import INF, LinearProgram, LPAttempt, LPSolution, LPStatus

# statuses that end the chain immediately (the answer is trustworthy or
# retrying cannot help within budget)
_TERMINAL = frozenset(
    {LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED, LPStatus.TIME_LIMIT}
)

_OTHER_BACKEND = {"highs": "simplex", "simplex": "highs"}


def _equilibrate(lp: LinearProgram) -> tuple[LinearProgram, np.ndarray, np.ndarray]:
    """Return a row/column-equilibrated copy plus the (row, col) scale vectors.

    Row i of the scaled LP is ``r_i * A_i``, column j is further scaled by
    ``s_j``; objective and bounds transform consistently so the scaled LP
    is the original under the substitution ``x = s · x'``.
    """
    c, A, lhs, rhs, lb, ub = lp.to_arrays()
    m, n = A.shape
    row_s = np.ones(m)
    for i in range(m):
        mx = np.max(np.abs(A[i])) if n else 0.0
        if mx > 0 and math.isfinite(mx):
            row_s[i] = 1.0 / mx
    As = A * row_s[:, None] if m else A
    col_s = np.ones(n)
    for j in range(n):
        mx = np.max(np.abs(As[:, j])) if m else 0.0
        if mx > 0 and math.isfinite(mx):
            col_s[j] = 1.0 / mx

    scaled = LinearProgram()
    for j in range(n):
        # x_j = col_s[j] * x'_j  =>  bounds and objective divide/multiply
        s = col_s[j]
        new_lb = lb[j] / s if lb[j] > -INF else -INF
        new_ub = ub[j] / s if ub[j] < INF else INF
        scaled.add_variable(lb=new_lb, ub=new_ub, obj=c[j] * s)
    for i in range(m):
        coefs = {j: As[i, j] * col_s[j] for j in range(n) if As[i, j] != 0.0}
        new_lhs = lhs[i] * row_s[i] if lhs[i] > -INF else -INF
        new_rhs = rhs[i] * row_s[i] if rhs[i] < INF else INF
        scaled.add_row(coefs, lhs=new_lhs, rhs=new_rhs)
    return scaled, row_s, col_s


def _unscale(sol: LPSolution, row_s: np.ndarray, col_s: np.ndarray) -> LPSolution:
    """Map an OPTIMAL solution of the scaled LP back to original space."""
    x = sol.x * col_s if sol.x.size else sol.x
    duals = sol.duals * row_s if sol.duals.size else sol.duals
    reduced = sol.reduced_costs / col_s if sol.reduced_costs.size else sol.reduced_costs
    return LPSolution(sol.status, x, sol.objective, duals, reduced, sol.iterations)


def _perturb(lp: LinearProgram, eps: float) -> LinearProgram:
    """Copy of ``lp`` with finite variable bounds pushed outward by ``eps``
    relatively — a relaxation, so the optimum stays a valid dual bound."""
    c, A, lhs, rhs, lb, ub = lp.to_arrays()
    m, n = A.shape
    out = LinearProgram()
    for j in range(n):
        new_lb = lb[j] - eps * (1.0 + abs(lb[j])) if lb[j] > -INF else -INF
        new_ub = ub[j] + eps * (1.0 + abs(ub[j])) if ub[j] < INF else INF
        out.add_variable(lb=new_lb, ub=new_ub, obj=c[j])
    for i in range(m):
        coefs = {j: A[i, j] for j in range(n) if A[i, j] != 0.0}
        out.add_row(coefs, lhs=lhs[i], rhs=rhs[i])
    return out


class RobustLPSolver:
    """Escalating LP solve: plain → scaled → perturbed → switched backend.

    Parameters
    ----------
    backend:
        Primary backend name (``"highs"`` or ``"simplex"``).
    perturbation:
        Relative outward bound shift used by the ``perturbed`` link.
    budget:
        Optional duck-typed :class:`repro.utils.budget.Budget`; checked
        between links (a deadline stops escalation) and threaded into
        every backend call.
    """

    def __init__(self, backend: str = "highs", perturbation: float = 1e-6, budget=None) -> None:
        self.backend = backend
        self.perturbation = perturbation
        self.budget = budget

    def solve(self, lp: LinearProgram, **kwargs: object) -> LPSolution:
        """Run the chain on ``lp``; extra kwargs go to primary-backend links."""
        attempts: list[LPAttempt] = []
        iterations = 0

        def run(backend: str, strategy: str, problem: LinearProgram, **kw: object) -> LPSolution:
            nonlocal iterations
            sol = solve_lp(problem, backend, budget=self.budget, **kw)
            iterations += sol.iterations
            attempts.append(LPAttempt(backend, strategy, sol.status))
            return sol

        def finish(sol: LPSolution) -> LPSolution:
            sol.iterations = iterations
            sol.attempts = attempts
            return sol

        # 1. plain
        sol = run(self.backend, "plain", lp, **kwargs)
        if sol.status in _TERMINAL:
            return finish(sol)

        # 2. scaled re-solve
        if self.budget is None or not self.budget.time_exceeded():
            scaled, row_s, col_s = _equilibrate(lp)
            sol2 = run(self.backend, "scaled", scaled, **kwargs)
            if sol2.status is LPStatus.OPTIMAL:
                return finish(_unscale(sol2, row_s, col_s))
            if sol2.status in _TERMINAL:
                return finish(sol2)
            sol = sol2

        # 3. perturbed bounds (a relaxation: bound stays valid)
        if self.budget is None or not self.budget.time_exceeded():
            sol3 = run(self.backend, "perturbed", _perturb(lp, self.perturbation), **kwargs)
            if sol3.status in _TERMINAL:
                return finish(sol3)
            sol = sol3

        # 4. switch backend (default settings — primary kwargs may not apply)
        if self.budget is None or not self.budget.time_exceeded():
            other = _OTHER_BACKEND.get(self.backend)
            if other is not None:
                sol4 = run(other, "switched", lp)
                if sol4.status in _TERMINAL:
                    return finish(sol4)
                sol = sol4

        # surrender with the last (safe, non-raising) status; a deadline
        # that expired mid-chain is reported as TIME_LIMIT so the caller
        # accounts a budget stop, not a numerical failure
        if self.budget is not None and self.budget.time_exceeded():
            sol.status = LPStatus.TIME_LIMIT
        return finish(sol)
