"""Backend-dispatching LP solve entry point."""

from __future__ import annotations

from repro.exceptions import LPError
from repro.lp.model import LinearProgram, LPSolution

_BACKENDS = ("highs", "simplex")


def solve_lp(lp: LinearProgram, backend: str = "highs", **kwargs: object) -> LPSolution:
    """Solve ``lp`` with the named backend (``"highs"`` or ``"simplex"``)."""
    if backend == "highs":
        from repro.lp.scipy_backend import solve_with_scipy

        return solve_with_scipy(lp)
    if backend == "simplex":
        from repro.lp.simplex import solve_with_simplex

        return solve_with_simplex(lp, **kwargs)  # type: ignore[arg-type]
    raise LPError(f"unknown LP backend {backend!r}; choose from {_BACKENDS}")
