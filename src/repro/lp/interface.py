"""Backend-dispatching LP solve entry point.

Every backend reports through the shared :class:`repro.lp.model.LPStatus`
classification — backend-specific strings and exceptions never escape
this module (an unknown *backend name* still raises, that is a caller
bug, not a numerical event).
"""

from __future__ import annotations

from repro.exceptions import LPError
from repro.lp.model import LinearProgram, LPSolution

_BACKENDS = ("highs", "simplex")


def solve_lp(
    lp: LinearProgram, backend: str = "highs", budget=None, **kwargs: object
) -> LPSolution:
    """Solve ``lp`` with the named backend (``"highs"`` or ``"simplex"``).

    ``budget`` (duck-typed :class:`repro.utils.budget.Budget`) threads a
    deadline into the backend's inner loop; both backends return
    ``LPStatus.TIME_LIMIT`` when it expires mid-solve.
    """
    if backend == "highs":
        from repro.lp.scipy_backend import solve_with_scipy

        return solve_with_scipy(lp, budget=budget)
    if backend == "simplex":
        from repro.lp.simplex import solve_with_simplex

        return solve_with_simplex(lp, budget=budget, **kwargs)  # type: ignore[arg-type]
    raise LPError(f"unknown LP backend {backend!r}; choose from {_BACKENDS}")
