"""LP substrate: model container and interchangeable solver backends.

The branch-and-cut machinery in :mod:`repro.cip` needs primal solutions,
row duals and reduced costs from an LP oracle. Two backends implement the
same interface: a dense bounded-variable revised simplex written here
(:mod:`repro.lp.simplex`) and scipy's HiGHS (:mod:`repro.lp.scipy_backend`,
the default — it plays the role of Cplex/SoPlex in the paper).  Both
report numerical failure through the uniform :class:`LPStatus` instead of
raising; :class:`RobustLPSolver` layers an escalating recovery chain
(scaling → bound perturbation → backend switch) on top.
"""

from repro.lp.model import LinearProgram, LPAttempt, LPSolution, LPStatus
from repro.lp.interface import solve_lp
from repro.lp.robust import RobustLPSolver

__all__ = ["LinearProgram", "LPAttempt", "LPSolution", "LPStatus", "solve_lp", "RobustLPSolver"]
