"""LP substrate: model container and interchangeable solver backends.

The branch-and-cut machinery in :mod:`repro.cip` needs primal solutions,
row duals and reduced costs from an LP oracle. Two backends implement the
same interface: a dense bounded-variable revised simplex written here
(:mod:`repro.lp.simplex`) and scipy's HiGHS (:mod:`repro.lp.scipy_backend`,
the default — it plays the role of Cplex/SoPlex in the paper).
"""

from repro.lp.model import LinearProgram, LPSolution, LPStatus
from repro.lp.interface import solve_lp

__all__ = ["LinearProgram", "LPSolution", "LPStatus", "solve_lp"]
