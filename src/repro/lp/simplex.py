"""Dense bounded-variable revised simplex.

This is the self-contained LP oracle of the library — the role SoPlex
plays for SCIP at PACE 2018 ("non-commercial, but considerably slower").
It solves

    min c'x   s.t.  A x = b,   lb <= x <= ub

after converting general rows to equalities with slack columns. A
two-phase scheme with artificial columns establishes feasibility; the
ratio test supports bound flips, and Bland's rule kicks in after a
degeneracy streak to guarantee termination.

The basis inverse is refactorised every iteration via LAPACK LU — cubic
per iteration but entirely adequate for the row counts the branch-and-cut
loop produces here, and far easier to trust than an eta-file update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.lp.model import LinearProgram, LPSolution, LPStatus

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2
_FREE_AT_ZERO = 3

_PIVOT_TOL = 1e-9
_FEAS_TOL = 1e-8
_DEGEN_STREAK_FOR_BLAND = 40


@dataclass
class _Computational:
    """Equality-form data: columns = structural vars then slacks."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    n_structural: int
    slack_row: np.ndarray  # slack column j-n_structural belongs to this row


def _to_computational(lp: LinearProgram) -> _Computational:
    c, A, lhs, rhs, lb, ub = lp.to_arrays()
    m, n = A.shape
    # one slack per row: lhs <= a'x <= rhs  <=>  a'x - s = 0, lhs <= s <= rhs
    A_eq = np.hstack([A, -np.eye(m)]) if m else A.reshape(0, n)
    b_eq = np.zeros(m)
    c_eq = np.concatenate([c, np.zeros(m)])
    lb_eq = np.concatenate([lb, lhs])
    ub_eq = np.concatenate([ub, rhs])
    return _Computational(A_eq, b_eq, c_eq, lb_eq, ub_eq, n, np.arange(m))


def _initial_point(comp: _Computational) -> tuple[np.ndarray, np.ndarray]:
    """Nonbasic start: every column at its finite bound nearest zero (free at 0)."""
    n_total = comp.A.shape[1]
    status = np.empty(n_total, dtype=np.int64)
    x = np.zeros(n_total)
    for j in range(n_total):
        lo, hi = comp.lb[j], comp.ub[j]
        if lo > -math.inf and (hi == math.inf or abs(lo) <= abs(hi)):
            status[j], x[j] = _AT_LOWER, lo
        elif hi < math.inf:
            status[j], x[j] = _AT_UPPER, hi
        else:
            status[j], x[j] = _FREE_AT_ZERO, 0.0
    return status, x


class _SimplexCore:
    """Revised simplex on a fixed equality system with bounded variables."""

    def __init__(self, A: np.ndarray, b: np.ndarray, lb: np.ndarray, ub: np.ndarray):
        self.A = A
        self.b = b
        self.lb = lb
        self.ub = ub
        self.m, self.n = A.shape
        self.iterations = 0

    def run(
        self,
        c: np.ndarray,
        basis: np.ndarray,
        status: np.ndarray,
        x: np.ndarray,
        max_iter: int,
        forbidden: np.ndarray | None = None,
        budget=None,
    ) -> tuple[str, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Iterate to optimality; returns (result, basis, status, x, duals).

        ``forbidden`` marks columns (artificials in phase 2) that must not
        re-enter the basis.  ``budget`` (duck-typed, see
        :class:`repro.utils.budget.Budget`) is consulted every iteration
        so a deadline interrupts the solve within one pivot.
        """
        A, lb, ub, m = self.A, self.lb, self.ub, self.m
        degen_streak = 0
        y = np.zeros(m)
        for _ in range(max_iter):
            if budget is not None and budget.time_exceeded():
                return "time_limit", basis, status, x, y
            self.iterations += 1
            B = A[:, basis]
            try:
                lu = sla.lu_factor(B)
            except (ValueError, sla.LinAlgError):
                return "error", basis, status, x, y
            # primal values of basic variables
            rhs = self.b - A @ x + B @ x[basis]
            xb = sla.lu_solve(lu, rhs)
            x[basis] = xb
            # duals and pricing
            y = sla.lu_solve(lu, c[basis], trans=1)
            d = c - A.T @ y
            use_bland = degen_streak >= _DEGEN_STREAK_FOR_BLAND

            # vectorized pricing: per-column scores/directions as masked
            # array ops; argmax keeps the python loop's first-max-wins
            # (Dantzig) and first-eligible (Bland) tie-breaks exactly
            scores = np.zeros(self.n)
            dirs = np.zeros(self.n)
            lower_viol = (status == _AT_LOWER) & (d < -_PIVOT_TOL)
            upper_viol = (status == _AT_UPPER) & (d > _PIVOT_TOL)
            free_viol = (status == _FREE_AT_ZERO) & (np.abs(d) > _PIVOT_TOL)
            scores[lower_viol] = -d[lower_viol]
            dirs[lower_viol] = 1.0
            scores[upper_viol] = d[upper_viol]
            dirs[upper_viol] = -1.0
            scores[free_viol] = np.abs(d[free_viol])
            dirs[free_viol] = np.where(d[free_viol] < 0, 1.0, -1.0)
            if forbidden is not None:
                scores[forbidden] = 0.0
            eligible = scores > _PIVOT_TOL
            if not eligible.any():
                return "optimal", basis, status, x, y
            entering = int(np.argmax(eligible)) if use_bland else int(np.argmax(scores))
            direction = float(dirs[entering])

            # ratio test: entering moves by t*direction; basics move by
            # -t*direction*w where B w = A[:, entering]
            w = sla.lu_solve(lu, A[:, entering])
            t_max = ub[entering] - lb[entering] if status[entering] != _FREE_AT_ZERO else math.inf
            leaving = -1
            leave_to = _AT_LOWER
            # vectorized ratio computation (bound lookups + divisions as
            # array ops); the acceptance scan over the few finite
            # candidates stays sequential because t_max evolves in-order
            wd = w * direction
            xb_cur = x[basis]
            lbb = lb[basis]
            ubb = ub[basis]
            ratios = np.full(m, math.inf)
            dec = (wd > _PIVOT_TOL) & (lbb > -math.inf)  # basic falls to lower
            inc = (wd < -_PIVOT_TOL) & (ubb < math.inf)  # basic rises to upper
            ratios[dec] = (xb_cur[dec] - lbb[dec]) / wd[dec]
            ratios[inc] = (xb_cur[inc] - ubb[inc]) / wd[inc]
            targets = np.where(dec, _AT_LOWER, _AT_UPPER)
            for i in np.flatnonzero(ratios < math.inf).tolist():
                t = float(ratios[i])
                bi = basis[i]
                if t < t_max - _PIVOT_TOL or (
                    t < t_max + _PIVOT_TOL and (leaving < 0 or (use_bland and bi < basis[leaving]))
                ):
                    t_max, leaving, leave_to = max(t, 0.0), i, int(targets[i])
            if t_max == math.inf:
                return "unbounded", basis, status, x, y

            degen_streak = degen_streak + 1 if t_max <= _PIVOT_TOL else 0
            # apply the step
            x[basis] -= t_max * direction * w
            x[entering] += t_max * direction
            if leaving < 0:
                # bound flip: entering runs to its opposite bound
                status[entering] = _AT_UPPER if direction > 0 else _AT_LOWER
                x[entering] = ub[entering] if direction > 0 else lb[entering]
            else:
                out = basis[leaving]
                status[out] = leave_to
                x[out] = lb[out] if leave_to == _AT_LOWER else ub[out]
                basis[leaving] = entering
                status[entering] = _BASIC
        return "iteration_limit", basis, status, x, y


_LIMIT_STATUSES = {
    "iteration_limit": LPStatus.ITERATION_LIMIT,
    "time_limit": LPStatus.TIME_LIMIT,
    "error": LPStatus.ERROR,
}


def _abort(result: str, iterations: int) -> LPSolution:
    empty = np.zeros(0)
    return LPSolution(_LIMIT_STATUSES[result], empty, math.nan, empty, empty, iterations)


def solve_with_simplex(lp: LinearProgram, max_iter: int = 20000, budget=None) -> LPSolution:
    """Solve ``lp`` with the built-in revised simplex.

    Numerical failure (singular basis, infeasible final point) is
    reported as ``LPStatus.ERROR`` — never raised — so the failover
    chain above can classify and recover.
    """
    comp = _to_computational(lp)
    m, n_total = comp.A.shape
    n_struct = comp.n_structural
    status, x = _initial_point(comp)

    if m == 0:
        # box problem: the initial point already minimises each separable term
        # except where a cheaper bound exists.
        for j in range(n_total):
            cj = comp.c[j]
            if cj > 0 and comp.lb[j] > -math.inf:
                x[j] = comp.lb[j]
            elif cj < 0 and comp.ub[j] < math.inf:
                x[j] = comp.ub[j]
            elif cj != 0.0:
                return LPSolution(LPStatus.UNBOUNDED, np.zeros(0), math.nan, np.zeros(0), np.zeros(0))
        obj = float(comp.c @ x)
        return LPSolution(LPStatus.OPTIMAL, x[:n_struct], obj, np.zeros(0), comp.c[:n_struct].copy())

    # Phase 1: artificial columns giving an identity basis.
    resid = comp.b - comp.A @ x
    signs = np.where(resid >= 0, 1.0, -1.0)
    A1 = np.hstack([comp.A, np.diag(signs)])
    lb1 = np.concatenate([comp.lb, np.zeros(m)])
    ub1 = np.concatenate([comp.ub, np.full(m, math.inf)])
    c1 = np.concatenate([np.zeros(n_total), np.ones(m)])
    x1 = np.concatenate([x, np.abs(resid)])
    status1 = np.concatenate([status, np.full(m, _BASIC, dtype=np.int64)])
    basis = np.arange(n_total, n_total + m)

    core = _SimplexCore(A1, comp.b, lb1, ub1)
    result, basis, status1, x1, _ = core.run(c1, basis, status1, x1, max_iter, budget=budget)
    if result in _LIMIT_STATUSES:
        return _abort(result, core.iterations)
    phase1_obj = float(c1 @ x1)
    if phase1_obj > 1e-7:
        return LPSolution(LPStatus.INFEASIBLE, np.zeros(0), math.nan, np.zeros(0), np.zeros(0), core.iterations)

    # Phase 2: artificials pinned to zero and barred from entering.
    lb1[n_total:] = 0.0
    ub1[n_total:] = 0.0
    x1[n_total:] = np.clip(x1[n_total:], 0.0, 0.0)
    c2 = np.concatenate([comp.c, np.zeros(m)])
    forbidden = np.zeros(n_total + m, dtype=bool)
    forbidden[n_total:] = True
    for j in range(n_total, n_total + m):
        if status1[j] != _BASIC:
            status1[j] = _AT_LOWER
    result, basis, status1, x1, y = core.run(
        c2, basis, status1, x1, max_iter, forbidden=forbidden, budget=budget
    )
    if result in _LIMIT_STATUSES:
        return _abort(result, core.iterations)
    if result == "unbounded":
        return LPSolution(LPStatus.UNBOUNDED, np.zeros(0), math.nan, np.zeros(0), np.zeros(0), core.iterations)

    x_struct = x1[:n_struct]
    obj = float(comp.c[:n_struct] @ x_struct)
    # Row duals: the slack column of row i has c=0 and column -e_i, so its
    # reduced cost is y_i; the classical row dual equals y_i directly.
    duals = y.copy()
    c_orig, A_orig, _, _, _, _ = lp.to_arrays()
    reduced = c_orig - A_orig.T @ duals if lp.num_rows else c_orig.copy()
    if not lp.is_feasible(x_struct, tol=1e-6):
        return _abort("error", core.iterations)
    return LPSolution(LPStatus.OPTIMAL, x_struct.copy(), obj, duals, reduced, core.iterations)
