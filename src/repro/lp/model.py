"""Linear program container shared by all backends.

An LP is ``min c'x  s.t.  lhs <= A x <= rhs,  lb <= x <= ub`` with
range rows (finite lhs *and* rhs) permitted. Rows and columns are added
incrementally — the cutting loop in :mod:`repro.cip` appends rows between
re-solves — and converted to dense arrays on demand.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError

INF = math.inf


class LPStatus(enum.Enum):
    """Termination status of an LP solve.

    Both backends report through this one enum — numerical failure is a
    status (ERROR), never a backend-specific exception, so callers can
    classify and recover uniformly.
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


@dataclass(frozen=True)
class LPAttempt:
    """One link of a failover chain: which backend, which recovery
    strategy (``plain`` / ``scaled`` / ``perturbed`` / ``switched``),
    and how that attempt ended."""

    backend: str
    strategy: str
    status: LPStatus


@dataclass
class LPSolution:
    """Result of one LP solve.

    Attributes
    ----------
    status:
        Termination status; arrays below are only meaningful for OPTIMAL.
    x:
        Primal solution, one entry per column.
    objective:
        Objective value ``c'x``.
    duals:
        One dual multiplier per row (sign convention: for a binding
        ``a'x >= lhs`` row of a minimisation problem the dual is >= 0,
        for a binding ``a'x <= rhs`` row it is <= 0).
    reduced_costs:
        One reduced cost per column, ``c - A' duals``.
    iterations:
        Simplex iterations (or backend-reported iteration count); when a
        failover chain ran, the sum over all attempts.
    attempts:
        The failover path taken (empty for a plain single-backend solve
        that needed no recovery).
    """

    status: LPStatus
    x: np.ndarray
    objective: float
    duals: np.ndarray
    reduced_costs: np.ndarray
    iterations: int = 0
    attempts: list[LPAttempt] = field(default_factory=list)


@dataclass
class _Row:
    coefs: dict[int, float]
    lhs: float
    rhs: float
    name: str


@dataclass
class _Col:
    lb: float
    ub: float
    obj: float
    name: str


@dataclass
class LinearProgram:
    """Incrementally built LP in general row form.

    Examples
    --------
    >>> lp = LinearProgram()
    >>> x = lp.add_variable(lb=0.0, ub=10.0, obj=-1.0, name="x")
    >>> y = lp.add_variable(lb=0.0, ub=10.0, obj=-2.0, name="y")
    >>> _ = lp.add_row({x: 1.0, y: 1.0}, lhs=-math.inf, rhs=6.0)
    >>> lp.num_cols, lp.num_rows
    (2, 1)
    """

    _cols: list[_Col] = field(default_factory=list)
    _rows: list[_Row] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    def add_variable(
        self,
        lb: float = 0.0,
        ub: float = INF,
        obj: float = 0.0,
        name: str = "",
    ) -> int:
        """Add a column; returns its index."""
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        self._cols.append(_Col(float(lb), float(ub), float(obj), name))
        return len(self._cols) - 1

    def add_row(
        self,
        coefs: dict[int, float],
        lhs: float = -INF,
        rhs: float = INF,
        name: str = "",
    ) -> int:
        """Add a row ``lhs <= sum coefs[j] * x_j <= rhs``; returns its index."""
        if lhs > rhs:
            raise ModelError(f"row {name!r}: lhs {lhs} > rhs {rhs}")
        n = len(self._cols)
        for j in coefs:
            if not 0 <= j < n:
                raise ModelError(f"row {name!r} references unknown column {j}")
        self._rows.append(_Row(dict(coefs), float(lhs), float(rhs), name))
        return len(self._rows) - 1

    def set_objective(self, col: int, coef: float) -> None:
        """Overwrite the objective coefficient of one column."""
        self._cols[col].obj = float(coef)

    def set_bounds(self, col: int, lb: float, ub: float) -> None:
        """Overwrite the bounds of one column."""
        if lb > ub:
            raise ModelError(f"column {col}: lb {lb} > ub {ub}")
        self._cols[col].lb = float(lb)
        self._cols[col].ub = float(ub)

    def get_bounds(self, col: int) -> tuple[float, float]:
        c = self._cols[col]
        return c.lb, c.ub

    # -- inspection --------------------------------------------------------

    @property
    def num_cols(self) -> int:
        return len(self._cols)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def to_arrays(self) -> tuple[np.ndarray, ...]:
        """Return dense ``(c, A, lhs, rhs, lb, ub)``."""
        n, m = self.num_cols, self.num_rows
        c = np.array([col.obj for col in self._cols], dtype=float)
        lb = np.array([col.lb for col in self._cols], dtype=float)
        ub = np.array([col.ub for col in self._cols], dtype=float)
        A = np.zeros((m, n), dtype=float)
        lhs = np.empty(m, dtype=float)
        rhs = np.empty(m, dtype=float)
        for i, row in enumerate(self._rows):
            lhs[i] = row.lhs
            rhs[i] = row.rhs
            for j, v in row.coefs.items():
                A[i, j] = v
        return c, A, lhs, rhs, lb, ub

    def row_activity(self, x: np.ndarray, row: int) -> float:
        """Evaluate row ``row`` at point ``x``."""
        r = self._rows[row]
        return float(sum(v * x[j] for j, v in r.coefs.items()))

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check primal feasibility of ``x`` within ``tol``."""
        for j, col in enumerate(self._cols):
            if x[j] < col.lb - tol or x[j] > col.ub + tol:
                return False
        for i, row in enumerate(self._rows):
            act = self.row_activity(x, i)
            if act < row.lhs - tol or act > row.rhs + tol:
                return False
        return True
