"""HiGHS backend via ``scipy.optimize.linprog``.

Plays the role Cplex/SoPlex play in the paper: the fast production LP
oracle under the branch-and-cut loop. Range rows are split into a pair of
one-sided rows; their duals are recombined so callers always see one dual
per original row.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import LinearProgram, LPSolution, LPStatus

_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve_with_scipy(lp: LinearProgram, budget=None) -> LPSolution:
    """Solve ``lp`` with HiGHS; returns primal, row duals and reduced costs.

    ``budget`` (duck-typed :class:`repro.utils.budget.Budget`) maps onto
    HiGHS's native ``time_limit`` option, so a deadline interrupts the
    solve inside the backend.  Backend failure (status 4) is reported as
    ``LPStatus.ERROR`` — never raised.
    """
    c, A, lhs, rhs, lb, ub = lp.to_arrays()
    n, m = lp.num_cols, lp.num_rows

    # Split general rows into <= rows (A_ub) and == rows (A_eq). Track, per
    # original row, where its dual contributions live.
    ub_rows: list[np.ndarray] = []
    ub_rhs: list[float] = []
    eq_rows: list[np.ndarray] = []
    eq_rhs: list[float] = []
    # (kind, index, sign): dual(orig) += sign * marginal[kind][index]
    dual_sources: list[list[tuple[str, int, float]]] = [[] for _ in range(m)]

    for i in range(m):
        lo, hi = lhs[i], rhs[i]
        if lo == hi:
            eq_rows.append(A[i])
            eq_rhs.append(hi)
            dual_sources[i].append(("eq", len(eq_rhs) - 1, 1.0))
            continue
        if hi < math.inf:
            ub_rows.append(A[i])
            ub_rhs.append(hi)
            dual_sources[i].append(("ub", len(ub_rhs) - 1, 1.0))
        if lo > -math.inf:
            ub_rows.append(-A[i])
            ub_rhs.append(-lo)
            dual_sources[i].append(("ub", len(ub_rhs) - 1, -1.0))

    A_ub = np.asarray(ub_rows) if ub_rows else None
    b_ub = np.asarray(ub_rhs) if ub_rhs else None
    A_eq = np.asarray(eq_rows) if eq_rows else None
    b_eq = np.asarray(eq_rhs) if eq_rhs else None
    bounds = [(None if math.isinf(lb[j]) else lb[j], None if math.isinf(ub[j]) else ub[j]) for j in range(n)]

    options = None
    if budget is not None and budget.has_deadline:
        remaining = budget.remaining_time()
        if remaining <= 0.0:
            empty = np.zeros(0)
            return LPSolution(LPStatus.TIME_LIMIT, empty, math.nan, empty, empty, 0)
        options = {"time_limit": remaining}

    res = linprog(
        c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds, method="highs", options=options
    )
    status = _STATUS_MAP.get(res.status, LPStatus.ERROR)
    if status is LPStatus.ITERATION_LIMIT and budget is not None and budget.time_exceeded():
        # linprog reports both the iteration cap and the time limit as
        # status 1; disambiguate via the budget clock.
        status = LPStatus.TIME_LIMIT
    if status is not LPStatus.OPTIMAL:
        empty = np.zeros(0)
        return LPSolution(status, empty, math.nan, empty, empty, int(res.nit or 0))

    x = np.asarray(res.x, dtype=float)
    duals = np.zeros(m)
    ub_marg = np.asarray(res.ineqlin.marginals) if ub_rows else np.zeros(0)
    eq_marg = np.asarray(res.eqlin.marginals) if eq_rows else np.zeros(0)
    for i, sources in enumerate(dual_sources):
        for kind, k, sign in sources:
            # scipy marginals d(obj)/d(rhs) coincide with the classical y
            # of rc = c - A'y for the transformed <= / == rows; the sign
            # factor undoes the row negation applied for lhs-rows.
            marg = ub_marg[k] if kind == "ub" else eq_marg[k]
            duals[i] += sign * marg
    reduced = c - A.T @ duals if m else c.copy()
    return LPSolution(LPStatus.OPTIMAL, x, float(res.fun), duals, reduced, int(res.nit or 0))
