"""repro — parallel combinatorial optimization solvers the easy way.

A Python reproduction of the ug[SCIP-*,*] computational study (Shinano,
Rehfeldt, Gally; ZIB-Report 19-14 / IPDPS 2019): a CIP branch-and-cut
framework (:mod:`repro.cip`), an LP substrate (:mod:`repro.lp`), the
SCIP-Jack-style Steiner tree solver (:mod:`repro.steiner`), the
SCIP-SDP-style MISDP solver (:mod:`repro.sdp`), the UG parallelization
framework (:mod:`repro.ug`) and the <200-line application glue
(:mod:`repro.apps`).

Entry points:

>>> from repro.steiner import SteinerSolver, hypercube_instance
>>> from repro.apps.stp_plugins import SteinerUserPlugins
>>> from repro.ug import ug

See README.md for a tour, DESIGN.md for the architecture and
EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
