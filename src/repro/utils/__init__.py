"""Shared utilities: tolerances, statistics, RNG management, timing, budgets."""

from repro.utils.tolerances import Tolerances, DEFAULT_TOL
from repro.utils.stats import shifted_geometric_mean, arithmetic_mean
from repro.utils.rng import make_rng, spawn_seeds
from repro.utils.timing import Stopwatch
from repro.utils.budget import Budget

__all__ = [
    "Tolerances",
    "DEFAULT_TOL",
    "shifted_geometric_mean",
    "arithmetic_mean",
    "make_rng",
    "spawn_seeds",
    "Stopwatch",
    "Budget",
]
