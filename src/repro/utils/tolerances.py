"""Central numerical tolerances.

All solver components share a single :class:`Tolerances` instance so a
user tightening feasibility once tightens it everywhere — mirroring
SCIP's ``numerics/*`` parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Tolerances:
    """Numerical tolerances used across LP, CIP, Steiner and SDP code.

    Attributes
    ----------
    eps:
        Absolute zero tolerance for coefficient comparisons.
    feas:
        Constraint feasibility tolerance.
    integrality:
        Maximum distance from an integer for a value to count as integral.
    optimality:
        Relative gap below which a node/problem counts as solved.
    dual_feas:
        Dual feasibility tolerance (reduced costs, SDP residuals).
    """

    eps: float = 1e-9
    feas: float = 1e-6
    integrality: float = 1e-6
    optimality: float = 1e-6
    dual_feas: float = 1e-6

    def is_integral(self, value: float) -> bool:
        """Return True if ``value`` is within ``integrality`` of an integer."""
        return abs(value - round(value)) <= self.integrality

    def is_zero(self, value: float) -> bool:
        """Return True if ``value`` is within ``eps`` of zero."""
        return abs(value) <= self.eps

    def rel_gap(self, primal: float, dual: float) -> float:
        """Relative primal/dual gap, using SCIP's |primal - dual| / max(|primal|, |dual|, 1).

        Bounds on opposite sides of zero (or an infinite bound) give an
        infinite gap, matching ``UGStatistics``: the relative formula
        would otherwise report a bogus finite value like "100%".
        """
        if math.isinf(primal) or math.isinf(dual) or primal * dual < 0:
            return math.inf
        return abs(primal - dual) / max(abs(primal), abs(dual), 1.0)


DEFAULT_TOL = Tolerances()
