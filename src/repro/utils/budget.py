"""Shared solve budget: deadline, node and soft-memory limits.

SCIP honors ``limits/time`` *inside* long-running components (the LP is
interrupted mid-solve, not merely between nodes); this module provides
the equivalent primitive for the whole kernel.  One :class:`Budget` is
threaded from :meth:`repro.cip.solver.CIPSolver.solve` down into the
inner loops — simplex iterations, ADMM iterations, the cut/heuristic
rounds of node processing — so a deadline is honored within one
iteration of whatever is currently running.

Design notes:

* The clock is injectable (tests drive a fake clock; production uses
  ``time.perf_counter``).  An unlimited budget never consults the clock,
  so SimEngine runs without time limits stay bit-identical.
* The soft-memory limit is advisory: crossing it does not stop the
  solve, it triggers graceful degradation (cut-pool shrink, heuristic
  throttling) in the CIP loop.  The RSS probe is injectable for the same
  determinism reason.
"""

from __future__ import annotations

import math
import time
from typing import Callable


def _default_rss_mb() -> float:
    """Resident set size in MiB (0.0 when the probe is unavailable)."""
    try:
        import resource

        kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS
    return kb / 1024.0 if kb < 1 << 40 else kb / (1024.0 * 1024.0)


class Budget:
    """Deadline + node + soft-memory budget shared by nested solver loops.

    ``time_limit`` is seconds from :meth:`start`; ``node_limit`` caps
    branch-and-bound nodes; ``soft_memory_limit_mb`` marks the advisory
    memory ceiling.  All limits default to unlimited, in which case every
    check is a cheap constant-time no-op.
    """

    __slots__ = (
        "time_limit",
        "node_limit",
        "soft_memory_limit_mb",
        "clock",
        "rss_mb",
        "_start",
    )

    def __init__(
        self,
        time_limit: float = math.inf,
        node_limit: int | None = None,
        soft_memory_limit_mb: float = math.inf,
        clock: Callable[[], float] | None = None,
        rss_mb: Callable[[], float] | None = None,
    ) -> None:
        self.time_limit = float(time_limit)
        self.node_limit = node_limit
        self.soft_memory_limit_mb = float(soft_memory_limit_mb)
        self.clock = clock or time.perf_counter
        self.rss_mb = rss_mb or _default_rss_mb
        self._start: float | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Budget":
        """(Re)anchor the deadline at the current clock reading."""
        self._start = self.clock() if self.has_deadline else 0.0
        return self

    @property
    def started(self) -> bool:
        return self._start is not None

    @property
    def has_deadline(self) -> bool:
        return math.isfinite(self.time_limit)

    @property
    def limited(self) -> bool:
        """True when any of the three limits is finite."""
        return (
            self.has_deadline
            or self.node_limit is not None
            or math.isfinite(self.soft_memory_limit_mb)
        )

    # -- time -----------------------------------------------------------------

    def elapsed(self) -> float:
        if not self.has_deadline or self._start is None:
            return 0.0
        return self.clock() - self._start

    def remaining_time(self) -> float:
        """Seconds left before the deadline (inf when none is set)."""
        if not self.has_deadline:
            return math.inf
        return self.time_limit - self.elapsed()

    def time_exceeded(self) -> bool:
        """True once the deadline passed.  Constant-time when unlimited."""
        if not self.has_deadline:
            return False
        return self.elapsed() >= self.time_limit

    # -- nodes ----------------------------------------------------------------

    def nodes_exceeded(self, nodes: int) -> bool:
        return self.node_limit is not None and nodes >= self.node_limit

    # -- memory ---------------------------------------------------------------

    def memory_pressure(self) -> bool:
        """Advisory: True while RSS sits above the soft ceiling."""
        if not math.isfinite(self.soft_memory_limit_mb):
            return False
        return self.rss_mb() >= self.soft_memory_limit_mb
