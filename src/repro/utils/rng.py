"""Deterministic random-number management.

Every stochastic component of the library (instance generators, racing
permutations, randomized rounding) receives an explicit seed; this module
centralises the ``numpy`` Generator construction and seed spawning so runs
are bit-reproducible.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for ``seed``; pass through existing Generators."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from a master seed.

    Uses ``SeedSequence.spawn`` so children are statistically independent
    and stable across numpy versions.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(c.generate_state(1)[0]) for c in children]
