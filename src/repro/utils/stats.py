"""Aggregate statistics used by the benchmark harness.

The paper reports solution times as *shifted geometric means* with shift
``s = 10`` (Table 4); this module provides that exact aggregate.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def shifted_geometric_mean(values: Iterable[float], shift: float = 10.0) -> float:
    """Shifted geometric mean ``(prod (v_i + s))^(1/n) - s``.

    The standard aggregate of the MIP computational literature: robust to
    a few tiny times dominating a plain geometric mean.

    Parameters
    ----------
    values:
        Non-negative observations (e.g. solve times in seconds).
    shift:
        The shift ``s``; the paper uses 10.

    Raises
    ------
    ValueError
        If no values are given or any shifted value is non-positive.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("shifted_geometric_mean requires at least one value")
    shifted = arr + shift
    if np.any(shifted <= 0.0):
        raise ValueError("all values must satisfy value + shift > 0")
    return float(np.exp(np.mean(np.log(shifted))) - shift)


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean, raising on empty input for symmetry."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("arithmetic_mean requires at least one value")
    return float(arr.mean())
