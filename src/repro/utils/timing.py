"""Wall-clock timing helper used by solvers and benchmarks."""

from __future__ import annotations

import time


class Stopwatch:
    """A resumable stopwatch.

    ``Stopwatch()`` starts stopped; :meth:`start`/:meth:`stop` accumulate
    elapsed wall-clock time into :attr:`elapsed`.
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stop(self) -> None:
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._accumulated + extra

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
