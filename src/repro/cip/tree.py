"""Open-node storage with best-bound and DFS/plunging selection."""

from __future__ import annotations

import heapq
import itertools
import math

from repro.cip.node import Node


class NodeTree:
    """Priority queue over open nodes.

    ``bestbound`` pops the node with the smallest lower bound; ``dfs``
    pops the deepest, most recently created node. Plunging (bounded-depth
    DFS after a best-bound pick) is handled by the solver, which may push
    children and immediately re-pop.
    """

    def __init__(self, selection: str = "bestbound") -> None:
        if selection not in ("bestbound", "dfs"):
            raise ValueError(f"unknown node selection {selection!r}")
        self.selection = selection
        self._heap: list[tuple[tuple[float, ...], int, Node]] = []
        self._counter = itertools.count()
        self._size = 0

    def _key(self, node: Node, tick: int) -> tuple[float, ...]:
        if self.selection == "bestbound":
            return (node.lower_bound, float(node.depth), float(tick))
        return (-float(node.depth), -float(tick))

    def push(self, node: Node) -> None:
        tick = next(self._counter)
        heapq.heappush(self._heap, (self._key(node, tick), tick, node))
        self._size += 1

    def pop(self) -> Node:
        _, _, node = heapq.heappop(self._heap)
        self._size -= 1
        return node

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def best_bound(self) -> float:
        """Smallest lower bound among open nodes (inf if empty)."""
        if not self._heap:
            return math.inf
        return min(node.lower_bound for _, _, node in self._heap)

    def prune_worse_than(self, cutoff: float) -> int:
        """Drop all nodes whose bound is >= cutoff; returns how many."""
        keep = [(k, t, n) for k, t, n in self._heap if n.lower_bound < cutoff]
        dropped = len(self._heap) - len(keep)
        if dropped:
            self._heap = keep
            heapq.heapify(self._heap)
            self._size = len(keep)
        return dropped

    def extract_heaviest(self) -> Node | None:
        """Remove and return the 'heaviest' open node for load balancing.

        UG transfers nodes expected to generate large subtrees; the best
        available proxy is the shallowest node with the best (smallest)
        lower bound.
        """
        if not self._heap:
            return None
        best_i = min(
            range(len(self._heap)),
            key=lambda i: (self._heap[i][2].depth, self._heap[i][2].lower_bound),
        )
        _, _, node = self._heap.pop(best_i)
        heapq.heapify(self._heap)
        self._size -= 1
        return node

    def nodes(self) -> list[Node]:
        """Snapshot of all open nodes (unspecified order)."""
        return [n for _, _, n in self._heap]
