"""Branch-and-bound node records.

A node stores *cumulative* bound changes relative to the presolved root
and a cumulative problem-specific ``local_data`` record (e.g. the Steiner
vertex decisions). Keeping the full delta per node costs memory but makes
nodes self-contained — which is exactly what UG needs to extract a node
into a solver-independent :class:`~repro.ug.para_node.ParaNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Node:
    """One open subproblem of the branch-and-bound tree.

    ``local_rows`` are constraint-branching rows (cumulative): linear
    inequalities valid only in this subtree, appended to the node LP —
    this is the CIP-side half of the constraint-branching support that
    ug-0.8.6 added for SCIP-Jack.
    """

    node_id: int
    parent_id: int
    depth: int
    lower_bound: float
    bound_changes: dict[int, tuple[float, float]] = field(default_factory=dict)
    local_data: dict[str, Any] = field(default_factory=dict)
    local_rows: tuple[Any, ...] = ()

    def child(
        self,
        node_id: int,
        bound_changes: dict[int, tuple[float, float]],
        local_update: dict[str, Any],
        estimate: float | None,
        local_rows: tuple[Any, ...] = (),
    ) -> "Node":
        """Create a child inheriting this node's cumulative state."""
        merged_bounds = dict(self.bound_changes)
        for j, (lo, hi) in bound_changes.items():
            if j in merged_bounds:
                olo, ohi = merged_bounds[j]
                merged_bounds[j] = (max(olo, lo), min(ohi, hi))
            else:
                merged_bounds[j] = (lo, hi)
        merged_local = _merge_local(self.local_data, local_update)
        est = self.lower_bound if estimate is None else max(estimate, self.lower_bound)
        return Node(
            node_id,
            self.node_id,
            self.depth + 1,
            est,
            merged_bounds,
            merged_local,
            self.local_rows + tuple(local_rows),
        )


def _merge_local(base: dict[str, Any], update: dict[str, Any]) -> dict[str, Any]:
    """Merge a local-data update: tuples/lists append, scalars replace."""
    merged = dict(base)
    for key, value in update.items():
        if key in merged and isinstance(merged[key], tuple) and isinstance(value, tuple):
            merged[key] = merged[key] + value
        elif key in merged and isinstance(merged[key], list) and isinstance(value, list):
            merged[key] = merged[key] + value
        else:
            merged[key] = value
    return merged
