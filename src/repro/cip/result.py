"""Solve outcome types."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    GAP_LIMIT = "gap_limit"
    INTERRUPTED = "interrupted"
    # an essential plugin (relaxator, last branching rule) failed beyond
    # recovery: the solve stopped early but its dual bound is still valid
    NUMERICAL_ERROR = "numerical_error"
    UNKNOWN = "unknown"


@dataclass
class Solution:
    """A primal solution.

    ``value`` is in *internal* (minimisation) units; ``data`` is the
    solver-independent payload UG ships between ranks — for pure
    MIPs the variable vector, for Steiner problems the original-graph
    edge set.
    """

    value: float
    x: np.ndarray | None = None
    data: Any = None

    def external_value(self, sense: int = 1) -> float:
        return sense * self.value


@dataclass
class SolveResult:
    """Everything a solve returns."""

    status: SolveStatus
    best_solution: Solution | None
    dual_bound: float
    nodes_processed: int
    stats: "Any" = None

    @property
    def objective(self) -> float:
        if self.best_solution is None:
            return math.inf
        return self.best_solution.value

    @property
    def gap(self) -> float:
        if self.best_solution is None:
            return math.inf
        p, d = self.best_solution.value, self.dual_bound
        if math.isinf(d):
            return math.inf
        if p * d < 0:
            # SCIP convention (same as UGStatistics): bounds on opposite
            # sides of zero give an infinite gap — the relative formula
            # would report a bogus finite value
            return math.inf
        return abs(p - d) / max(abs(p), abs(d), 1.0)


@dataclass
class SolveStats:
    """Counters accumulated during a solve; consumed by UG and benchmarks."""

    nodes_processed: int = 0
    nodes_created: int = 0
    nodes_pruned: int = 0
    lp_solves: int = 0
    lp_iterations: int = 0
    cuts_added: int = 0
    sepa_rounds: int = 0
    propagation_tightenings: int = 0
    heuristic_solutions: int = 0
    presolve_reductions: int = 0
    root_work: float = 0.0
    total_work: float = 0.0
    root_bound: float = -math.inf
    extra: dict[str, float] = field(default_factory=dict)

    def bump(self, key: str, amount: float = 1.0) -> None:
        self.extra[key] = self.extra.get(key, 0.0) + amount
