"""Ordered plugin registry — the refactored spine of the CIP kernel.

Historically :class:`~repro.cip.solver.CIPSolver` held one plain python
list per plugin kind.  That shape cannot express what a modern kernel
needs: deterministic ordering with *position hooks* (a conflict-pool
propagator must consult learned clauses before the generic propagators
re-derive them), per-kind whitelists that UG racing varies per rank
(generalizing the PR-9 ``heuristic_portfolio``), and quarantine-aware
iteration so containment lives in one place instead of at every call
site.

The registry stores, per kind, an ordered list of entries sorted by
``(position, -priority, registration tick)`` — ``position="front"``
entries run before everything, ``"back"`` after everything, and plain
registrations order by plugin priority with registration order as the
deterministic tie-break (matching the old ``sort(key=-priority)``
stable-sort behaviour exactly).

:class:`KindView` keeps the historical mutable attributes
(``solver.heuristics.append(...)``, ``solver.branching_rules.clear()``)
working: it is a live list-like view backed by the registry.

The module also owns the **plugin-name catalog**: every concrete
:class:`~repro.cip.plugins.Plugin` subclass that declares a ``name``
class attribute is recorded at class-definition time (via
``Plugin.__init_subclass__``), and :func:`validate_plugin_names` checks
user-supplied whitelists against it so a typo fails at ``ParamSet``
construction instead of silently disabling every plugin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import ModelError, PluginError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cip.plugins import Plugin, Relaxator
    from repro.cip.quarantine import PluginQuarantine

#: every plugin kind the kernel iterates; "relaxator" is a singleton slot
PLUGIN_KINDS = (
    "presolver",
    "propagator",
    "separator",
    "heuristic",
    "branching",
    "conshdlr",
    "event",
    "relaxator",
)

#: kinds a ParamSet whitelist may restrict.  Constraint handlers and the
#: relaxator are deliberately excluded: they own feasibility (``check``)
#: and bounding semantics, so filtering them out would silently change
#: what problem is being solved.
WHITELISTABLE_KINDS = ("presolver", "propagator", "separator", "heuristic", "branching", "event")

_POSITION_RANK = {"front": 0, None: 1, "back": 2}


# -- plugin-name catalog ----------------------------------------------------

_KNOWN_PLUGIN_NAMES: set[str] = set()
_CATALOG_LOADED = False

#: modules whose import registers every first-party plugin class with the
#: catalog (via ``Plugin.__init_subclass__``); imported lazily the first
#: time a whitelist needs validating, so plain kernel use pays nothing
_CATALOG_MODULES = (
    "repro.cip.propagation",
    "repro.cip.branching",
    "repro.cip.heuristics",
    "repro.cip.conflict",
    "repro.cip.symmetry",
    "repro.steiner.branching",
    "repro.steiner.solver",
    "repro.steiner.separators",
    "repro.steiner.prize_collecting",
    "repro.sdp.eigcuts",
    "repro.sdp.branching",
    "repro.sdp.propagators",
    "repro.sdp.relaxator",
    "repro.sdp.heuristics",
)


def note_plugin_name(name: object) -> None:
    """Record a plugin name in the catalog (called from class creation)."""
    if isinstance(name, str) and name and name != "plugin":
        _KNOWN_PLUGIN_NAMES.add(name)


def ensure_plugin_catalog() -> None:
    """Import the first-party plugin modules once so the catalog is full."""
    global _CATALOG_LOADED
    if _CATALOG_LOADED:
        return
    _CATALOG_LOADED = True
    import importlib

    for mod in _CATALOG_MODULES:
        try:
            importlib.import_module(mod)
        except ImportError:  # pragma: no cover - optional app module absent
            pass


def known_plugin_names() -> frozenset[str]:
    ensure_plugin_catalog()
    return frozenset(_KNOWN_PLUGIN_NAMES)


def validate_plugin_names(names: Iterable[str], where: str) -> None:
    """Raise :class:`ModelError` when a name is not in the catalog.

    The catalog is populated from class definitions, so any imported
    ``Plugin`` subclass with a ``name`` class attribute — first-party or
    test-local — validates.  Dynamically named instances must register
    their name via :func:`note_plugin_name` before a ``ParamSet``
    whitelists them.
    """
    ensure_plugin_catalog()
    unknown = sorted({str(n) for n in names} - _KNOWN_PLUGIN_NAMES)
    if unknown:
        raise ModelError(
            f"{where} names unknown plugin(s) {unknown}; known plugins: "
            f"{sorted(_KNOWN_PLUGIN_NAMES)}"
        )


# -- the registry -----------------------------------------------------------


@dataclass
class _Entry:
    plugin: "Plugin"
    position: str | None
    tick: int

    def sort_key(self) -> tuple[int, int, int]:
        return (_POSITION_RANK[self.position], -self.plugin.priority, self.tick)


class PluginRegistry:
    """Ordered, kind-partitioned plugin store with filtered iteration."""

    def __init__(self) -> None:
        self._entries: dict[str, list[_Entry]] = {kind: [] for kind in PLUGIN_KINDS}
        self._tick = 0

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in PLUGIN_KINDS:
            raise PluginError(f"unknown plugin kind {kind!r}; choose from {PLUGIN_KINDS}")

    def register(self, kind: str, plugin: "Plugin", position: str | None = None) -> None:
        """Add one plugin; ordering is (position, -priority, arrival)."""
        self._check_kind(kind)
        if position not in _POSITION_RANK:
            raise PluginError(f"unknown position {position!r}; use 'front', 'back' or None")
        entries = self._entries[kind]
        if any(e.plugin.name == plugin.name for e in entries):
            raise PluginError(f"plugin {plugin.name!r} registered twice")
        if kind == "relaxator" and entries:
            raise PluginError("a relaxator is already installed")
        note_plugin_name(getattr(plugin, "name", None))
        entries.append(_Entry(plugin, position, self._tick))
        self._tick += 1
        entries.sort(key=_Entry.sort_key)

    def remove(self, kind: str, name: str) -> bool:
        """Drop the named plugin; True when something was removed."""
        self._check_kind(kind)
        entries = self._entries[kind]
        kept = [e for e in entries if e.plugin.name != name]
        removed = len(kept) != len(entries)
        self._entries[kind] = kept
        return removed

    def clear(self, kind: str) -> None:
        self._check_kind(kind)
        self._entries[kind] = []

    def plugins(self, kind: str) -> list["Plugin"]:
        """All plugins of a kind in execution order (no filtering)."""
        self._check_kind(kind)
        return [e.plugin for e in self._entries[kind]]

    def get(self, kind: str, name: str) -> "Plugin | None":
        self._check_kind(kind)
        for e in self._entries[kind]:
            if e.plugin.name == name:
                return e.plugin
        return None

    def names(self, kind: str) -> tuple[str, ...]:
        return tuple(p.name for p in self.plugins(kind))

    @property
    def relaxator(self) -> "Relaxator | None":
        entries = self._entries["relaxator"]
        return entries[0].plugin if entries else None  # type: ignore[return-value]

    def active(
        self,
        kind: str,
        quarantine: "PluginQuarantine | None" = None,
        whitelist: Sequence[str] | None = None,
    ) -> list["Plugin"]:
        """Execution-ordered plugins surviving whitelist + quarantine.

        ``whitelist=None`` means "no restriction"; an empty sequence
        disables the whole kind (matching ``heuristic_portfolio``
        semantics).
        """
        out = []
        for plugin in self.plugins(kind):
            if whitelist is not None and plugin.name not in whitelist:
                continue
            if quarantine is not None and quarantine.is_quarantined(plugin.name):
                continue
            out.append(plugin)
        return out

    def spec(self) -> dict[str, list[str]]:
        """Wire-codec-safe description: kind -> ordered plugin names.

        Plain dict of lists of strings, so it passes through the UG JSON
        wire codec untouched — the LoadCoordinator traces each rank's
        effective plugin composition from this.
        """
        return {kind: list(self.names(kind)) for kind in PLUGIN_KINDS if self._entries[kind]}


class KindView:
    """Live list-like view of one registry kind (back-compat surface).

    Historical call sites treat ``solver.heuristics`` & co. as plain
    lists: they ``append``/``extend``/``clear``/iterate/index them.  This
    view forwards all of that to the registry so there is exactly one
    source of truth for ordering and duplicates.
    """

    __slots__ = ("_registry", "_kind")

    def __init__(self, registry: PluginRegistry, kind: str) -> None:
        self._registry = registry
        self._kind = kind

    def append(self, plugin: "Plugin") -> None:
        self._registry.register(self._kind, plugin)

    def extend(self, plugins: Iterable["Plugin"]) -> None:
        for p in plugins:
            self.append(p)

    def insert(self, index: int, plugin: "Plugin") -> None:
        # registry order is semantic, not positional: front/back hooks are
        # the supported way to force placement
        self._registry.register(self._kind, plugin, position="front" if index == 0 else None)

    def remove(self, plugin: "Plugin") -> None:
        if not self._registry.remove(self._kind, plugin.name):
            raise ValueError(f"{plugin.name!r} not registered")

    def clear(self) -> None:
        self._registry.clear(self._kind)

    def __iter__(self) -> Iterator["Plugin"]:
        return iter(self._registry.plugins(self._kind))

    def __len__(self) -> int:
        return len(self._registry.plugins(self._kind))

    def __getitem__(self, index):
        return self._registry.plugins(self._kind)[index]

    def __contains__(self, plugin: object) -> bool:
        plugins = self._registry.plugins(self._kind)
        return plugin in plugins or any(getattr(plugin, "name", None) == p.name for p in plugins)

    def __bool__(self) -> bool:
        return bool(self._registry.plugins(self._kind))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KindView {self._kind}: {list(self._registry.names(self._kind))}>"
