"""Tree-size estimation and estimation-driven restart policy.

The estimator is the leaf-frequency/weighted-backtrack family (Knuth's
online estimator as used by SCIP's restart machinery): a leaf observed
at depth ``d`` carries probe weight ``2^-d`` — in a complete binary tree
the weights of all leaves sum to exactly 1, so

    estimated total leaves = leaves seen / sum of seen leaf weights

is an unbiased projection of how many leaves the finished tree will
have.  Internal nodes of a binary tree add ``leaves - 1``, giving the
total-node estimate.

:class:`RestartManager` turns the estimate into an in-solve restart
decision: once at least ``restart_min_nodes`` nodes are processed in
the current tree and the projected total is ``restart_node_factor``
times what has been processed, the tree is deemed to be blowing up and
a root restart (carrying incumbent, cuts, learned conflicts and the
proven root bound) is worth the re-exploration cost.  At most
``restart_max`` restarts are performed per solve.
"""

from __future__ import annotations

from dataclasses import dataclass

_MAX_DEPTH = 60  # 2^-60 underflows usefulness; deeper leaves count as this


class TreeSizeEstimator:
    """Online leaf-frequency estimator of the final tree size."""

    def __init__(self) -> None:
        self.leaves_seen = 0
        self.internal_seen = 0
        self._weight_sum = 0.0

    def reset(self) -> None:
        self.leaves_seen = 0
        self.internal_seen = 0
        self._weight_sum = 0.0

    def observe_leaf(self, depth: int) -> None:
        """A node resolved without children (pruned/infeasible/solution)."""
        self.leaves_seen += 1
        self._weight_sum += 2.0 ** -min(max(depth, 0), _MAX_DEPTH)

    def observe_internal(self, depth: int) -> None:
        self.internal_seen += 1

    def estimate_total_leaves(self) -> float | None:
        if self.leaves_seen == 0 or self._weight_sum <= 0.0:
            return None
        return self.leaves_seen / self._weight_sum

    def estimate_total_nodes(self) -> float | None:
        leaves = self.estimate_total_leaves()
        if leaves is None:
            return None
        return 2.0 * leaves - 1.0

    def progress(self) -> float:
        """Tree-weight progress: fraction of the tree already resolved.

        In a binary tree the ``2^-d`` weights of *all* leaves sum to
        exactly 1, so the weights of the leaves resolved so far measure
        how much of the tree is done — the SCIP tree-weight metric.
        Unlike the leaf-frequency projection this is monotone and does
        not care in which order the search visits leaves.
        """
        return self._weight_sum

    def estimate_by_progress(self, nodes_in_tree: int) -> float | None:
        """Project the total from tree-weight progress: ``nodes / W``."""
        if self._weight_sum <= 0.0 or nodes_in_tree <= 0:
            return None
        return nodes_in_tree / min(self._weight_sum, 1.0)


@dataclass
class RestartManager:
    """Decides when an in-solve root restart is worthwhile."""

    max_restarts: int
    min_nodes: int
    node_factor: float
    done: int = 0

    def should_restart(self, estimator: TreeSizeEstimator, nodes_in_tree: int) -> bool:
        if self.done >= self.max_restarts or nodes_in_tree < self.min_nodes:
            return False
        # two projections: the leaf-frequency estimate (sharp once the
        # leaf sample is representative) and the tree-weight projection
        # (order-robust; under best-first search the early leaf sample is
        # biased shallow, which makes the frequency estimate lag *low*).
        # Restart when either says the tree is blowing up.
        candidates = [
            estimator.estimate_total_nodes(),
            estimator.estimate_by_progress(nodes_in_tree),
        ]
        est = max((e for e in candidates if e is not None), default=None)
        if est is None:
            return False
        return est >= self.node_factor * nodes_in_tree

    def note_restart(self) -> None:
        self.done += 1
