"""Generic propagators and presolvers for linear rows."""

from __future__ import annotations

import math

from repro.cip.node import Node
from repro.cip.plugins import (
    Presolver,
    PropagationResult,
    PropagationStatus,
    Propagator,
)
from repro.cip.solver import CIPSolver


class IntegralityPropagator(Propagator):
    """Snap integer-variable bounds to integral values at every node."""

    name = "integrality"
    priority = 100

    def propagate(self, solver: CIPSolver, node: Node) -> PropagationResult:
        tightened = 0
        for j in solver.model.integer_indices:
            lo, hi = solver.local_bounds(j)
            new_lo, new_hi = math.ceil(lo - solver.tol.integrality), math.floor(hi + solver.tol.integrality)
            # the snapped bound is implied by the variable's own prior bound
            if new_lo > lo + solver.tol.eps and solver.tighten_lb(j, float(new_lo), reason=(j,)):
                tightened += 1
            if new_hi < hi - solver.tol.eps and solver.tighten_ub(j, float(new_hi), reason=(j,)):
                tightened += 1
            lo, hi = solver.local_bounds(j)
            if lo > hi + solver.tol.feas:
                return PropagationResult(PropagationStatus.INFEASIBLE, conflict=(j,))
        status = PropagationStatus.REDUCED if tightened else PropagationStatus.UNCHANGED
        return PropagationResult(status, tightened)


class LinearActivityPropagator(Propagator):
    """Activity-based bound tightening over the explicit linear rows.

    The classical MIP domain-propagation scheme: for each row, minimum and
    maximum activities imply bounds on each participating variable.
    """

    name = "linear_activity"
    priority = 50

    def propagate(self, solver: CIPSolver, node: Node) -> PropagationResult:
        tightened = 0
        for cons in solver.model.constraints:
            items = list(cons.coefs.items())
            min_act = 0.0
            max_act = 0.0
            for j, a in items:
                lo, hi = solver.local_bounds(j)
                if a >= 0:
                    min_act += a * lo
                    max_act += a * hi
                else:
                    min_act += a * hi
                    max_act += a * lo
            row_vars = tuple(j for j, _ in items)
            if min_act > cons.rhs + solver.tol.feas or max_act < cons.lhs - solver.tol.feas:
                return PropagationResult(PropagationStatus.INFEASIBLE, conflict=row_vars)
            for j, a in items:
                if abs(a) < solver.tol.eps:
                    continue
                # the implied bound follows from the *other* variables'
                # bounds through this (globally valid) row
                reason = tuple(r for r in row_vars if r != j)
                lo, hi = solver.local_bounds(j)
                contrib_min = a * lo if a >= 0 else a * hi
                contrib_max = a * hi if a >= 0 else a * lo
                resid_min = min_act - contrib_min
                resid_max = max_act - contrib_max
                if not math.isinf(cons.rhs) and not math.isinf(resid_min):
                    limit = (cons.rhs - resid_min) / a
                    if a > 0 and solver.tighten_ub(j, limit, reason=reason):
                        tightened += 1
                    elif a < 0 and solver.tighten_lb(j, limit, reason=reason):
                        tightened += 1
                if not math.isinf(cons.lhs) and not math.isinf(resid_max):
                    limit = (cons.lhs - resid_max) / a
                    if a > 0 and solver.tighten_lb(j, limit, reason=reason):
                        tightened += 1
                    elif a < 0 and solver.tighten_ub(j, limit, reason=reason):
                        tightened += 1
        status = PropagationStatus.REDUCED if tightened else PropagationStatus.UNCHANGED
        return PropagationResult(status, tightened)


class TrivialPresolver(Presolver):
    """Global bound tightening and empty-row removal before the search."""

    name = "trivial"
    priority = 100

    def presolve(self, solver: CIPSolver) -> int:
        model = solver.model
        reductions = 0
        # integral bound snapping on the global model
        for v in model.variables:
            if v.is_integral:
                new_lb = float(math.ceil(v.lb - solver.tol.integrality))
                new_ub = float(math.floor(v.ub + solver.tol.integrality))
                if new_lb > v.lb or new_ub < v.ub:
                    v.lb, v.ub = new_lb, new_ub
                    reductions += 1
        # drop rows that can never be binding
        kept = []
        for cons in model.constraints:
            min_act = 0.0
            max_act = 0.0
            for j, a in cons.coefs.items():
                v = model.variables[j]
                if a >= 0:
                    min_act += a * v.lb
                    max_act += a * v.ub
                else:
                    min_act += a * v.ub
                    max_act += a * v.lb
            if min_act >= cons.lhs - solver.tol.feas and max_act <= cons.rhs + solver.tol.feas:
                reductions += 1
                continue
            kept.append(cons)
        if len(kept) != len(model.constraints):
            model.constraints = kept
        return reductions
