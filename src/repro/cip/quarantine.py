"""Plugin quarantine: disable misbehaving plugins instead of crashing.

SCIP's answer to a plugin that keeps failing is to switch it off for the
rest of the solve rather than abort (cf. the numerical-safeguard
discussion in the SCIP 8.0 report).  :class:`PluginQuarantine` keeps the
per-plugin failure ledger for :class:`repro.cip.solver.CIPSolver`: every
*non-essential* callback (presolver, propagator, separator, heuristic,
event handler) runs inside a containment shim; after
``params.plugin_max_failures`` recorded exceptions the plugin is
quarantined and skipped for the remainder of the solve.

Essential plugins — the relaxator and the last surviving branching rule
— cannot simply be skipped; their failure is surfaced as
:class:`EssentialPluginFailure` so the solver can degrade to
``SolveStatus.NUMERICAL_ERROR`` while keeping a valid dual bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PluginError


class EssentialPluginFailure(PluginError):
    """An essential plugin (relaxator, last branching rule) failed beyond
    recovery; the solve must degrade, not crash."""


@dataclass
class PluginQuarantine:
    """Failure ledger + quarantine set, keyed by plugin name."""

    max_failures: int = 3
    failures: dict[str, int] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    # last recorded error text per plugin, for diagnostics/tracing
    last_error: dict[str, str] = field(default_factory=dict)

    def is_quarantined(self, name: str) -> bool:
        return name in self.quarantined

    def record_failure(self, name: str, exc: BaseException) -> tuple[bool, int]:
        """Record one failed callback; returns ``(just_tripped, total)``.

        ``just_tripped`` is True exactly once — on the failure that pushes
        the plugin over ``max_failures`` and into quarantine.
        """
        count = self.failures.get(name, 0) + 1
        self.failures[name] = count
        self.last_error[name] = f"{type(exc).__name__}: {exc}"
        tripped = count >= self.max_failures and name not in self.quarantined
        if tripped:
            self.quarantined.add(name)
        return tripped, count
