"""Convenience assembly of a plain MIP solver from the generic plugins.

This is the "SCIP as a MIP solver" configuration: the same plugin slots
the customized applications fill, loaded with the generic defaults.
"""

from __future__ import annotations

from repro.cip.branching import MostFractionalBranching, PseudocostBranching
from repro.cip.heuristics import DivingHeuristic, RoundingHeuristic
from repro.cip.model import Model
from repro.cip.params import ParamSet
from repro.cip.propagation import (
    IntegralityPropagator,
    LinearActivityPropagator,
    TrivialPresolver,
)
from repro.cip.solver import CIPSolver
from repro.utils import DEFAULT_TOL, Tolerances


def make_mip_solver(
    model: Model,
    params: ParamSet | None = None,
    tol: Tolerances = DEFAULT_TOL,
) -> CIPSolver:
    """Build a :class:`CIPSolver` with the standard MIP plugin stack."""
    solver = CIPSolver(model, params, tol)
    solver.include_presolver(TrivialPresolver())
    solver.include_propagator(IntegralityPropagator())
    solver.include_propagator(LinearActivityPropagator())
    solver.include_heuristic(RoundingHeuristic())
    solver.include_heuristic(DivingHeuristic())
    solver.include_branching_rule(PseudocostBranching())
    solver.include_branching_rule(MostFractionalBranching())
    return solver
