"""Formulation symmetry: detection, orbital fixing, canonical labeling.

Detection runs 1-dimensional Weisfeiler–Leman **color refinement** with
edge labels on the variable/constraint bipartite graph of the model
(variables colored by ``(vtype, lb, ub, obj)``, constraints by
``(lhs, rhs)``, edges labeled by coefficients).  Candidate variable
permutations are built by budget-limited individualization–refinement
and then verified **exactly** against the model
(:func:`is_model_automorphism`) — a returned generator is never
heuristic.  Finding only a subgroup is always sound: subgroup orbits are
finer than true orbits, so both reductions below only get weaker, never
wrong.

Two mutually exclusive reductions (``ParamSet.symmetry_mode``):

* ``"lex"`` — static lex-leader constraints ``x >=_lex g(x)`` per
  generator, enforced by propagation.  Each such constraint is globally
  valid on its own (the lex-max representative of every orbit satisfies
  all of them simultaneously), so any subset is valid.
* ``"orbital"`` — Ostrowski-style orbital fixing: at a node with
  branching-fixed one-set ``B1`` and zero-set ``B0``, compute orbits of
  the subgroup of found generators that stabilize ``B1`` setwise; every
  orbit containing a branching-zero-fixed variable is fixed to zero
  entirely.  Optimality (not per-node feasibility) is preserved: some
  optimal solution survives in the reduced tree.

Combining the two is unsound (they may each discard the other's chosen
representative), hence the one-of mode.  Under UG, every rank must
derive the *identical* generator set — detection is seeded by
``ParamSet.symmetry_seed`` (fixed across a run), never by the per-rank
``permutation_seed``.

:func:`canonical_form` exposes the labeling machinery for reuse outside
the kernel: a budget-limited backtracking canonical labeling of a
colored graph, used by ``repro.serve`` to make instance-cache
fingerprints isomorphism-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.cip.plugins import PropagationResult, PropagationStatus, Propagator

if TYPE_CHECKING:  # pragma: no cover
    from repro.cip.model import Model
    from repro.cip.node import Node
    from repro.cip.solver import CIPSolver

_ROUND = 9  # float bucketing for colors/labels (exactness is restored by verification)


# -- colored graphs and refinement ------------------------------------------


@dataclass
class ColoredGraph:
    """Undirected vertex-colored graph with labeled edges.

    ``adj[v]`` maps neighbor -> integer edge label.  ``colors`` are
    canonical integer ids: callers build via :func:`colored_graph` which
    normalizes arbitrary hashable color/label keys into invariant ids by
    sorted order (isomorphism-invariance of everything downstream
    depends on that normalization).
    """

    n: int
    adj: list[dict[int, int]]
    colors: list[int]


def colored_graph(
    n: int,
    color_keys: Sequence[Hashable],
    edges: Sequence[tuple[int, int, Hashable]],
) -> ColoredGraph:
    """Build a :class:`ColoredGraph` from raw hashable color/label keys."""
    color_ids = {key: i for i, key in enumerate(sorted(set(color_keys), key=repr))}
    label_ids = {key: i for i, key in enumerate(sorted({lab for _, _, lab in edges}, key=repr))}
    adj: list[dict[int, int]] = [{} for _ in range(n)]
    for u, v, lab in edges:
        adj[u][v] = label_ids[lab]
        adj[v][u] = label_ids[lab]
    return ColoredGraph(n, adj, [color_ids[key] for key in color_keys])


def refine_colors(graph: ColoredGraph, colors: Sequence[int]) -> list[int]:
    """1-WL refinement with edge labels; returns stable canonical colors.

    New color ids are assigned by sorted signature order, so the ids are
    isomorphism-invariant (two isomorphic colorings refine to the same
    id sequence up to the isomorphism).
    """
    colors = list(colors)
    for _ in range(graph.n + 1):
        sigs = [
            (colors[v], tuple(sorted((lab, colors[u]) for u, lab in graph.adj[v].items())))
            for v in range(graph.n)
        ]
        order = {sig: i for i, sig in enumerate(sorted(set(sigs)))}
        new = [order[sig] for sig in sigs]
        if new == colors:
            return new
        colors = new
    return colors


def _cells(colors: Sequence[int]) -> dict[int, list[int]]:
    cells: dict[int, list[int]] = {}
    for v, c in enumerate(colors):
        cells.setdefault(c, []).append(v)
    return cells


def _individualize(graph: ColoredGraph, colors: Sequence[int], v: int) -> list[int]:
    """Split ``v`` into its own cell (standard IR step), then refine."""
    bumped = [2 * c for c in colors]
    bumped[v] -= 1
    return refine_colors(graph, bumped)


# -- model symmetry detection ------------------------------------------------


def build_model_graph(model: "Model") -> ColoredGraph:
    """Variable/constraint bipartite graph of the linear model."""
    n_vars = model.num_variables
    color_keys: list[Hashable] = [
        ("var", v.vtype.value, round(v.lb, _ROUND), round(v.ub, _ROUND), round(v.obj, _ROUND))
        for v in model.variables
    ]
    edges: list[tuple[int, int, Hashable]] = []
    for i, cons in enumerate(model.constraints):
        color_keys.append(("cons", round(cons.lhs, _ROUND), round(cons.rhs, _ROUND)))
        for j, a in cons.coefs.items():
            edges.append((n_vars + i, j, round(a, _ROUND)))
    return colored_graph(n_vars + model.num_constraints, color_keys, edges)


def is_model_automorphism(model: "Model", perm: Sequence[int]) -> bool:
    """Exact check: does the variable permutation preserve the model?"""
    tol = 10.0**-_ROUND
    for v in model.variables:
        w = model.variables[perm[v.index]]
        if (
            v.vtype is not w.vtype
            or abs(v.lb - w.lb) > tol
            or abs(v.ub - w.ub) > tol
            or abs(v.obj - w.obj) > tol
        ):
            return False

    def row_key(lhs: float, rhs: float, coefs: dict[int, float]) -> tuple:
        return (
            round(lhs, _ROUND),
            round(rhs, _ROUND),
            tuple(sorted((j, round(a, _ROUND)) for j, a in coefs.items())),
        )

    original: dict[tuple, int] = {}
    for cons in model.constraints:
        key = row_key(cons.lhs, cons.rhs, cons.coefs)
        original[key] = original.get(key, 0) + 1
    for cons in model.constraints:
        key = row_key(cons.lhs, cons.rhs, {perm[j]: a for j, a in cons.coefs.items()})
        count = original.get(key, 0)
        if count == 0:
            return False
        original[key] = count - 1
    return True


def _match_discrete(
    colors_a: Sequence[int], colors_b: Sequence[int], n_vars: int
) -> list[int] | None:
    """Map the discrete coloring A onto B by equal color id (per vertex)."""
    pos_b: dict[int, int] = {}
    for v, c in enumerate(colors_b):
        if c in pos_b:
            return None
        pos_b[c] = v
    perm = [0] * n_vars
    for v in range(n_vars):
        target = pos_b.get(colors_a[v])
        if target is None or target >= n_vars:
            return None
        perm[v] = target
    return perm


def _extend_mapping(
    graph: ColoredGraph,
    colors_a: list[int],
    colors_b: list[int],
    n_vars: int,
    budget: list[int],
) -> list[int] | None:
    """IR search for one isomorphism between two refined colorings."""
    if budget[0] <= 0:
        return None
    budget[0] -= 1
    if sorted(colors_a) != sorted(colors_b):
        return None
    cells_a = _cells(colors_a)
    target = None
    for c in sorted(cells_a):
        if len(cells_a[c]) > 1:
            target = c
            break
    if target is None:
        return _match_discrete(colors_a, colors_b, n_vars)
    va = cells_a[target][0]
    next_a = _individualize(graph, colors_a, va)
    for vb in _cells(colors_b)[target]:
        next_b = _individualize(graph, colors_b, vb)
        perm = _extend_mapping(graph, next_a, next_b, n_vars, budget)
        if perm is not None:
            return perm
    return None


@dataclass
class SymmetryInfo:
    """Verified variable-permutation generators of the model's group."""

    generators: list[list[int]] = field(default_factory=list)
    orbits: list[list[int]] = field(default_factory=list)

    @property
    def nontrivial(self) -> bool:
        return bool(self.generators)


def find_generators(
    model: "Model",
    max_generators: int = 64,
    budget: int = 2000,
    binary_only: bool = True,
) -> SymmetryInfo:
    """Detect verified symmetry generators of the linear model.

    Deterministic: the search individualizes the first member of each
    refined cell against every other member, in index order.  With
    ``binary_only`` (the kernel's setting) a generator is kept only when
    it moves at least one *binary* variable — the propagators below
    reason over 0/1 fixings exclusively, so a generator moving none is
    useless to them.  Generators may additionally move continuous
    variables (e.g. the flow variables riding along with edge variables
    in a flow formulation): automorphisms preserve variable type, so
    every orbit is type-homogeneous and the binary orbits remain valid
    reduction targets.
    """
    n_vars = model.num_variables
    if n_vars == 0:
        return SymmetryInfo()
    graph = build_model_graph(model)
    base = refine_colors(graph, graph.colors)
    binary = [
        v.is_integral and v.lb >= -1e-9 and v.ub <= 1.0 + 1e-9 for v in model.variables
    ]
    generators: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    search_budget = [budget]
    for cell in sorted(_cells(base)):
        members = [v for v in _cells(base)[cell] if v < n_vars]
        if len(members) < 2:
            continue
        va = members[0]
        colors_a = _individualize(graph, base, va)
        for vb in members[1:]:
            if len(generators) >= max_generators or search_budget[0] <= 0:
                break
            colors_b = _individualize(graph, base, vb)
            perm = _extend_mapping(graph, colors_a, colors_b, n_vars, search_budget)
            if perm is None:
                continue
            key = tuple(perm)
            if key in seen or all(perm[j] == j for j in range(n_vars)):
                continue
            if binary_only and not any(perm[j] != j and binary[j] for j in range(n_vars)):
                continue
            if is_model_automorphism(model, perm):
                seen.add(key)
                generators.append(perm)
    info = SymmetryInfo(generators)
    info.orbits = orbits_of(n_vars, generators)
    return info


def orbits_of(n: int, generators: Sequence[Sequence[int]]) -> list[list[int]]:
    """Orbits of {0..n-1} under the group generated (union-find)."""
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for perm in generators:
        for j in range(n):
            ra, rb = find(j), find(perm[j])
            if ra != rb:
                parent[rb] = ra
    groups: dict[int, list[int]] = {}
    for j in range(n):
        groups.setdefault(find(j), []).append(j)
    return [sorted(g) for g in groups.values() if len(g) > 1]


# -- reductions: propagator plugins -----------------------------------------


class OrbitalFixingPropagator(Propagator):
    """Orbital fixing over the detected generator subgroup.

    At each node: ``B1``/``B0`` are the variables fixed to 1/0 by the
    node's *branching decisions* (``node.bound_changes`` is cumulative
    branching state — propagation tightenings never persist into it, so
    this is exactly the decision path).  Orbits are computed for the
    subgroup of generators fixing ``B1`` setwise; every orbit meeting
    ``B0`` is zero-fixed entirely.  Tightenings are recorded without a
    reason (opaque) on purpose: their justification is group-theoretic,
    not propagation-logical, so conflict analysis must not resolve
    through them.
    """

    name = "orbital_fixing"
    priority = 40  # after the cheap arithmetic propagators

    def __init__(self, info: SymmetryInfo, model: "Model") -> None:
        self.info = info
        self._binary = [
            v.is_integral and v.lb >= -1e-9 and v.ub <= 1.0 + 1e-9 for v in model.variables
        ]

    def propagate(self, solver: "CIPSolver", node: "Node") -> PropagationResult:
        if not self.info.nontrivial:
            return PropagationResult()
        b1: set[int] = set()
        b0: set[int] = set()
        for j, (lo, hi) in node.bound_changes.items():
            # only binary fixings: for a general-integer variable lo>=0.5
            # means x>=1, not x==1, and the orbit argument needs fixings
            if j >= len(self._binary) or not self._binary[j]:
                continue
            if lo >= 0.5:
                b1.add(j)
            elif hi <= 0.5:
                b0.add(j)
        if not b0:
            return PropagationResult()
        stab = [g for g in self.info.generators if all(g[j] in b1 for j in b1)]
        if not stab:
            return PropagationResult()
        n = len(stab[0])
        tightened = 0
        for orbit in orbits_of(n, stab):
            if not any(j in b0 for j in orbit):
                continue
            for j in orbit:
                if j in b0:
                    continue
                lo, hi = solver.local_bounds(j)
                if lo >= 0.5:
                    # the orbit holds a one-fixed variable: this subtree
                    # keeps no symmetric representative — prune it
                    solver.stats.bump("orbital_prunes")
                    return PropagationResult(PropagationStatus.INFEASIBLE)
                if hi > 0.5 and solver.tighten_ub(j, 0.0):
                    tightened += 1
        if tightened:
            solver.stats.bump("orbital_fixings", tightened)
            return PropagationResult(PropagationStatus.REDUCED, tightened)
        return PropagationResult()


class LexSymmetryPropagator(Propagator):
    """Propagate the lex-leader constraints ``x >=_lex g(x)``.

    For each generator ``g`` the comparison permutation ``q = g^{-1}``
    gives ``(g(x))_i = x_{q(i)}``; positions are scanned in index order
    over the moved binary variables, enforcing the classic two-vector
    lex propagation between ``x`` and its image.  Restricting the
    comparison to binary positions stays valid even when ``g`` also
    moves continuous variables: the element of each orbit maximizing the
    *binary subvector* lexicographically satisfies every restricted
    constraint simultaneously.
    """

    name = "lex_symmetry"
    priority = 40

    def __init__(self, info: SymmetryInfo, model: "Model") -> None:
        self.info = info
        binary = [
            v.is_integral and v.lb >= -1e-9 and v.ub <= 1.0 + 1e-9 for v in model.variables
        ]
        self._compare: list[list[tuple[int, int]]] = []
        for g in info.generators:
            inv = [0] * len(g)
            for j, t in enumerate(g):
                inv[t] = j
            self._compare.append(
                [(i, inv[i]) for i in range(len(g)) if inv[i] != i and binary[i]]
            )

    def propagate(self, solver: "CIPSolver", node: "Node") -> PropagationResult:
        tightened = 0
        for pairs in self._compare:
            for i, qi in pairs:
                lo_a, hi_a = solver.local_bounds(i)
                lo_b, hi_b = solver.local_bounds(qi)
                a_fixed0, a_fixed1 = hi_a <= 0.5, lo_a >= 0.5
                b_fixed0, b_fixed1 = hi_b <= 0.5, lo_b >= 0.5
                if a_fixed1 and b_fixed0:
                    break  # x > g(x) already strict: constraint satisfied
                if a_fixed1 and b_fixed1 or a_fixed0 and b_fixed0:
                    continue  # equal so far: compare the next position
                if a_fixed0 and b_fixed1:
                    solver.stats.bump("lex_prunes")
                    return PropagationResult(PropagationStatus.INFEASIBLE)
                if b_fixed1:  # a free: x_i must be 1 to avoid x <lex g(x)
                    if solver.tighten_lb(i, 1.0):
                        tightened += 1
                    continue
                if a_fixed0:  # b free: image position must be 0
                    if solver.tighten_ub(qi, 0.0):
                        tightened += 1
                    continue
                break  # both free (or one free vs free): nothing forced
        if tightened:
            solver.stats.bump("lex_fixings", tightened)
            return PropagationResult(PropagationStatus.REDUCED, tightened)
        return PropagationResult()


# -- canonical labeling ------------------------------------------------------


class _Budget:
    __slots__ = ("left",)

    def __init__(self, budget: int) -> None:
        self.left = budget


def canonical_form(graph: ColoredGraph, budget: int = 4000) -> tuple[bytes, list[int]] | None:
    """Canonical certificate + labeling of a colored graph, or None.

    Backtracking individualization–refinement: at each non-discrete
    refined coloring, branch on *every* vertex of the first non-singleton
    cell and keep the lexicographically smallest leaf certificate —
    which makes the certificate (and the argmin labeling) invariant
    under relabeling.  ``budget`` caps refinement steps; exhaustion
    returns None and the caller falls back to a non-invariant key.
    """
    state = _Budget(budget)
    best: list[tuple[bytes, list[int]] | None] = [None]

    def leaf(colors: list[int]) -> None:
        labeling = sorted(range(graph.n), key=lambda v: colors[v])
        pos = {v: i for i, v in enumerate(labeling)}
        rows = []
        for v in labeling:
            rows.append(tuple(sorted((pos[u], lab) for u, lab in graph.adj[v].items())))
        cert = repr((tuple(graph.colors[v] for v in labeling), tuple(rows))).encode()
        if best[0] is None or cert < best[0][0]:
            best[0] = (cert, labeling)

    def search(colors: list[int]) -> None:
        if state.left <= 0:
            return
        cells = _cells(colors)
        target = None
        for c in sorted(cells):
            if len(cells[c]) > 1:
                target = c
                break
        if target is None:
            leaf(colors)
            return
        for v in cells[target]:
            if state.left <= 0:
                return
            state.left -= 1
            search(_individualize(graph, colors, v))

    search(refine_colors(graph, graph.colors))
    if state.left <= 0 or best[0] is None:
        return None
    return best[0]
