"""Constraint Integer Programming framework — the SCIP analogue.

A :class:`~repro.cip.solver.CIPSolver` is a plugin host: presolvers,
propagators, separators, heuristics, branching rules, constraint handlers
and (optionally) a relaxator are registered on it, exactly as SCIP
applications install user plugins. Both customized solvers of the paper
— the Steiner solver (:mod:`repro.steiner`) and the MISDP solver
(:mod:`repro.sdp`) — are built purely out of such plugins, which is what
lets :mod:`repro.ug` parallelize them with tiny glue files
(:mod:`repro.apps`).
"""

from repro.cip.model import Model, Variable, LinearConstraint, VarType
from repro.cip.registry import (
    PLUGIN_KINDS,
    WHITELISTABLE_KINDS,
    PluginRegistry,
    known_plugin_names,
    validate_plugin_names,
)
from repro.cip.solver import CIPSolver
from repro.cip.result import SolveResult, SolveStatus, Solution
from repro.cip.params import ParamSet, EMPHASIS_PRESETS
from repro.cip.plugins import (
    BranchingRule,
    ChildSpec,
    ConstraintHandler,
    Cut,
    EventHandler,
    Heuristic,
    Presolver,
    PropagationResult,
    Propagator,
    RelaxationResult,
    Relaxator,
    Separator,
)

__all__ = [
    "Model",
    "Variable",
    "LinearConstraint",
    "VarType",
    "CIPSolver",
    "SolveResult",
    "SolveStatus",
    "Solution",
    "ParamSet",
    "EMPHASIS_PRESETS",
    "PluginRegistry",
    "PLUGIN_KINDS",
    "WHITELISTABLE_KINDS",
    "known_plugin_names",
    "validate_plugin_names",
    "BranchingRule",
    "ChildSpec",
    "ConstraintHandler",
    "Cut",
    "EventHandler",
    "Heuristic",
    "Presolver",
    "PropagationResult",
    "Propagator",
    "RelaxationResult",
    "Relaxator",
    "Separator",
]
