"""Generic primal heuristics: rounding and LP diving."""

from __future__ import annotations

import math

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import Heuristic
from repro.cip.solver import CIPSolver
from repro.lp import LinearProgram, LPStatus


class RoundingHeuristic(Heuristic):
    """Round the relaxation solution to the nearest integers and check."""

    name = "rounding"
    priority = 10

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        if x is None:
            return
        cand = np.asarray(x, dtype=float).copy()
        for j in solver.model.integer_indices:
            lo, hi = solver.local_bounds(j)
            cand[j] = min(max(round(float(cand[j])), math.ceil(lo - solver.tol.feas)), math.floor(hi + solver.tol.feas))
        value = solver.model.objective_value(cand)
        if solver.add_solution(value, cand, check=True):
            solver.stats.heuristic_solutions += 1


class DivingHeuristic(Heuristic):
    """Iteratively fix the least-fractional variable and re-solve the LP.

    A bounded-depth LP dive; stops at the first infeasibility. Fixing
    order uses the solver permutation for tie-breaking, so racing settings
    genuinely diversify the dives.
    """

    name = "diving"
    priority = 5

    def __init__(self, max_depth: int = 30) -> None:
        self.max_depth = max_depth

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        if x is None or solver.relaxator is not None:
            return
        model = solver.model
        lp = LinearProgram()
        for v in model.variables:
            lo, hi = solver.local_bounds(v.index)
            lp.add_variable(lo, hi, v.obj, v.name)
        for cons in model.constraints:
            lp.add_row(cons.coefs, cons.lhs, cons.rhs, cons.name)
        for cut in solver.cutpool:
            lp.add_row(dict(cut.coefs), cut.lhs, cut.rhs, cut.name)

        cur = np.asarray(x, dtype=float).copy()
        perm = {j: r for r, j in enumerate(solver.rng.permutation(model.num_variables))}
        for _depth in range(self.max_depth):
            frac = [j for j in model.integer_indices if not solver.tol.is_integral(float(cur[j]))]
            if not frac:
                value = model.objective_value(cur)
                if solver.add_solution(value, cur, check=True):
                    solver.stats.heuristic_solutions += 1
                return
            j = min(frac, key=lambda k: (min(cur[k] - math.floor(cur[k]), math.ceil(cur[k]) - cur[k]), perm[k]))
            target = float(round(cur[j]))
            lo, hi = lp.get_bounds(j)
            target = min(max(target, lo), hi)
            lp.set_bounds(j, target, target)
            # route through the solver's failover chain so dives inherit
            # numerical recovery and the solve deadline
            sol = solver.solve_lp_robust(lp)
            if sol.status is not LPStatus.OPTIMAL:
                return
            cur = sol.x
