"""Plugin interfaces — the analogue of SCIP's plugin architecture.

Applications implement subsets of these classes and register them on a
:class:`~repro.cip.solver.CIPSolver`. All hooks receive the solver so
they can inspect the model, incumbent, tolerances and parameters; they
must not keep references across solves.

Return-value contracts are deliberately small: hooks communicate through
the typed result dataclasses below, never by mutating solver internals
(the only sanctioned mutations are ``solver.add_solution`` and the
bound-tightening API passed to propagators).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cip.node import Node
    from repro.cip.solver import CIPSolver


@dataclass(frozen=True)
class Cut:
    """A globally valid linear inequality ``lhs <= coefs . x <= rhs``."""

    coefs: tuple[tuple[int, float], ...]
    lhs: float
    rhs: float
    name: str = ""

    @staticmethod
    def from_dict(coefs: dict[int, float], lhs: float = -np.inf, rhs: float = np.inf, name: str = "") -> "Cut":
        return Cut(tuple(sorted(coefs.items())), float(lhs), float(rhs), name)

    def violation(self, x: np.ndarray) -> float:
        """Positive amount by which ``x`` violates the cut (0 if satisfied)."""
        act = sum(c * float(x[j]) for j, c in self.coefs)
        return max(self.lhs - act, act - self.rhs, 0.0)


class PropagationStatus(enum.Enum):
    UNCHANGED = "unchanged"
    REDUCED = "reduced"
    INFEASIBLE = "infeasible"


@dataclass
class PropagationResult:
    """``conflict`` (only meaningful with INFEASIBLE status) names the
    variable indices whose current local bounds witnessed the
    infeasibility — the seed set conflict analysis resolves backwards
    from.  Empty means the propagator cannot localize the cause."""

    status: PropagationStatus = PropagationStatus.UNCHANGED
    tightenings: int = 0
    conflict: tuple[int, ...] = ()


class RelaxationStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FAILED = "failed"


@dataclass
class RelaxationResult:
    """Outcome of solving a node relaxation (LP or plugin relaxator)."""

    status: RelaxationStatus
    bound: float = float("inf")
    x: np.ndarray | None = None
    work: float = 0.0  # deterministic work units spent (feeds virtual time)


@dataclass
class ChildSpec:
    """Description of one branching child.

    ``bound_changes`` maps variable index to new (lb, ub); ``local_update``
    merges into the node's problem-specific decision record (e.g. the
    Steiner vertex decisions communicated to ParaSolvers, cf. the
    constraint-branching support added in ug-0.8.6).
    """

    bound_changes: dict[int, tuple[float, float]] = field(default_factory=dict)
    local_update: dict[str, Any] = field(default_factory=dict)
    estimate: float | None = None
    local_rows: list[Cut] = field(default_factory=list)


class Plugin:
    """Common base: plugins have a name and a priority (higher runs first).

    Every subclass that declares a ``name`` class attribute is recorded
    in the plugin-name catalog at class-definition time, which is what
    lets :class:`~repro.cip.params.ParamSet` validate whitelists against
    real names instead of silently disabling everything on a typo.
    """

    name: str = "plugin"
    priority: int = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if "name" in cls.__dict__:
            from repro.cip.registry import note_plugin_name

            note_plugin_name(cls.__dict__["name"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} prio={self.priority}>"


class Presolver(Plugin):
    """Reduces the model before the tree search (and again per subproblem
    inside ParaSolvers — the paper's *layered presolving*)."""

    def presolve(self, solver: "CIPSolver") -> int:
        """Apply reductions in place; return the number of reductions."""
        raise NotImplementedError


class Propagator(Plugin):
    """Tightens local variable bounds at a node."""

    def propagate(self, solver: "CIPSolver", node: "Node") -> PropagationResult:
        raise NotImplementedError


class Separator(Plugin):
    """Produces violated valid inequalities for a relaxation solution."""

    def separate(self, solver: "CIPSolver", node: "Node", x: np.ndarray) -> list[Cut]:
        raise NotImplementedError


class Heuristic(Plugin):
    """Searches for primal solutions; reports them via ``solver.add_solution``."""

    def run(self, solver: "CIPSolver", node: "Node", x: np.ndarray | None) -> None:
        raise NotImplementedError


class BranchingRule(Plugin):
    """Splits a node into children."""

    def branch(self, solver: "CIPSolver", node: "Node", x: np.ndarray | None) -> list[ChildSpec]:
        raise NotImplementedError


class ConstraintHandler(Plugin):
    """Owns a non-linear constraint class (Steiner cuts, SDP blocks).

    ``check`` decides final feasibility of candidate solutions; ``separate``
    cuts off relaxation solutions; ``propagate`` may tighten bounds; if an
    integral relaxation solution fails ``check`` and ``separate`` yields
    nothing, the solver falls back to branching.
    """

    def check(self, solver: "CIPSolver", x: np.ndarray) -> bool:
        raise NotImplementedError

    def separate(self, solver: "CIPSolver", node: "Node", x: np.ndarray) -> list[Cut]:
        return []

    def propagate(self, solver: "CIPSolver", node: "Node") -> PropagationResult:
        return PropagationResult()


class Relaxator(Plugin):
    """Replaces the LP as the node bounding oracle (e.g. the SDP relaxation
    of SCIP-SDP's nonlinear branch-and-bound approach)."""

    def solve(self, solver: "CIPSolver", node: "Node") -> RelaxationResult:
        raise NotImplementedError


class EventHandler(Plugin):
    """Observes solver events (used by UG to harvest solutions/bounds)."""

    def on_new_incumbent(self, solver: "CIPSolver", value: float, data: Any) -> None:
        pass

    def on_node_solved(self, solver: "CIPSolver", node: "Node", bound: float) -> None:
        pass
