"""Generic branching rules for integer variables.

Problem-specific rules (Steiner vertex branching, SDP branching) live in
their applications; these two cover plain MIP solving and serve as the
fallback for integral-variable problems.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import BranchingRule, ChildSpec
from repro.cip.solver import CIPSolver


def _fractional(solver: CIPSolver, x: np.ndarray) -> list[int]:
    return [j for j in solver.model.integer_indices if not solver.tol.is_integral(float(x[j]))]


def _split(solver: CIPSolver, j: int, value: float) -> list[ChildSpec]:
    lo, hi = solver.local_bounds(j)
    floor_v = float(np.floor(value))
    ceil_v = float(np.ceil(value))
    down = ChildSpec(bound_changes={j: (lo, floor_v)})
    up = ChildSpec(bound_changes={j: (ceil_v, hi)})
    return [down, up]


class MostFractionalBranching(BranchingRule):
    """Branch on the integer variable closest to .5 fractionality.

    Ties are broken by the solver's permutation order, which is how the
    permutation seed of racing ramp-up diversifies search trees.
    """

    name = "mostfractional"
    priority = 10

    def branch(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> list[ChildSpec]:
        if x is None:
            return self._branch_without_lp(solver)
        frac = _fractional(solver, x)
        if not frac:
            return []
        perm = {j: r for r, j in enumerate(solver.rng.permutation(solver.model.num_variables))}
        best = min(frac, key=lambda j: (abs(float(x[j]) - np.floor(float(x[j])) - 0.5), perm[j]))
        return _split(solver, best, float(x[best]))

    def _branch_without_lp(self, solver: CIPSolver) -> list[ChildSpec]:
        for j in solver.model.integer_indices:
            lo, hi = solver.local_bounds(j)
            if hi - lo > solver.tol.integrality:
                mid = float(np.floor((lo + hi) / 2.0))
                return _split(solver, j, mid + 0.5)
        return []


class PseudocostBranching(BranchingRule):
    """Pseudocost branching with most-fractional initialisation.

    Maintains per-variable average objective gains for down/up branches
    and picks the candidate maximising the product score (the standard
    MIP recipe); uninitialised variables fall back to fractionality.
    """

    name = "pseudocost"
    priority = 20

    def __init__(self) -> None:
        self._down_gain: dict[int, tuple[float, int]] = {}
        self._up_gain: dict[int, tuple[float, int]] = {}
        self._last_pick: tuple[int, float, float] | None = None

    def record_gain(self, j: int, direction: int, gain: float) -> None:
        book = self._down_gain if direction < 0 else self._up_gain
        total, count = book.get(j, (0.0, 0))
        book[j] = (total + max(gain, 0.0), count + 1)

    def _avg(self, book: dict[int, tuple[float, int]], j: int) -> float | None:
        if j not in book:
            return None
        total, count = book[j]
        return total / count

    def branch(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> list[ChildSpec]:
        if x is None:
            return MostFractionalBranching().branch(solver, node, x)
        frac = _fractional(solver, x)
        if not frac:
            return []
        perm = {j: r for r, j in enumerate(solver.rng.permutation(solver.model.num_variables))}

        def score(j: int) -> tuple[float, float]:
            f = float(x[j]) - float(np.floor(float(x[j])))
            down = self._avg(self._down_gain, j)
            up = self._avg(self._up_gain, j)
            if down is None or up is None:
                return (min(f, 1 - f), -perm[j])
            return (max(down * f, 1e-6) * max(up * (1 - f), 1e-6), -perm[j])

        best = max(frac, key=score)
        self._last_pick = (best, float(x[best]), node.lower_bound)
        return _split(solver, best, float(x[best]))
