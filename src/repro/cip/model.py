"""CIP model container: variables, linear constraints, problem payload.

Per Definition 1 of the paper a CIP couples an objective, constraints and
an integrality set; non-linear constraint classes (Steiner cuts, SDP
blocks) are owned by :class:`~repro.cip.plugins.ConstraintHandler`
plugins, while this container stores what every CIP shares: columns and
explicit linear rows. ``Model.data`` carries the problem-specific payload
(a Steiner graph, an MISDP block structure) that the plugins interpret.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ModelError

INF = math.inf


class VarType(enum.Enum):
    CONTINUOUS = "C"
    INTEGER = "I"
    BINARY = "B"


@dataclass
class Variable:
    """A model column."""

    index: int
    name: str
    vtype: VarType
    lb: float
    ub: float
    obj: float

    @property
    def is_integral(self) -> bool:
        return self.vtype is not VarType.CONTINUOUS


@dataclass
class LinearConstraint:
    """A linear row ``lhs <= coefs . x <= rhs``."""

    name: str
    coefs: dict[int, float]
    lhs: float
    rhs: float


@dataclass
class Model:
    """A minimisation CIP.

    ``obj_offset`` lets transformations (maximisation flips, fixed-cost
    contractions in the Steiner presolve) keep reporting objective values
    in the original problem's units.
    """

    name: str = "cip"
    variables: list[Variable] = field(default_factory=list)
    constraints: list[LinearConstraint] = field(default_factory=list)
    obj_offset: float = 0.0
    obj_sense: int = 1  # +1: values reported as-is; -1: original was a maximisation
    data: Any = None

    def add_variable(
        self,
        name: str = "",
        vtype: VarType = VarType.CONTINUOUS,
        lb: float = 0.0,
        ub: float = INF,
        obj: float = 0.0,
    ) -> Variable:
        if vtype is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(len(self.variables), name or f"x{len(self.variables)}", vtype, float(lb), float(ub), float(obj))
        self.variables.append(var)
        return var

    def add_constraint(
        self,
        coefs: dict[int, float],
        lhs: float = -INF,
        rhs: float = INF,
        name: str = "",
    ) -> LinearConstraint:
        if lhs > rhs:
            raise ModelError(f"constraint {name!r}: lhs {lhs} > rhs {rhs}")
        n = len(self.variables)
        for j in coefs:
            if not 0 <= j < n:
                raise ModelError(f"constraint {name!r} references unknown variable {j}")
        cons = LinearConstraint(name or f"c{len(self.constraints)}", dict(coefs), float(lhs), float(rhs))
        self.constraints.append(cons)
        return cons

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def integer_indices(self) -> list[int]:
        return [v.index for v in self.variables if v.is_integral]

    def objective_value(self, x: np.ndarray) -> float:
        """Internal (minimisation) objective at ``x`` including the offset."""
        val = self.obj_offset
        for v in self.variables:
            if v.obj:
                val += v.obj * float(x[v.index])
        return val

    def external_objective(self, internal_value: float) -> float:
        """Map an internal objective value to the original problem's sense."""
        return self.obj_sense * internal_value

    def check_linear(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check bounds and explicit linear rows at ``x``."""
        for v in self.variables:
            if x[v.index] < v.lb - tol or x[v.index] > v.ub + tol:
                return False
        for cons in self.constraints:
            act = sum(c * float(x[j]) for j, c in cons.coefs.items())
            if act < cons.lhs - tol or act > cons.rhs + tol:
                return False
        return True

    def copy(self) -> "Model":
        """Deep copy of columns and rows; ``data`` is shared by reference.

        Problem payloads are treated as immutable by convention — plugins
        that need to mutate a graph (Steiner presolve) copy it themselves.
        """
        m = Model(self.name, obj_offset=self.obj_offset, obj_sense=self.obj_sense, data=self.data)
        m.variables = [Variable(v.index, v.name, v.vtype, v.lb, v.ub, v.obj) for v in self.variables]
        m.constraints = [LinearConstraint(c.name, dict(c.coefs), c.lhs, c.rhs) for c in self.constraints]
        return m
