"""The CIP branch-cut-and-propagate solver.

The solver is a plugin host (cf. :mod:`repro.cip.plugins`) around a
classical LP/relaxator-based branch-and-bound loop. Two entry styles:

* :meth:`CIPSolver.solve` — run to completion (sequential use), and
* the step API (:meth:`setup` + :meth:`step`) — process one node at a
  time, which is what lets :mod:`repro.ug` drive many solver instances
  from its LoadCoordinator event loop: a ParaSolver interleaves ``step``
  calls with message handling exactly as Algorithm 2 of the paper
  interleaves solving with communication.

Deterministic *work units* (an abstract cost measured from LP/relaxator
iteration counts) are accumulated per step; the UG virtual-time backend
turns them into simulated wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.cip.conflict import ConflictAnalyzer, ConflictPropagator
from repro.cip.cutpool import CutPool
from repro.cip.estimate import RestartManager, TreeSizeEstimator
from repro.cip.model import Model
from repro.cip.node import Node
from repro.cip.params import ParamSet
from repro.cip.plugins import (
    BranchingRule,
    ConstraintHandler,
    EventHandler,
    Heuristic,
    Plugin,
    PropagationResult,
    PropagationStatus,
    Presolver,
    Propagator,
    RelaxationResult,
    RelaxationStatus,
    Relaxator,
    Separator,
)
from repro.cip.quarantine import EssentialPluginFailure, PluginQuarantine
from repro.cip.registry import KindView, PluginRegistry
from repro.cip.result import SolveResult, SolveStats, SolveStatus, Solution
from repro.cip.symmetry import (
    LexSymmetryPropagator,
    OrbitalFixingPropagator,
    SymmetryInfo,
    find_generators,
)
from repro.cip.tree import NodeTree
from repro.exceptions import PluginError
from repro.lp import LinearProgram, LPSolution, LPStatus, RobustLPSolver, solve_lp
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.utils import Budget, DEFAULT_TOL, Stopwatch, Tolerances, make_rng

# deterministic work-unit model (abstract seconds)
WORK_PER_NODE = 1e-3
WORK_PER_LP_ITER = 2e-4
WORK_PER_CUT = 5e-5


@dataclass
class StepOutcome:
    """Result of processing one node via the step API."""

    finished: bool
    status: SolveStatus
    work: float
    new_solution: Solution | None = None


class CIPSolver:
    """Branch-cut-and-propagate solver over a :class:`~repro.cip.model.Model`."""

    def __init__(
        self,
        model: Model,
        params: ParamSet | None = None,
        tol: Tolerances = DEFAULT_TOL,
    ) -> None:
        self.model = model
        self.params = params or ParamSet()
        self.tol = tol

        # ordered plugin registry; the per-kind attributes are live
        # list-like views kept for the historical mutation surface
        # (tests and apps append/extend/clear them directly)
        self.registry = PluginRegistry()
        self.presolvers = KindView(self.registry, "presolver")
        self.propagators = KindView(self.registry, "propagator")
        self.separators = KindView(self.registry, "separator")
        self.heuristics = KindView(self.registry, "heuristic")
        self.branching_rules = KindView(self.registry, "branching")
        self.conshdlrs = KindView(self.registry, "conshdlr")
        self.event_handlers = KindView(self.registry, "event")

        self.stats = SolveStats()
        self.cutpool = CutPool()
        self.incumbent: Solution | None = None
        self.rng = make_rng(self.params.permutation_seed)

        # robustness layer: quarantine ledger, LP failover chain, budget,
        # observability endpoints (UG attaches its shared tracer here)
        self.tracer = NULL_TRACER
        self.trace_rank = 0
        self.metrics = MetricsRegistry()
        self.budget = Budget(soft_memory_limit_mb=self.params.soft_memory_limit_mb)
        self.quarantine = PluginQuarantine(max_failures=self.params.plugin_max_failures)
        self._robust_lp = RobustLPSolver(self.params.lp_backend)
        self._degraded: str | None = None  # reason, once an essential plugin failed
        self._lost_bound = math.inf  # min lower bound over dropped (unresolved) nodes
        self._heur_throttle = 1  # heuristic frequency multiplier under memory pressure
        # how the node being processed was resolved: (outcome, children, value)
        # — consumed by step() to emit the bb_node audit event
        self._node_outcome: tuple[str, int, float | None] = ("branched", 0, None)

        self._tree: NodeTree | None = None
        self._node_counter = 0
        self._presolved = False
        self._clock = Stopwatch()
        self._current_node: Node | None = None
        self._local_lb: np.ndarray | None = None
        self._local_ub: np.ndarray | None = None
        self._processed_any = False
        self._root_processed = False

        # -- modern kernel subsystems (all inert unless enabled in params)
        self.conflict: ConflictAnalyzer | None = None
        if self.params.conflict_analysis:
            self.conflict = ConflictAnalyzer(
                model, self.params.conflict_pool_size, self.params.conflict_max_literals
            )
            # front of the propagator order: learned clauses prune before
            # the arithmetic propagators re-derive the same dead ends
            self.registry.register("propagator", ConflictPropagator(self.conflict), position="front")
        self.symmetry: SymmetryInfo | None = None
        self._symmetry_done = False
        self.estimator = TreeSizeEstimator()
        self._restart_mgr = RestartManager(
            self.params.restart_max if self.params.restarts else 0,
            self.params.restart_min_nodes,
            self.params.restart_node_factor,
        )
        self._nodes_at_tree_start = 0
        self._root_tightenings: dict[int, tuple[float, float]] = {}
        self._setup_args: tuple[dict[int, tuple[float, float]], dict[str, Any], float] = ({}, {}, -math.inf)

    # -- plugin registration ------------------------------------------------

    def include_presolver(self, p: Presolver, position: str | None = None) -> None:
        self.registry.register("presolver", p, position)

    def include_propagator(self, p: Propagator, position: str | None = None) -> None:
        self.registry.register("propagator", p, position)

    def include_separator(self, p: Separator, position: str | None = None) -> None:
        self.registry.register("separator", p, position)

    def include_heuristic(self, p: Heuristic, position: str | None = None) -> None:
        self.registry.register("heuristic", p, position)

    def include_branching_rule(self, p: BranchingRule, position: str | None = None) -> None:
        self.registry.register("branching", p, position)

    def include_constraint_handler(self, p: ConstraintHandler, position: str | None = None) -> None:
        self.registry.register("conshdlr", p, position)

    def include_event_handler(self, p: EventHandler, position: str | None = None) -> None:
        self.registry.register("event", p, position)

    def set_relaxator(self, r: Relaxator) -> None:
        self.registry.register("relaxator", r)

    @property
    def relaxator(self) -> Relaxator | None:
        return self.registry.relaxator

    def _active(self, kind: str) -> list[Plugin]:
        """Plugins of a kind surviving the ParamSet whitelist, in order.

        Quarantine is *not* filtered here: call sites keep their own
        containment semantics (``_guarded`` skips, branching counts
        quarantined rules as failed for essential-failure detection).
        """
        return self.registry.active(kind, whitelist=self.params.whitelist_for(kind))

    # -- robustness layer ---------------------------------------------------

    def _emit(self, kind: str, **data: Any) -> None:
        """Trace a kernel event at the deterministic work clock."""
        if self.tracer.enabled:
            self.tracer.emit(self.stats.total_work, kind, self.trace_rank, **data)

    def _emit_bb_node(
        self,
        node: Node,
        bound_in: float,
        outcome: str,
        children: int,
        value: float | None,
        cutoff: float,
        processed: bool,
    ) -> None:
        """Trace how one popped node was resolved (the tree-audit record).

        ``processed=False`` marks nodes pruned at selection time, before
        :meth:`_process_node` ran (they do not count into
        ``stats.nodes_processed``).
        """
        if not self.tracer.enabled:
            return
        data: dict[str, Any] = {
            "node": node.node_id,
            "parent": node.parent_id,
            "depth": node.depth,
            "bound_in": bound_in,
            "bound": node.lower_bound,
            "outcome": outcome,
            "children": children,
            "cutoff": cutoff,
            "processed": processed,
        }
        if value is not None:
            data["value"] = value
        self.tracer.emit(self.stats.total_work, "bb_node", self.trace_rank, **data)

    def _record_plugin_failure(self, plugin: Plugin, kind: str, exc: BaseException) -> bool:
        """Ledger one failed callback; returns True when it trips quarantine."""
        tripped, count = self.quarantine.record_failure(plugin.name, exc)
        self.stats.bump("plugin_failures")
        self.metrics.inc("plugin_failures")
        self._emit(
            "plugin_failure",
            plugin=plugin.name,
            callback=kind,
            error=f"{type(exc).__name__}: {exc}",
            failures=count,
        )
        if tripped:
            self.stats.bump("plugins_quarantined")
            self.metrics.inc("plugins_quarantined")
            self._emit("plugin_quarantined", plugin=plugin.name, callback=kind, failures=count)
        return tripped

    def _guarded(self, plugin: Plugin, kind: str, default: Any, call: Callable[[], Any]) -> Any:
        """Containment shim for non-essential plugin callbacks.

        A quarantined plugin is skipped outright; an exception is recorded
        (quarantining the plugin after ``params.plugin_max_failures``) and
        replaced by ``default`` — the solve continues without the plugin's
        contribution, which is always sound for optional callbacks.
        """
        if self.quarantine.is_quarantined(plugin.name):
            return default
        try:
            return call()
        except Exception as exc:
            self._record_plugin_failure(plugin, kind, exc)
            return default

    def _degrade(self, reason: str, node: Node | None = None) -> None:
        """Mark the solve degraded by an essential-plugin failure.

        The search stops at the next :meth:`step` with
        ``SolveStatus.NUMERICAL_ERROR``; dropping ``node`` caps the
        reported dual bound so it stays valid for the unexplored part.
        """
        if node is not None:
            self._lost_bound = min(self._lost_bound, node.lower_bound)
        if self._degraded is None:
            self._degraded = reason
            self.stats.bump("numerical_degradations")
            self.metrics.inc("numerical_degradations")
            self._emit("solver_degraded", reason=reason)

    def _note_budget_stop(self, scope: str) -> None:
        self.stats.bump("budget_stops")
        self.metrics.inc("budget_stops")
        self._emit("budget_exhausted", scope=scope)

    def _relieve_memory_pressure(self) -> None:
        """Graceful degradation above the soft-memory ceiling: shed the
        cut pool (cuts are regenerable) and halve heuristic frequency."""
        evicted = self.cutpool.shrink(0.5)
        self._heur_throttle = min(self._heur_throttle * 2, 64)
        self.stats.bump("memory_pressure_events")
        self.metrics.inc("memory_pressure_events")
        self._emit("memory_pressure", cuts_evicted=evicted, heur_throttle=self._heur_throttle)

    def solve_lp_robust(self, lp: LinearProgram, **kwargs: Any) -> LPSolution:
        """Solve an LP through the failover chain (plain → scaled →
        perturbed → switched backend), honoring the solve budget.

        Public: plugin relaxators and heuristics should route their
        auxiliary LPs here instead of calling ``solve_lp`` directly, so
        they inherit failover and deadline enforcement.
        """
        budget = self.budget if self.budget.limited else None
        if not self.params.lp_failover:
            return solve_lp(lp, self.params.lp_backend, budget=budget, **kwargs)
        self._robust_lp.budget = budget
        sol = self._robust_lp.solve(lp, **kwargs)
        if len(sol.attempts) > 1:
            self.stats.bump("lp_failovers")
            self.metrics.inc("lp_failovers")
            self._emit(
                "lp_failover",
                path=[f"{a.backend}/{a.strategy}:{a.status.value}" for a in sol.attempts],
                status=sol.status.value,
            )
        return sol

    # -- presolve ------------------------------------------------------------

    def presolve(self) -> int:
        """Run presolver plugins to a fixpoint; returns total reductions.

        Called once before the tree search — and called *again* inside
        every ParaSolver on each received subproblem (layered presolving).
        """
        if not self.params.presolve:
            self._presolved = True
            return 0
        total = 0
        for _round in range(20):
            round_reductions = 0
            for pre in self._active("presolver"):
                round_reductions += self._guarded(pre, "presolve", 0, lambda p=pre: p.presolve(self))
            total += round_reductions
            if round_reductions == 0:
                break
        self.stats.presolve_reductions += total
        self._presolved = True
        return total

    # -- incumbent management --------------------------------------------

    @property
    def cutoff_bound(self) -> float:
        """Nodes with lower bound >= this value are pruned."""
        if self.incumbent is None:
            return math.inf
        val = self.incumbent.value
        if getattr(self.model, "objective_integral", False):
            return val - 1.0 + self.tol.feas
        return val - self.tol.optimality * max(1.0, abs(val))

    def add_solution(
        self,
        value: float,
        x: np.ndarray | None = None,
        data: Any = None,
        check: bool = True,
    ) -> bool:
        """Offer a primal solution; keeps it if it improves the incumbent.

        With ``check=True`` and an available ``x``, linear rows and
        constraint handlers validate the point first.
        """
        if self.incumbent is not None and value >= self.incumbent.value - self.tol.eps:
            return False
        if check and x is not None:
            if not self.model.check_linear(x, self.tol.feas):
                return False
            if not self._check_candidate(x):
                return False
        self.incumbent = Solution(value, None if x is None else np.asarray(x, dtype=float).copy(), data)
        self._emit("bb_incumbent", value=value, source="solution")
        if self._tree is not None:
            self.stats.nodes_pruned += self._tree.prune_worse_than(self.cutoff_bound)
        for ev in self._active("event"):
            self._guarded(ev, "on_new_incumbent", None, lambda e=ev: e.on_new_incumbent(self, value, data))
        return True

    def set_cutoff_value(self, value: float) -> None:
        """Install an externally known primal bound (UG incumbent sharing)."""
        if self.incumbent is None or value < self.incumbent.value:
            self.incumbent = Solution(value, None, None)
            self._emit("bb_incumbent", value=value, source="external")
            if self._tree is not None:
                self.stats.nodes_pruned += self._tree.prune_worse_than(self.cutoff_bound)

    # -- bounds at the current node ----------------------------------------

    def local_bounds(self, j: int) -> tuple[float, float]:
        assert self._local_lb is not None and self._local_ub is not None
        return float(self._local_lb[j]), float(self._local_ub[j])

    def tighten_lb(self, j: int, value: float, reason: tuple[int, ...] | None = None) -> bool:
        """Raise the local lower bound of variable ``j``; True if changed.

        ``reason`` names the variables whose bounds implied this
        tightening (for conflict analysis); None marks the tightening
        *opaque* — conflicts needing it as an antecedent are abandoned.
        """
        assert self._local_lb is not None
        if value > self._local_lb[j] + self.tol.eps:
            self._local_lb[j] = value
            self.stats.propagation_tightenings += 1
            if self.conflict is not None:
                self.conflict.note_tightening(j, "lb", value, reason)
            return True
        return False

    def tighten_ub(self, j: int, value: float, reason: tuple[int, ...] | None = None) -> bool:
        """Lower the local upper bound of variable ``j``; True if changed."""
        assert self._local_ub is not None
        if value < self._local_ub[j] - self.tol.eps:
            self._local_ub[j] = value
            self.stats.propagation_tightenings += 1
            if self.conflict is not None:
                self.conflict.note_tightening(j, "ub", value, reason)
            return True
        return False

    @property
    def current_node(self) -> Node | None:
        return self._current_node

    # -- tree state -----------------------------------------------------------

    def setup(
        self,
        root_bounds: dict[int, tuple[float, float]] | None = None,
        root_local_data: dict[str, Any] | None = None,
        root_estimate: float = -math.inf,
    ) -> None:
        """Initialise the tree with a single root node.

        ``root_bounds``/``root_local_data`` seed the root with a received
        subproblem (UG ParaSolver use); plain solves pass nothing.
        """
        if not self._presolved:
            self.presolve()
        self._setup_symmetry()
        self._setup_args = (dict(root_bounds or {}), dict(root_local_data or {}), root_estimate)
        self._tree = NodeTree(self.params.node_selection)
        root = Node(0, -1, 0, root_estimate, dict(root_bounds or {}), dict(root_local_data or {}))
        self._node_counter = 1
        self._tree.push(root)
        self.stats.nodes_created += 1  # the root, counted once per tree
        self._processed_any = False
        self._root_processed = False
        self._root_tightenings = {}
        self._nodes_at_tree_start = self.stats.nodes_processed
        self.estimator.reset()
        if self.tracer.enabled:
            self._emit("plugin_spec", spec=self.registry.spec())

    def _setup_symmetry(self) -> None:
        """Detect formulation symmetry once (post-presolve) and install
        the reduction propagator for the configured mode.

        Gated to purely linear models: a constraint handler or relaxator
        owns constraints the variable/constraint graph cannot see, so
        generators found there would not be model symmetries at all.
        Detection is deterministic (no RNG), so every rank of a UG run
        derives the identical generator set — the soundness condition
        for applying symmetry reductions under racing.
        """
        if self.params.symmetry_mode == "off" or self._symmetry_done:
            return
        self._symmetry_done = True
        if self.registry.plugins("conshdlr") or self.relaxator is not None:
            self._emit("symmetry_skipped", reason="nonlinear_plugins")
            return
        info = find_generators(
            self.model, max_generators=self.params.symmetry_max_generators
        )
        self.symmetry = info
        if not info.nontrivial:
            self._emit("symmetry_skipped", reason="no_generators")
            return
        prop: Propagator
        if self.params.symmetry_mode == "orbital":
            prop = OrbitalFixingPropagator(info, self.model)
        else:
            prop = LexSymmetryPropagator(info, self.model)
        self.registry.register("propagator", prop)
        self.stats.bump("symmetry_generators", len(info.generators))
        self.metrics.inc("symmetry_generators", len(info.generators))
        self._emit(
            "symmetry_detected",
            mode=self.params.symmetry_mode,
            generators=len(info.generators),
            orbits=len(info.orbits),
        )

    def n_open(self) -> int:
        return 0 if self._tree is None else len(self._tree)

    def dual_bound(self) -> float:
        """Global dual (lower) bound of the current search state.

        Dropped (unresolved) subtrees cap the bound: whatever proof the
        explored tree carries, the lost part may still hide solutions down
        to ``_lost_bound``.  The bound never exceeds the incumbent value.
        """
        if self._tree is None:
            return -math.inf
        bounds = [self._tree.best_bound(), self._lost_bound]
        if self._current_node is not None:
            bounds.append(self._current_node.lower_bound)
        bound = min(bounds)
        if math.isinf(bound) and bound > 0:  # tree empty, nothing lost: proven
            return self.incumbent.value if self.incumbent is not None else math.inf
        if self.incumbent is not None:
            bound = min(bound, self.incumbent.value)
        return bound

    def _final_status(self) -> SolveStatus:
        """Status once the tree is exhausted, honoring completeness holes.

        With unresolved nodes dropped below the incumbent value, neither
        OPTIMAL nor INFEASIBLE can be claimed (the lost subtree may hide a
        better solution) — same contract as UG's abandoned racing subtrees.
        """
        if self.incumbent is None:
            return SolveStatus.UNKNOWN if math.isfinite(self._lost_bound) else SolveStatus.INFEASIBLE
        if math.isfinite(self._lost_bound) and self.incumbent.value > self._lost_bound + self.tol.eps:
            return SolveStatus.UNKNOWN
        return SolveStatus.OPTIMAL

    def extract_open_node(self) -> Node | None:
        """Remove the heaviest open node (UG load balancing)."""
        if self._tree is None:
            return None
        return self._tree.extract_heaviest()

    def open_nodes(self) -> list[Node]:
        return [] if self._tree is None else self._tree.nodes()

    def inject_node(self, node: Node) -> None:
        """Push an externally supplied node into the tree."""
        assert self._tree is not None
        node.node_id = self._node_counter
        self._node_counter += 1
        self._tree.push(node)

    # -- estimation-driven restarts -----------------------------------------

    def _capture_root_tightenings(self, root: Node) -> None:
        """Record globally valid bound tightenings proven at the root.

        A restart re-creates the root with these merged in, so root
        propagation/conflict/lex reductions are not re-derived and — more
        importantly — are not *lost* when the tree is discarded.
        """
        if self._local_lb is None or self._local_ub is None:
            return
        tight: dict[int, tuple[float, float]] = {}
        for j, v in enumerate(self.model.variables):
            lo0, hi0 = v.lb, v.ub
            if j in root.bound_changes:
                slo, shi = root.bound_changes[j]
                lo0, hi0 = max(lo0, slo), min(hi0, shi)
            lo, hi = float(self._local_lb[j]), float(self._local_ub[j])
            if lo > lo0 + self.tol.eps or hi < hi0 - self.tol.eps:
                tight[j] = (lo, hi)
        self._root_tightenings = tight

    def _restart(self) -> None:
        """In-solve root restart: discard the tree, keep the knowledge.

        Carried across the restart: the incumbent, the global cut pool,
        the learned-conflict pool, root bound tightenings, and the proven
        global dual bound (installed as the fresh root's lower bound so
        the reported bound never regresses).  The fresh root reuses node
        id 0 at depth 0 — the tree auditor treats that as a tree reset,
        exactly as it does for UG subproblem handoffs.
        """
        assert self._tree is not None
        self._restart_mgr.note_restart()
        carried_bound = self.dual_bound()
        root_bounds, root_local_data, root_estimate = self._setup_args
        merged = dict(root_bounds)
        for j, (lo, hi) in self._root_tightenings.items():
            if j in merged:
                olo, ohi = merged[j]
                merged[j] = (max(olo, lo), min(ohi, hi))
            else:
                merged[j] = (lo, hi)
        est = root_estimate
        if math.isfinite(carried_bound):
            est = max(est, carried_bound)
        self.stats.bump("restarts")
        self.metrics.inc("kernel_restarts")
        self._emit(
            "restart",
            number=self._restart_mgr.done,
            nodes_processed=self.stats.nodes_processed - self._nodes_at_tree_start,
            open_nodes=len(self._tree),
            bound=carried_bound,
            conflicts=0 if self.conflict is None else len(self.conflict.pool),
            tightenings=len(self._root_tightenings),
        )
        self._tree = NodeTree(self.params.node_selection)
        root = Node(0, -1, 0, est, merged, dict(root_local_data))
        self._node_counter = 1
        self._tree.push(root)
        self.stats.nodes_created += 1
        self._root_processed = False
        self._nodes_at_tree_start = self.stats.nodes_processed
        self.estimator.reset()

    # -- the step API -----------------------------------------------------------

    def step(self) -> StepOutcome:
        """Process one branch-and-bound node; returns what happened."""
        if self._tree is None:
            raise PluginError("setup() must be called before step()")
        if self._degraded is not None:
            return StepOutcome(True, SolveStatus.NUMERICAL_ERROR, 0.0)
        if self.budget.memory_pressure():
            self._relieve_memory_pressure()
        work = 0.0
        new_solution: Solution | None = None
        cutoff = self.cutoff_bound

        while self._tree:
            node = self._tree.pop()
            if node.lower_bound >= cutoff:
                self.stats.nodes_pruned += 1
                self.estimator.observe_leaf(node.depth)
                self._emit_bb_node(node, node.lower_bound, "pruned_bound", 0, None, cutoff, False)
                continue
            break
        else:
            return StepOutcome(True, self._final_status(), 0.0)

        self._current_node = node
        is_root = not self._root_processed
        incumbent_before = self.incumbent
        bound_in = node.lower_bound
        self._node_outcome = ("branched", 0, None)
        work += WORK_PER_NODE
        try:
            work += self._process_node(node, is_root)
        finally:
            self._current_node = None
            self._processed_any = True
            self._root_processed = True
        self.stats.nodes_processed += 1
        self.stats.total_work += work
        outcome, n_children, sol_value = self._node_outcome
        if outcome == "branched" and n_children > 0:
            self.estimator.observe_internal(node.depth)
        else:
            self.estimator.observe_leaf(node.depth)
        # cutoff re-read after processing: mid-node incumbents tighten it,
        # and the last prune decision inside the node used the live value
        self._emit_bb_node(node, bound_in, outcome, n_children, sol_value, self.cutoff_bound, True)
        if is_root:
            self.stats.root_work = work
            self.stats.root_bound = self.dual_bound()
            self._capture_root_tightenings(node)
        if self.incumbent is not incumbent_before:
            new_solution = self.incumbent

        if self._degraded is not None:
            # essential-plugin failure during this node: stop with a valid
            # dual bound instead of propagating the crash
            return StepOutcome(True, SolveStatus.NUMERICAL_ERROR, work, new_solution)
        if not self._tree:
            return StepOutcome(True, self._final_status(), work, new_solution)
        if self.incumbent is not None:
            gap = self.tol.rel_gap(self.incumbent.value, self.dual_bound())
            if gap <= self.params.gap_limit:
                return StepOutcome(True, SolveStatus.GAP_LIMIT, work, new_solution)
        if self._restart_mgr.should_restart(
            self.estimator, self.stats.nodes_processed - self._nodes_at_tree_start
        ):
            self._restart()
        return StepOutcome(False, SolveStatus.UNKNOWN, work, new_solution)

    # -- node processing internals -----------------------------------------

    def _install_local_bounds(self, node: Node) -> bool:
        n = self.model.num_variables
        self._local_lb = np.array([v.lb for v in self.model.variables], dtype=float)
        self._local_ub = np.array([v.ub for v in self.model.variables], dtype=float)
        for j, (lo, hi) in node.bound_changes.items():
            if j >= n:
                continue
            self._local_lb[j] = max(self._local_lb[j], lo)
            self._local_ub[j] = min(self._local_ub[j], hi)
        if self.conflict is not None:
            # conflict learning is sound only at nodes whose infeasibility
            # proofs use globally valid facts: local rows/data would smuggle
            # subtree-only constraints into a "global" clause
            self.conflict.begin_node(node, not node.local_data and not node.local_rows)
        clashes = np.flatnonzero(self._local_lb > self._local_ub + self.tol.feas)
        if clashes.size:
            self._learn_conflict(tuple(int(j) for j in clashes))
            return False
        return True

    def _learn_conflict(self, seed: tuple[int, ...]) -> None:
        """Resolve an infeasibility seed to a learned clause (if sound)."""
        if self.conflict is None or not seed:
            return
        clause = self.conflict.analyze(seed)
        if clause is not None:
            self.stats.bump("conflicts_learned")
            self.metrics.inc("conflicts_learned")
            self._emit("conflict_learned", literals=len(clause.lits), source="propagation")
        else:
            self.stats.bump("conflicts_abandoned")

    def _learn_lp_conflict(self) -> None:
        """Learn the all-decision no-good from an exact-LP infeasibility."""
        if self.conflict is None:
            return
        clause = self.conflict.analyze_all_decisions()
        if clause is not None:
            self.stats.bump("conflicts_learned")
            self.metrics.inc("conflicts_learned")
            self._emit("conflict_learned", literals=len(clause.lits), source="lp")
        else:
            self.stats.bump("conflicts_abandoned")

    def _propagate(self, node: Node) -> PropagationStatus:
        if not self.params.propagation:
            return PropagationStatus.UNCHANGED
        overall = PropagationStatus.UNCHANGED
        for _round in range(5):
            changed = False
            for prop in self._active("propagator"):
                res = self._guarded(
                    prop, "propagate", PropagationResult(), lambda p=prop: p.propagate(self, node)
                )
                if res.status is PropagationStatus.INFEASIBLE:
                    self._learn_conflict(res.conflict)
                    return PropagationStatus.INFEASIBLE
                if res.status is PropagationStatus.REDUCED:
                    changed = True
            for h in self.conshdlrs:
                res = self._guarded(
                    h, "propagate", PropagationResult(), lambda p=h: p.propagate(self, node)
                )
                if res.status is PropagationStatus.INFEASIBLE:
                    self._learn_conflict(res.conflict)
                    return PropagationStatus.INFEASIBLE
                if res.status is PropagationStatus.REDUCED:
                    changed = True
            if changed:
                overall = PropagationStatus.REDUCED
            else:
                break
            assert self._local_lb is not None and self._local_ub is not None
            clashes = np.flatnonzero(self._local_lb > self._local_ub + self.tol.feas)
            if clashes.size:
                self._learn_conflict(tuple(int(j) for j in clashes))
                return PropagationStatus.INFEASIBLE
        return overall

    def _build_lp(self) -> LinearProgram:
        assert self._local_lb is not None and self._local_ub is not None
        lp = LinearProgram()
        for v in self.model.variables:
            lp.add_variable(self._local_lb[v.index], self._local_ub[v.index], v.obj, v.name)
        for cons in self.model.constraints:
            lp.add_row(cons.coefs, cons.lhs, cons.rhs, cons.name)
        for cut in self.cutpool:
            lp.add_row(dict(cut.coefs), cut.lhs, cut.rhs, cut.name)
        node = self._current_node
        if node is not None:
            for row in node.local_rows:
                lp.add_row(dict(row.coefs), row.lhs, row.rhs, row.name)
        return lp

    def _solve_relaxation(self, node: Node, is_root: bool) -> RelaxationResult:
        if self.relaxator is not None:
            # the relaxator is essential: its exceptions are contained, but
            # tripping quarantine degrades the whole solve (there is no
            # substitute bounding oracle to fall back on)
            try:
                res = self.relaxator.solve(self, node)
            except Exception as exc:
                if self._record_plugin_failure(self.relaxator, "relax", exc):
                    self._degrade("relaxator")
                self.stats.lp_solves += 1
                return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, WORK_PER_NODE)
            self.stats.lp_solves += 1
            return res
        lp = self._build_lp()
        sol = self.solve_lp_robust(lp)
        self.stats.lp_solves += 1
        self.stats.lp_iterations += sol.iterations
        work = WORK_PER_LP_ITER * max(sol.iterations, 1)
        if sol.status is LPStatus.INFEASIBLE:
            # exact-LP path only: a plugin relaxator's INFEASIBLE answer
            # may be heuristic, so nothing is learned on that branch above
            self._learn_lp_conflict()
            return RelaxationResult(RelaxationStatus.INFEASIBLE, math.inf, None, work)
        if sol.status is LPStatus.UNBOUNDED:
            return RelaxationResult(RelaxationStatus.UNBOUNDED, -math.inf, None, work)
        if sol.status is LPStatus.TIME_LIMIT:
            self._note_budget_stop("relaxation")
            return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, work)
        if sol.status is not LPStatus.OPTIMAL:
            # the whole failover chain surrendered: relaxation unavailable,
            # the node is still resolved by branching on the raw problem
            return RelaxationResult(RelaxationStatus.FAILED, -math.inf, None, work)
        bound = sol.objective + self.model.obj_offset
        return RelaxationResult(RelaxationStatus.OPTIMAL, bound, sol.x, work)

    def _separate(self, node: Node, x: np.ndarray, is_root: bool) -> tuple[int, float]:
        """One separation round; returns (#cuts added, work)."""
        if not self.params.separation:
            return 0, 0.0
        added = 0
        work = 0.0
        budget = self.params.max_cuts_per_round
        for plugin in list(self.conshdlrs) + self._active("separator"):
            if added >= budget:
                break
            sep = getattr(plugin, "separate", None)
            if sep is None:
                continue
            cuts = self._guarded(plugin, "separate", (), lambda s=sep: s(self, node, x))
            for cut in cuts:
                if added >= budget:
                    break
                if cut.violation(x) <= self.tol.feas:
                    continue
                if self.cutpool.add(cut):
                    added += 1
                    work += WORK_PER_CUT
        self.stats.cuts_added += added
        self.stats.sepa_rounds += 1
        return added, work

    def _fractional_candidates(self, x: np.ndarray) -> list[int]:
        frac = [
            j
            for j in self.model.integer_indices
            if not self.tol.is_integral(float(x[j]))
        ]
        return frac

    def _check_candidate(self, x: np.ndarray) -> bool:
        # check() is the feasibility gate: it is never skipped by
        # quarantine, and a crashing check conservatively rejects the
        # candidate (accepting an unverified point could corrupt the
        # incumbent, rejecting only costs a solution)
        for h in self.conshdlrs:
            try:
                ok = h.check(self, x)
            except Exception as exc:
                self._record_plugin_failure(h, "check", exc)
                return False
            if not ok:
                return False
        return True

    def _run_heuristics(self, node: Node, x: np.ndarray | None, is_root: bool) -> None:
        freq = self.params.heur_frequency * self._heur_throttle
        if not self.params.heuristics or freq <= 0:
            return
        if not is_root and self.stats.nodes_processed % freq != 0:
            return
        if self.budget.time_exceeded():
            self._note_budget_stop("heuristics")
            return
        for heur in self._active("heuristic"):
            self._guarded(heur, "run", None, lambda h=heur: h.run(self, node, x))

    def _branch(self, node: Node, x: np.ndarray | None) -> int:
        rules = self._active("branching")
        if self.params.branching_rule:
            rules = [r for r in rules if r.name == self.params.branching_rule] or rules
        failed = 0
        for rule in rules:
            if self.quarantine.is_quarantined(rule.name):
                failed += 1
                continue
            try:
                children = rule.branch(self, node, x)
            except Exception as exc:
                failed += 1
                self._record_plugin_failure(rule, "branch", exc)
                continue
            if children:
                assert self._tree is not None
                n_pushed = 0
                for spec in children:
                    est = spec.estimate if spec.estimate is not None else node.lower_bound
                    child = node.child(
                        self._node_counter,
                        spec.bound_changes,
                        spec.local_update,
                        est,
                        tuple(spec.local_rows),
                    )
                    self._node_counter += 1
                    if child.lower_bound < self.cutoff_bound:
                        self._tree.push(child)
                        n_pushed += 1
                    else:
                        self.stats.nodes_pruned += 1
                self.stats.nodes_created += n_pushed
                return n_pushed
        if rules and failed == len(rules):
            # branching is essential: when the *last* usable rule fails by
            # exception/quarantine the node cannot be split at all
            raise EssentialPluginFailure("every branching rule failed; cannot split the node")
        raise PluginError("no branching rule produced children for an unresolved node")

    def _process_node(self, node: Node, is_root: bool) -> float:
        work = 0.0
        if not self._install_local_bounds(node):
            self.stats.nodes_pruned += 1
            self._node_outcome = ("infeasible", 0, None)
            return work
        if self._propagate(node) is PropagationStatus.INFEASIBLE:
            self.stats.nodes_pruned += 1
            self._node_outcome = ("infeasible", 0, None)
            return work

        max_rounds = self.params.max_sepa_rounds_root if is_root else self.params.max_sepa_rounds
        x: np.ndarray | None = None
        bound = node.lower_bound
        rounds = 0
        while True:
            rel = self._solve_relaxation(node, is_root)
            work += rel.work
            if rel.status is RelaxationStatus.INFEASIBLE:
                self.stats.nodes_pruned += 1
                self._node_outcome = ("infeasible", 0, None)
                return work
            if rel.status in (RelaxationStatus.UNBOUNDED, RelaxationStatus.FAILED):
                # cannot bound: resolve by branching on the raw node
                x = None
                break
            x = rel.x
            prev_bound = bound
            bound = max(bound, rel.bound)
            node.lower_bound = bound
            if bound >= self.cutoff_bound:
                self.stats.nodes_pruned += 1
                self._node_outcome = ("pruned_bound", 0, None)
                return work
            assert x is not None
            if rounds >= max_rounds:
                break
            if self.budget.time_exceeded():
                # deadline hit mid-cut-loop: keep the bound proved so far
                self._note_budget_stop("cut_loop")
                break
            n_cuts, sep_work = self._separate(node, x, is_root)
            work += sep_work
            rounds += 1
            if n_cuts == 0:
                break
            if rounds > 1 and bound - prev_bound < self.params.min_bound_improve * max(1.0, abs(bound)):
                # tailing off: keep the cuts but stop re-solving
                break

        for ev in self._active("event"):
            self._guarded(ev, "on_node_solved", None, lambda e=ev: e.on_node_solved(self, node, bound))

        if x is not None:
            # lazy-constraint loop: an integral relaxation point rejected by
            # a constraint handler must be cut off (possibly by a pool cut
            # the tailing-off shortcut never re-solved against) until it is
            # either feasible, fractional, or the node is pruned.
            for _attempt in range(100):
                frac = self._fractional_candidates(x)
                if frac:
                    break
                if self._check_candidate(x):
                    value = self.model.objective_value(x)
                    self.add_solution(value, x, check=False)
                    self._node_outcome = ("solution", 0, value)
                    return work
                n_cuts, sep_work = self._separate(node, x, is_root)
                work += sep_work
                stale = n_cuts == 0 and (
                    any(cut.violation(x) > self.tol.feas for cut in self.cutpool)
                    or any(row.violation(x) > self.tol.feas for row in node.local_rows)
                )
                if n_cuts == 0 and not stale:
                    break  # nothing cuts it off: fall through to branching
                rel = self._solve_relaxation(node, is_root)
                work += rel.work
                if rel.status is RelaxationStatus.INFEASIBLE:
                    self.stats.nodes_pruned += 1
                    self._node_outcome = ("infeasible", 0, None)
                    return work
                if rel.status is not RelaxationStatus.OPTIMAL:
                    x = None
                    break
                x = rel.x
                node.lower_bound = max(node.lower_bound, rel.bound)
                if node.lower_bound >= self.cutoff_bound:
                    self.stats.nodes_pruned += 1
                    self._node_outcome = ("pruned_bound", 0, None)
                    return work
                assert x is not None

        self._run_heuristics(node, x, is_root)
        if node.lower_bound >= self.cutoff_bound:
            self.stats.nodes_pruned += 1
            self._node_outcome = ("pruned_bound", 0, None)
            return work
        try:
            self._node_outcome = ("branched", self._branch(node, x), None)
        except EssentialPluginFailure:
            # the last usable branching rule failed by exception: the solve
            # degrades to NUMERICAL_ERROR; the dropped node caps the bound
            self._drop_node(node)
            self._degrade("branching_rule", node)
        except PluginError:
            # No rule can split this node (relaxation failed with nothing
            # to branch on, or a constraint handler rejected an integral
            # point that no cut and no spatial split can resolve). Dropping
            # it risks losing solutions in this subtree — record it loudly,
            # cap the reported dual bound by the dropped subtree's bound,
            # and forfeit any optimality claim rather than crash or lie.
            self._drop_node(node)
        return work

    def _drop_node(self, node: Node) -> None:
        """Account for a node pruned without proof (unresolved)."""
        self._node_outcome = ("unresolved", 0, None)
        self._lost_bound = min(self._lost_bound, node.lower_bound)
        self.stats.bump("unresolved_nodes")
        self.stats.nodes_pruned += 1
        self.metrics.inc("unresolved_nodes")
        self._emit("node_unresolved", node=node.node_id, bound=node.lower_bound)

    # -- convenience driver -----------------------------------------------------

    def solve(
        self,
        node_limit: int | None = None,
        time_limit: float | None = None,
        callback: Callable[["CIPSolver"], bool] | None = None,
        budget: Budget | None = None,
    ) -> SolveResult:
        """Run to completion (or to a limit) and return the result.

        ``callback`` is invoked after every node; returning False
        interrupts the solve (UG termination, racing deadline...).
        ``budget`` overrides the internally constructed one (custom
        clock/RSS probes for tests, shared budgets for UG); either way it
        is threaded into the LP/relaxation inner loops, so a deadline is
        honored mid-relaxation, not only between nodes.
        """
        node_limit = node_limit if node_limit is not None else self.params.node_limit
        time_limit = time_limit if time_limit is not None else self.params.time_limit
        if budget is None:
            budget = Budget(
                time_limit=time_limit,
                node_limit=node_limit,
                soft_memory_limit_mb=self.params.soft_memory_limit_mb,
            )
        if not budget.started:
            budget.start()
        self.budget = budget
        self._clock.reset()
        self._clock.start()
        if self._tree is None:
            self.setup()
        status = SolveStatus.UNKNOWN
        while True:
            outcome = self.step()
            if outcome.finished:
                status = outcome.status
                break
            if self.stats.nodes_processed >= node_limit or self.budget.nodes_exceeded(
                self.stats.nodes_processed
            ):
                status = SolveStatus.NODE_LIMIT
                break
            if self._clock.elapsed >= time_limit or self.budget.time_exceeded():
                status = SolveStatus.TIME_LIMIT
                break
            if callback is not None and not callback(self):
                status = SolveStatus.INTERRUPTED
                break
        self._clock.stop()
        dual = self.dual_bound()
        if status is SolveStatus.OPTIMAL and self.incumbent is not None:
            dual = self.incumbent.value
        return SolveResult(status, self.incumbent, dual, self.stats.nodes_processed, self.stats)
