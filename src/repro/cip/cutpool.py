"""Global cut pool with structural deduplication and age-based eviction."""

from __future__ import annotations

from repro.cip.plugins import Cut


class CutPool:
    """Stores globally valid cuts; deduplicates by coefficient structure."""

    def __init__(self, max_size: int = 100_000) -> None:
        self._cuts: list[Cut] = []
        self._keys: set[tuple] = set()
        self._max_size = max_size

    def add(self, cut: Cut) -> bool:
        """Add ``cut`` unless an identical one is present; True if stored."""
        key = (cut.coefs, round(cut.lhs, 9), round(cut.rhs, 9))
        if key in self._keys:
            return False
        if len(self._cuts) >= self._max_size:
            # evict the oldest third; cuts are regenerable by separators
            drop = len(self._cuts) // 3
            for old in self._cuts[:drop]:
                self._keys.discard((old.coefs, round(old.lhs, 9), round(old.rhs, 9)))
            self._cuts = self._cuts[drop:]
        self._keys.add(key)
        self._cuts.append(cut)
        return True

    def shrink(self, keep_fraction: float = 0.5) -> int:
        """Evict the oldest cuts, keeping ``keep_fraction`` of the pool.

        Used for graceful degradation under memory pressure; cuts are
        regenerable by separators, so this only costs re-separation work.
        Returns the number of cuts evicted.
        """
        keep = max(0, int(len(self._cuts) * keep_fraction))
        drop = len(self._cuts) - keep
        if drop <= 0:
            return 0
        for old in self._cuts[:drop]:
            self._keys.discard((old.coefs, round(old.lhs, 9), round(old.rhs, 9)))
        self._cuts = self._cuts[drop:]
        return drop

    def __len__(self) -> int:
        return len(self._cuts)

    def __iter__(self):
        return iter(self._cuts)

    def clear(self) -> None:
        self._cuts.clear()
        self._keys.clear()
