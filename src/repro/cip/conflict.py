"""Conflict analysis: learn no-good constraints from infeasible nodes.

SCIP-style conflict analysis adapted to this kernel's node model.  Every
node carries *cumulative branching decisions* (``node.bound_changes``);
propagation tightenings live only in the solver's local bound arrays and
are recorded on a per-node **trail** together with their *reasons* (the
variable indices whose bounds implied the tightening).  When a node is
proven infeasible the analyzer resolves the seed conflict backwards
through the trail to the **decision frontier** — the subset of branching
decisions that caused the infeasibility — and learns a no-good clause
over those decisions: at least one of them must be taken differently in
any feasible assignment.

The resolution scheme is decision learning (the all-decision instance of
FUIP cuts): every reasoned tightening is replaced by its reason set
until only decisions remain.  A tightening recorded without a reason is
*opaque*; a conflict that needs an opaque antecedent is abandoned rather
than learned unsoundly (dropping the literal would *strengthen* the
clause, keeping it is equally unsound — abandonment is the only safe
move, and the ``conflicts_abandoned`` counter makes the rate visible).

Learned clauses are globally valid under two structural conditions the
solver enforces per node (see ``CIPSolver``):

* the node has no ``local_rows`` and no ``local_data`` — everything the
  infeasibility proof used (model rows, pool cuts, bound propagation) is
  globally valid or implied by the recorded decisions;
* LP infeasibility is only trusted when the node bound comes from the
  exact LP path, never from a plugin relaxator (whose INFEASIBLE answer
  may be heuristic).

Clauses live in a bounded :class:`ConflictPool` (lowest-activity
eviction) consulted by :class:`ConflictPropagator`, which performs unit
propagation: a fully falsified clause proves the node infeasible, a unit
clause forces its last literal — with the other literals as the recorded
reason, so conflicts can resolve through earlier conflicts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cip.plugins import PropagationResult, PropagationStatus, Propagator

if TYPE_CHECKING:  # pragma: no cover
    from repro.cip.model import Model
    from repro.cip.node import Node
    from repro.cip.solver import CIPSolver

#: trail entry kinds
DECISION = "decision"
REASONED = "reasoned"
OPAQUE = "opaque"


@dataclass
class TrailEntry:
    """One local bound change at the current node."""

    index: int  # position on the trail (resolution order)
    var: int
    which: str  # "lb" or "ub"
    value: float
    kind: str  # DECISION / REASONED / OPAQUE
    reason: tuple[int, ...] = ()


@dataclass
class Clause:
    """A no-good over binary decisions: not all ``var == phase`` hold.

    Equivalently the linear row ``sum_{phase=0} x_j + sum_{phase=1}
    (1 - x_j) >= 1``.  ``lits`` is sorted for deduplication.
    """

    lits: tuple[tuple[int, int], ...]  # (var index, decided phase 0/1)
    activity: float = 0.0
    hits: int = 0

    def key(self) -> frozenset[tuple[int, int]]:
        return frozenset(self.lits)


class ConflictPool:
    """Bounded clause store with lowest-activity eviction."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, int(capacity))
        self.clauses: list[Clause] = []
        self._keys: set[frozenset[tuple[int, int]]] = set()
        self._age = 0

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self):
        return iter(self.clauses)

    def add(self, clause: Clause) -> bool:
        """Insert (deduplicated); True when the pool changed."""
        key = clause.key()
        if key in self._keys:
            return False
        if len(self.clauses) >= self.capacity:
            # evict the least useful clause: lowest (activity, recency)
            worst = min(range(len(self.clauses)), key=lambda i: (self.clauses[i].activity, i))
            self._keys.discard(self.clauses[worst].key())
            del self.clauses[worst]
        self._age += 1
        clause.activity = float(self._age)  # fresh clauses start live
        self.clauses.append(clause)
        self._keys.add(key)
        return True

    def bump(self, clause: Clause) -> None:
        self._age += 1
        clause.activity = float(self._age)
        clause.hits += 1


class ConflictAnalyzer:
    """Per-node trail recording + resolution to the decision frontier."""

    def __init__(self, model: "Model", pool_size: int, max_literals: int) -> None:
        self.model = model
        self.pool = ConflictPool(pool_size)
        self.max_literals = max(1, int(max_literals))
        self._trail: list[TrailEntry] = []
        self._entries_of: dict[int, list[int]] = {}  # var -> trail indices (ascending)
        self._decisions: dict[int, tuple[float, float]] = {}
        self._enabled = False
        self._binary: list[bool] = [
            v.is_integral and v.lb >= -1e-9 and v.ub <= 1.0 + 1e-9 for v in model.variables
        ]

    # -- trail management ---------------------------------------------------

    def begin_node(self, node: "Node", enabled: bool) -> None:
        """Reset the trail; decisions are the node's cumulative changes.

        ``enabled=False`` (node carries local rows/data, or analysis is
        off) keeps the trail empty and makes every hook a no-op.
        """
        self._trail = []
        self._entries_of = {}
        self._decisions = dict(node.bound_changes)
        self._enabled = enabled
        if not enabled:
            return
        for j, (lo, hi) in node.bound_changes.items():
            if j >= len(self._binary):
                continue
            var = self.model.variables[j]
            if lo > var.lb + 1e-12:
                self._push(TrailEntry(len(self._trail), j, "lb", lo, DECISION))
            if hi < var.ub - 1e-12:
                self._push(TrailEntry(len(self._trail), j, "ub", hi, DECISION))

    def _push(self, entry: TrailEntry) -> None:
        self._trail.append(entry)
        self._entries_of.setdefault(entry.var, []).append(entry.index)

    def note_tightening(
        self, j: int, which: str, value: float, reason: Sequence[int] | None
    ) -> None:
        """Record a propagation tightening (reason=None marks it opaque)."""
        if not self._enabled:
            return
        kind = OPAQUE if reason is None else REASONED
        self._push(
            TrailEntry(len(self._trail), j, which, value, kind, tuple(reason or ()))
        )

    # -- resolution ---------------------------------------------------------

    def _entries_before(self, var: int, before: int) -> list[int]:
        return [idx for idx in self._entries_of.get(var, ()) if idx < before]

    def _frontier(self, seed_vars: Iterable[int]) -> set[int] | None:
        """Resolve seed variables back to decisions; None = abandoned.

        Conservatively resolves through *every* trail entry of an
        involved variable (a conflict may hinge on either bound side,
        and the seed does not say which): the closure can only add
        antecedents, which weakens the learned clause but never makes it
        invalid — and guarantees an opaque antecedent is never skipped.
        """
        heap: list[int] = []
        queued: set[int] = set()

        def enqueue(indices: Iterable[int]) -> None:
            for idx in indices:
                if idx not in queued:
                    queued.add(idx)
                    heapq.heappush(heap, -idx)

        for v in seed_vars:
            enqueue(self._entries_of.get(int(v), ()))
        frontier: set[int] = set()
        steps = 0
        while heap:
            steps += 1
            if steps > 10000:  # pathological trail: give up, stay sound
                return None
            entry = self._trail[-heapq.heappop(heap)]
            if entry.kind == DECISION:
                frontier.add(entry.var)
            elif entry.kind == OPAQUE:
                return None
            else:
                for r in entry.reason:
                    enqueue(self._entries_before(int(r), entry.index))
        return frontier

    def _clause_from_frontier(self, frontier: set[int]) -> Clause | None:
        """Build the no-good over the frontier's binary decisions."""
        if not frontier or len(frontier) > self.max_literals:
            return None
        lits = []
        for j in sorted(frontier):
            if j >= len(self._binary) or not self._binary[j]:
                return None  # non-binary decision (e.g. spatial split)
            lo, hi = self._decisions.get(j, (0.0, 1.0))
            if lo >= 0.5 and hi >= 0.5:
                lits.append((j, 1))
            elif hi <= 0.5 and lo <= 0.5:
                lits.append((j, 0))
            else:
                return None  # decision did not fix the binary variable
        return Clause(tuple(lits))

    def analyze(self, seed_vars: Iterable[int]) -> Clause | None:
        """Learn from an infeasibility witnessed by ``seed_vars``' bounds."""
        if not self._enabled:
            return None
        frontier = self._frontier(seed_vars)
        if frontier is None:
            return None
        clause = self._clause_from_frontier(frontier)
        if clause is None or not self.pool.add(clause):
            return None
        return clause

    def analyze_all_decisions(self) -> Clause | None:
        """Learn the full-decision no-good (exact-LP infeasibility: the
        responsible subset is unknown, but the decision set as a whole is
        jointly infeasible).  Reasoned tightenings are implied by the
        decisions plus globally valid constraints, so they preserve the
        clause's validity — but an opaque tightening (e.g. orbital
        fixing, whose justification is group-theoretic rather than
        logical) may itself have caused the LP infeasibility, so any
        opaque entry on the trail abandons the learning."""
        if not self._enabled:
            return None
        if any(e.kind == OPAQUE for e in self._trail):
            return None
        frontier = {e.var for e in self._trail if e.kind == DECISION}
        clause = self._clause_from_frontier(frontier)
        if clause is None or not self.pool.add(clause):
            return None
        return clause


class ConflictPropagator(Propagator):
    """Unit propagation over the learned-conflict pool.

    Registered at the *front* of the propagator order so learned clauses
    prune before the generic propagators spend work re-deriving the same
    infeasibility arithmetically.
    """

    name = "conflict"
    priority = 95

    def __init__(self, analyzer: ConflictAnalyzer) -> None:
        self.analyzer = analyzer

    def propagate(self, solver: "CIPSolver", node: "Node") -> PropagationResult:
        pool = self.analyzer.pool
        tightened = 0
        for clause in list(pool):
            unassigned: list[tuple[int, int]] = []
            satisfied = False
            for j, phase in clause.lits:
                lo, hi = solver.local_bounds(j)
                if phase == 1:
                    # literal means x_j != 1
                    if hi <= 0.5:
                        satisfied = True
                        break
                    if lo < 0.5:
                        unassigned.append((j, phase))
                else:
                    # literal means x_j != 0
                    if lo >= 0.5:
                        satisfied = True
                        break
                    if hi > 0.5:
                        unassigned.append((j, phase))
            if satisfied:
                continue
            others = tuple(j for j, _ in clause.lits)
            if not unassigned:
                # every decision of the no-good holds here: infeasible
                pool.bump(clause)
                solver.stats.bump("conflicts_applied")
                return PropagationResult(
                    PropagationStatus.INFEASIBLE, conflict=others
                )
            if len(unassigned) == 1:
                j, phase = unassigned[0]
                reason = tuple(v for v in others if v != j)
                changed = (
                    solver.tighten_ub(j, 0.0, reason=reason)
                    if phase == 1
                    else solver.tighten_lb(j, 1.0, reason=reason)
                )
                if changed:
                    pool.bump(clause)
                    solver.stats.bump("conflicts_applied")
                    tightened += 1
        status = PropagationStatus.REDUCED if tightened else PropagationStatus.UNCHANGED
        return PropagationResult(status, tightened)
