"""Solver parameters, emphasis presets and racing settings.

SCIP exposes thousands of parameters; we model the subset that drives the
paper's experiments — notably the *emphasis* presets (``easycip`` appears
explicitly in the Figure 1 discussion) and the permutation seed whose
performance impact motivates racing ramp-up (citing MIPLIB 2010).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ModelError


@dataclass
class ParamSet:
    """A flat, typed parameter set.

    Attributes mirror the SCIP parameters that matter for this study.
    ``permutation_seed`` permutes branching tie-breaks and separation
    order; racing ramp-up varies it per ParaSolver.
    """

    # limits
    node_limit: int = 10**9
    time_limit: float = float("inf")
    gap_limit: float = 0.0

    # LP / relaxation
    lp_backend: str = "highs"
    max_sepa_rounds: int = 12
    max_sepa_rounds_root: int = 60
    max_cuts_per_round: int = 50
    min_bound_improve: float = 1e-6

    # tree management
    node_selection: str = "bestbound"  # or "dfs"
    plunge_depth: int = 4

    # plugin toggles
    presolve: bool = True
    propagation: bool = True
    heuristics: bool = True
    separation: bool = True

    # heuristic aggressiveness (frequency: run every k-th node; 0 = off)
    heur_frequency: int = 10
    # heuristic portfolio: None = all registered heuristics; a tuple of
    # plugin names whitelists exactly those (empty tuple = none). Racing
    # ramp-up races differently-composed portfolios against each other.
    heuristic_portfolio: tuple[str, ...] | None = None
    # per-kind plugin whitelists (generalizing heuristic_portfolio to any
    # whitelistable kind): maps kind -> tuple of plugin names. None = no
    # restriction anywhere; a missing kind = that kind unrestricted; an
    # empty tuple disables the kind.  For "heuristic",
    # ``heuristic_portfolio`` takes precedence when set.
    plugin_whitelists: dict[str, tuple[str, ...]] | None = None

    # branching
    branching_rule: str = ""  # empty = highest-priority registered rule

    # -- modern kernel features (all default OFF: the classical kernel
    # -- stays byte-identical; the "modern" emphasis preset enables them)
    # conflict analysis: learn no-good constraints from infeasible
    # propagations/LPs (1-FUIP-style over the bound-change trail)
    conflict_analysis: bool = False
    conflict_pool_size: int = 256  # bounded pool, lowest-activity eviction
    conflict_max_literals: int = 32  # longer conflicts are discarded as weak
    # symmetry handling: "off", "lex" (static lex-leader constraints) or
    # "orbital" (orbital fixing during propagation). One-of: combining
    # both reductions is unsound, so the mode picks exactly one.
    symmetry_mode: str = "off"
    symmetry_max_generators: int = 64
    # symmetry detection seed: deliberately NOT permutation_seed — every
    # rank of a UG run must derive the identical generator set or their
    # per-rank symmetry reductions stop agreeing on which orbit
    # representative survives (see cip/symmetry.py)
    symmetry_seed: int = 0
    # estimation-driven restarts: discard the tree and restart from the
    # root (keeping incumbent, cuts, learned conflicts and root bound)
    # when tree-size estimation says the current tree is blowing up
    restarts: bool = False
    restart_max: int = 1
    restart_min_nodes: int = 100  # never restart before this many nodes
    # trigger when estimated remaining nodes >= factor * nodes processed
    restart_node_factor: float = 4.0

    # robustness: quarantine a non-essential plugin after this many
    # failed callbacks (SCIP-style "disabled for the rest of the solve")
    plugin_max_failures: int = 3
    # escalate failed LP solves through the RobustLPSolver chain
    lp_failover: bool = True
    # advisory memory ceiling; crossing it shrinks the cut pool and
    # throttles heuristics (inf = off, the default — keeps SimEngine
    # runs deterministic)
    soft_memory_limit_mb: float = float("inf")

    # determinism
    permutation_seed: int = 0

    # emphasis name this set was derived from (informational)
    emphasis: str = "default"

    # free-form application-specific knobs (e.g. steiner/extended_reductions)
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # JSON wire codecs decode tuples as lists; normalize so a ParamSet
        # survives an encode -> decode round trip unchanged
        if isinstance(self.heuristic_portfolio, list):
            self.heuristic_portfolio = tuple(self.heuristic_portfolio)
        if self.plugin_whitelists is not None:
            self.plugin_whitelists = {
                str(kind): tuple(names) for kind, names in self.plugin_whitelists.items()
            }
        self._validate()

    def _validate(self) -> None:
        from repro.cip.registry import WHITELISTABLE_KINDS, validate_plugin_names

        if self.symmetry_mode not in ("off", "lex", "orbital"):
            raise ModelError(
                f"unknown symmetry_mode {self.symmetry_mode!r}; choose off, lex or orbital"
            )
        if self.heuristic_portfolio:
            validate_plugin_names(self.heuristic_portfolio, "heuristic_portfolio")
        if self.plugin_whitelists:
            for kind, names in self.plugin_whitelists.items():
                if kind not in WHITELISTABLE_KINDS:
                    raise ModelError(
                        f"plugin_whitelists kind {kind!r} is not whitelistable; "
                        f"choose from {WHITELISTABLE_KINDS}"
                    )
                if names:
                    validate_plugin_names(names, f"plugin_whitelists[{kind!r}]")
        if self.conflict_pool_size < 1 or self.conflict_max_literals < 1:
            raise ModelError("conflict pool size and literal cap must be >= 1")
        if self.restart_max < 0 or self.restart_min_nodes < 1 or self.restart_node_factor <= 0:
            raise ModelError("restart parameters out of range")

    def whitelist_for(self, kind: str) -> tuple[str, ...] | None:
        """Effective whitelist for one plugin kind (None = unrestricted)."""
        if kind == "heuristic" and self.heuristic_portfolio is not None:
            return self.heuristic_portfolio
        if self.plugin_whitelists is not None:
            return self.plugin_whitelists.get(kind)
        return None

    def with_changes(self, **kwargs: Any) -> "ParamSet":
        """Return a copy with the given fields replaced.

        Unknown keys land in :attr:`extras` so applications can introduce
        their own knobs without subclassing.
        """
        known = {k: v for k, v in kwargs.items() if k in self.__dataclass_fields__ and k != "extras"}
        extra = {k: v for k, v in kwargs.items() if k not in self.__dataclass_fields__}
        new = replace(self, **known)
        if extra or "extras" in kwargs:
            merged = dict(self.extras)
            merged.update(kwargs.get("extras", {}))
            merged.update(extra)
            new = replace(new, extras=merged)
        return new

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)


def _emphasis_default() -> ParamSet:
    return ParamSet(emphasis="default")


def _emphasis_easycip() -> ParamSet:
    """The ``easycip`` emphasis: cheap tree, few cuts, frequent heuristics.

    SCIP's easycip targets instances whose difficulty is *not* the LP: it
    reduces separation effort and leans on propagation/heuristics. Figure 1
    of the paper reports it as the most successful racing setting for the
    LP approach on TTD and CLS.
    """
    return ParamSet(
        emphasis="easycip",
        max_sepa_rounds=3,
        max_sepa_rounds_root=10,
        max_cuts_per_round=20,
        heur_frequency=5,
        plunge_depth=8,
    )


def _emphasis_aggressive() -> ParamSet:
    """Aggressive separation and heuristics — pay per-node cost for bound."""
    return ParamSet(
        emphasis="aggressive",
        max_sepa_rounds=25,
        max_sepa_rounds_root=120,
        max_cuts_per_round=100,
        heur_frequency=2,
    )


def _emphasis_feasibility() -> ParamSet:
    """Find solutions fast: DFS, heuristics every node, little separation."""
    return ParamSet(
        emphasis="feasibility",
        node_selection="dfs",
        heur_frequency=1,
        max_sepa_rounds=2,
        max_sepa_rounds_root=8,
    )


def _emphasis_optimality() -> ParamSet:
    """Prove optimality: best-bound, strong separation, rare heuristics."""
    return ParamSet(
        emphasis="optimality",
        node_selection="bestbound",
        heur_frequency=25,
        max_sepa_rounds=20,
        max_sepa_rounds_root=100,
        plunge_depth=0,
    )


def _emphasis_modern() -> ParamSet:
    """The modern-kernel preset: conflict analysis, orbital fixing and
    estimation-driven restarts on (SCIP Suite 8–10 feature set). The
    classical presets keep these off so historical runs stay
    byte-identical."""
    return ParamSet(
        emphasis="modern",
        conflict_analysis=True,
        symmetry_mode="orbital",
        restarts=True,
    )


EMPHASIS_PRESETS = {
    "default": _emphasis_default,
    "easycip": _emphasis_easycip,
    "aggressive": _emphasis_aggressive,
    "feasibility": _emphasis_feasibility,
    "optimality": _emphasis_optimality,
    "modern": _emphasis_modern,
}


def emphasis(name: str) -> ParamSet:
    """Return a fresh :class:`ParamSet` for the named emphasis preset."""
    try:
        return EMPHASIS_PRESETS[name]()
    except KeyError:
        raise ModelError(f"unknown emphasis {name!r}; choose from {sorted(EMPHASIS_PRESETS)}") from None
