"""ug[MISDP] glue — the misdp_plugins.cpp analogue (must stay <200 LoC).

The racing settings interleave the two solution approaches exactly as
the paper describes: odd settings are SDP-based (nonlinear B&B), even
settings are LP-based (eigenvector cutting planes), with emphasis and
permutation varied within each — racing ramp-up then dynamically picks
the better relaxation per instance.
"""

from __future__ import annotations

from repro.cip.params import ParamSet, emphasis
from repro.sdp.model import MISDP
from repro.sdp.solver import MISDPSolver
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


class MISDPHandle(SolverHandle):
    """Wraps a MISDPSolver working on one UG subproblem."""

    def __init__(self, solver: MISDPSolver) -> None:
        self.solver = solver

    def step(self) -> HandleStep:
        cip = self.solver.cip
        assert cip is not None
        out = cip.step()
        sols = []
        if out.new_solution is not None:
            y = out.new_solution.x
            payload = None if y is None else [float(v) for v in y]
            sols = [ParaSolution(out.new_solution.value, payload)]
        return HandleStep(
            out.finished, out.work, cip.dual_bound(), cip.n_open(), sols, 1, status=out.status.value
        )

    def attach_telemetry(self, tracer, rank: int = 0) -> None:
        if self.solver.cip is not None:
            self.solver.cip.tracer = tracer
            self.solver.cip.trace_rank = rank

    def extract_para_node(self) -> ParaNode | None:
        cip = self.solver.cip
        assert cip is not None
        node = cip.extract_open_node()
        if node is None:
            return None
        bounds = self.solver.node_to_subproblem(node)
        return ParaNode(
            payload={"bounds": [list(b) for b in bounds]},
            dual_bound=node.lower_bound,
            depth=node.depth,
        )

    def inject_incumbent_value(self, value: float) -> None:
        assert self.solver.cip is not None
        self.solver.cip.set_cutoff_value(value)

    def dual_bound(self) -> float:
        assert self.solver.cip is not None
        return self.solver.cip.dual_bound()

    def n_open(self) -> int:
        assert self.solver.cip is not None
        return self.solver.cip.n_open()


class MISDPUserPlugins(UserPlugins):
    """Declares the MISDP solver to UG."""

    base_solver_name = "MISDP"

    def __init__(self, default_approach: str = "sdp") -> None:
        self.default_approach = default_approach

    def root_para_node(self, instance: MISDP) -> ParaNode:
        return ParaNode(payload={"bounds": []})

    def create_handle(self, instance, node, params, seed, incumbent):
        approach = str(params.get_extra("misdp/approach", self.default_approach))
        solver = MISDPSolver(instance, params=params, approach=approach, seed=seed)
        bounds = tuple((int(i), float(lo), float(hi)) for i, lo, hi in node.payload.get("bounds", []))
        solver.prepare(bounds, cutoff_value=None if incumbent is None else incumbent.value)
        return MISDPHandle(solver)

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        """Setting k (1-based): odd = SDP-based, even = LP-based."""
        emphases = ("default", "easycip", "aggressive", "feasibility", "optimality")
        sets: list[ParamSet] = []
        for k in range(1, n + 1):
            approach = "sdp" if k % 2 == 1 else "lp"
            emph = emphasis(emphases[(k - 1) // 2 % len(emphases)])
            sets.append(
                emph.with_changes(
                    permutation_seed=base.permutation_seed + k,
                    extras={"misdp/approach": approach},
                )
            )
        return sets
