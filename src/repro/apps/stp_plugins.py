"""ug[SteinerJack] glue — the stp_plugins.cpp analogue (must stay <200 LoC)."""

from __future__ import annotations

import math

from repro.cip.params import ParamSet
from repro.steiner.graph import SteinerGraph
from repro.steiner.reductions import reduce_graph
from repro.steiner.solver import SteinerSolver
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution
from repro.ug.user_plugins import HandleStep, SolverHandle, UserPlugins


# Heuristic portfolios raced during ramp-up (Figure-1 style): each is a
# (name, whitelist) pair; None = every registered heuristic. The names
# are the plugin names registered in SteinerSolver._build_cip.
STP_PORTFOLIOS: tuple[tuple[str, tuple[str, ...] | None], ...] = (
    ("full", None),
    ("construct", ("steiner_ascend_prune", "steiner_tm")),
    ("mst", ("steiner_mstc", "steiner_key_vertex")),
    ("local", ("steiner_tm", "steiner_key_vertex")),
    ("lean", ()),
)

# Opt-in (extras["stp/race_plugin_sets"]): racing lanes additionally vary
# whole per-kind plugin whitelists, not just the heuristic portfolio.
# Only optional plugins are toggled — the Steiner constraint handler is a
# conshdlr (not whitelistable), so feasibility never depends on a lane.
STP_PLUGIN_SETS: tuple[tuple[str, dict[str, tuple[str, ...]] | None], ...] = (
    ("all", None),
    ("no_dual_fixing", {"propagator": ("integrality", "linear_activity")}),
    ("no_generic_branching", {"branching": ("steinervertex",)}),
    ("lean_propagation", {"propagator": ("integrality",)}),
)


class SteinerHandle(SolverHandle):
    """Wraps a SteinerSolver working on one UG subproblem."""

    def __init__(self, solver: SteinerSolver) -> None:
        self.solver = solver
        self._done = False

    def step(self) -> HandleStep:
        if self.solver.cip is None:  # subproblem solved by layered presolve alone
            sols = []
            if self.solver._trivial_solution is not None and not self._done:
                edges, cost = self.solver._trivial_solution
                sols = [ParaSolution(cost, {"edges": list(edges)})]
            self._done = True
            return HandleStep(True, 1e-4, math.inf, 0, sols, 1, status="optimal")
        out = self.solver.cip.step()
        sols = []
        if out.new_solution is not None:
            sols = [ParaSolution(out.new_solution.value, {"edges": self.solver.extract_original_edges()})]
        return HandleStep(
            out.finished,
            out.work,
            self.solver.cip.dual_bound(),
            self.solver.cip.n_open(),
            sols,
            1,
            status=out.status.value,
        )

    def attach_telemetry(self, tracer, rank: int = 0) -> None:
        if self.solver.cip is not None:
            self.solver.cip.tracer = tracer
            self.solver.cip.trace_rank = rank

    def extract_para_node(self) -> ParaNode | None:
        cip = self.solver.cip
        if cip is None:
            return None
        node = cip.extract_open_node()
        if node is None:
            return None
        decisions, fixings = self.solver.node_to_subproblem(node)
        payload = {"decisions": [list(d) for d in decisions], "fixings": [list(f) for f in fixings]}
        return ParaNode(payload=payload, dual_bound=node.lower_bound, depth=node.depth)

    def inject_incumbent_value(self, value: float) -> None:
        if self.solver.cip is not None:
            self.solver.cip.set_cutoff_value(value)

    def dual_bound(self) -> float:
        return math.inf if self.solver.cip is None else self.solver.cip.dual_bound()

    def n_open(self) -> int:
        return 0 if self.solver.cip is None else self.solver.cip.n_open()


class SteinerUserPlugins(UserPlugins):
    """Declares the Steiner solver to UG (ScipUserPlugins analogue)."""

    base_solver_name = "SteinerJack"

    def presolve_instance(self, instance: SteinerGraph, params: ParamSet, seed: int) -> SteinerGraph:
        graph = instance.copy()
        reduce_graph(graph, use_extended=bool(params.get_extra("steiner/extended_reductions", False)), seed=seed)
        return graph

    def root_para_node(self, instance: SteinerGraph) -> ParaNode:
        return ParaNode(payload={"decisions": [], "fixings": []})

    def create_handle(self, instance, node, params, seed, incumbent):
        solver = SteinerSolver(instance, params=params, seed=seed)
        decisions = tuple((int(v), str(d)) for v, d in node.payload.get("decisions", []))
        fixings = tuple((int(e), int(h), float(lo), float(hi)) for e, h, lo, hi in node.payload.get("fixings", []))
        solver.prepare(
            decisions,
            fixings,
            cutoff_value=None if incumbent is None else incumbent.value,
            use_extended=bool(params.get_extra("steiner/extended_reductions", True)),
            reduce=bool(params.get_extra("ug/layered_presolve", True)),
            dual_bound_estimate=node.dual_bound,
        )
        return SteinerHandle(solver)

    def racing_param_sets(self, n: int, base: ParamSet) -> list[ParamSet]:
        sets = []
        selections = ("bestbound", "dfs")
        race_plugin_sets = bool(base.get_extra("stp/race_plugin_sets", False))
        for k in range(n):
            pname, portfolio = STP_PORTFOLIOS[k % len(STP_PORTFOLIOS)]
            extras = {"stp/portfolio": pname}
            whitelists = base.plugin_whitelists
            if race_plugin_sets:
                sname, whitelists = STP_PLUGIN_SETS[k % len(STP_PLUGIN_SETS)]
                extras["stp/plugin_set"] = sname
            sets.append(
                base.with_changes(
                    permutation_seed=k,
                    node_selection=selections[k % 2],
                    heur_frequency=(3, 5, 10, 1)[k % 4],
                    max_sepa_rounds=(12, 4, 20, 8)[k % 4],
                    heuristic_portfolio=portfolio,
                    plugin_whitelists=whitelists,
                    extras=extras,
                )
            )
        return sets
