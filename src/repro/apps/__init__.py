"""ug[SCIP-*] application glue — the paper's <200-line files.

``stp_plugins`` and ``misdp_plugins`` mirror ``stp_plugins.cpp`` (173
lines) and ``misdp_plugins.cpp`` (106 lines) from the SCIP Optimization
Suite: all solver logic lives in the sequential packages
(:mod:`repro.steiner`, :mod:`repro.sdp`); these modules only declare how
UG builds, feeds and serializes the customized solvers.
``tests/test_apps_glue.py`` asserts both stay under the 200-line budget.
"""

__all__ = ["SteinerUserPlugins", "MISDPUserPlugins"]


def __getattr__(name: str):
    # lazy imports keep `import repro.apps.stp_plugins` independent of the
    # other application's dependency stack
    if name == "SteinerUserPlugins":
        from repro.apps.stp_plugins import SteinerUserPlugins

        return SteinerUserPlugins
    if name == "MISDPUserPlugins":
        from repro.apps.misdp_plugins import MISDPUserPlugins

        return MISDPUserPlugins
    raise AttributeError(name)
