"""Shared exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors (``TypeError``
etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LPError(ReproError):
    """Raised when an LP cannot be solved (numerical failure, bad input)."""


class InfeasibleError(ReproError):
    """Raised when a problem is proven infeasible where a solution was required."""


class UnboundedError(ReproError):
    """Raised when a relaxation is unbounded."""


class ModelError(ReproError):
    """Raised on inconsistent model construction (bad bounds, unknown variable...)."""


class PluginError(ReproError):
    """Raised when a plugin violates its contract (bad return value, re-registration...)."""


class CommError(ReproError):
    """Raised by the UG communication layer (unknown rank, closed channel...)."""


class CheckpointError(ReproError):
    """Raised when a checkpoint file cannot be written or restored."""


class GraphError(ReproError):
    """Raised on invalid Steiner graph operations (unknown vertex, deleted edge...)."""


class SDPError(ReproError):
    """Raised when the SDP relaxation solver fails to converge or receives bad data."""


class VerificationError(ReproError):
    """Raised when an independent certificate check rejects a claimed result."""
