"""Crash-safe append-only job journal — CRC32 records, fsync, idempotent replay.

The journal is the daemon's only durable state.  Every accepted job
writes a ``submitted`` record carrying its full request; every attempt
writes ``started``; every terminal transition writes exactly one of
``completed`` / ``failed`` / ``cancelled`` with the outcome attached.
The hardening mirrors the checkpoint files of ``repro.ug.checkpoint``
(DESIGN.md §5a): each record is one line of canonical JSON whose
``crc32`` field checksums the rest, and every append is flushed and
fsynced before the daemon acts on the transition it records
(write-ahead: the journal is always at least as new as the in-memory
state it describes).

Replay tolerates exactly the damage a ``kill -9`` can cause: a torn
final line (the write raced the crash) is dropped and counted, and
replay stops cleanly there.  A corrupt record *before* intact ones means
real tampering/bit-rot, which replay also refuses to read past — the
records after it may depend on the lost transition.

:func:`reduce_journal` folds a record stream into per-job end states and
is idempotent by construction: transitions on an already-terminal job
are ignored (and counted), so replaying a journal twice — or replaying
one that recorded a duplicated terminal write — yields the same states.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serve.jobs import JobOutcome, JobState, TERMINAL_STATES

_CRC_KEY = "crc32"

#: journal event names
EV_SUBMITTED = "submitted"
EV_STARTED = "started"
EV_COMPLETED = "completed"  # data carries the outcome (succeeded | degraded | failed)
EV_CANCELLED = "cancelled"
EVENTS = frozenset({EV_SUBMITTED, EV_STARTED, EV_COMPLETED, EV_CANCELLED})


def _canonical(doc: dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


@dataclass
class JournalRecord:
    seq: int
    event: str
    job_id: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_doc(self) -> dict[str, Any]:
        return {"seq": self.seq, "event": self.event, "job": self.job_id, "data": self.data}


class JobJournal:
    """Append-only writer.  One instance owns the file for one daemon life."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # resume the seq counter past whatever is already on disk so a
        # restarted daemon keeps appending monotonically
        replay = replay_journal(self.path)
        self._seq = (replay.records[-1].seq + 1) if replay.records else 0
        self._fh = open(self.path, "ab")

    def append(self, event: str, job_id: str, data: dict[str, Any] | None = None) -> int:
        """Durably write one record; returns its sequence number."""
        if event not in EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        doc = {"seq": self._seq, "event": event, "job": job_id, "data": data or {}}
        doc[_CRC_KEY] = zlib.crc32(_canonical(doc))
        self._fh.write(_canonical(doc) + b"\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._seq += 1
        return self._seq - 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Outcome of reading a journal file back."""

    records: list[JournalRecord] = field(default_factory=list)
    #: bytes of torn tail dropped (a record the crash cut mid-write)
    torn_bytes: int = 0
    #: description of the record that stopped the replay, if any
    corrupt: str | None = None


def replay_journal(path: str | os.PathLike) -> JournalReplay:
    """Read every intact record; stop at the first damaged one.

    A missing file replays to zero records (a fresh daemon).  Damage on
    the *final* line is the expected kill-9 signature and is only
    counted; damage followed by further intact lines is reported via
    ``corrupt`` so the operator can distinguish bit-rot from a crash.
    """
    p = Path(path)
    out = JournalReplay()
    try:
        raw = p.read_bytes()
    except FileNotFoundError:
        return out
    lines = raw.split(b"\n")
    for idx, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            crc = doc.pop(_CRC_KEY)
            if crc != zlib.crc32(_canonical(doc)):
                raise ValueError(f"CRC32 mismatch (stored {crc})")
            rec = JournalRecord(
                seq=int(doc["seq"]),
                event=str(doc["event"]),
                job_id=str(doc["job"]),
                data=dict(doc.get("data", {})),
            )
            if rec.event not in EVENTS:
                raise ValueError(f"unknown event {rec.event!r}")
        except (ValueError, KeyError, TypeError) as exc:
            remainder = sum(len(rest) for rest in lines[idx:]) + max(0, len(lines) - idx - 1)
            if any(rest.strip() for rest in lines[idx + 1:]):
                out.corrupt = f"record {idx + 1} of {p.name} is corrupt ({exc}); replay stopped"
            out.torn_bytes = remainder
            return out
        out.records.append(rec)
    return out


@dataclass
class ReplayedJob:
    """Per-job fold of the journal: the daemon's recovery unit."""

    job_id: str
    request_json: dict[str, Any] | None = None
    state: str = JobState.QUEUED
    outcome_json: dict[str, Any] | None = None
    attempts: int = 0
    #: terminal records seen after the job was already terminal (should
    #: stay 0 — the exactly-once property the crash tests assert)
    duplicate_terminals: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def outcome(self) -> JobOutcome | None:
        return None if self.outcome_json is None else JobOutcome.from_json(self.outcome_json)


def reduce_journal(records: list[JournalRecord]) -> dict[str, ReplayedJob]:
    """Fold records into per-job end states (idempotent, order-respecting)."""
    jobs: dict[str, ReplayedJob] = {}
    for rec in records:
        job = jobs.setdefault(rec.job_id, ReplayedJob(rec.job_id))
        if rec.event == EV_SUBMITTED:
            if job.request_json is None:
                job.request_json = dict(rec.data.get("request", {}))
            continue
        if job.terminal:
            # idempotency: a terminal job never transitions again; count
            # the duplicate so the crash tests can assert exactly-once
            if rec.event in (EV_COMPLETED, EV_CANCELLED):
                job.duplicate_terminals += 1
            continue
        if rec.event == EV_STARTED:
            job.attempts += 1
            job.state = JobState.RUNNING
        elif rec.event == EV_COMPLETED:
            job.outcome_json = dict(rec.data.get("outcome", {}))
            job.state = str(job.outcome_json.get("state", JobState.FAILED))
            if job.state not in TERMINAL_STATES:
                job.state = JobState.FAILED
        elif rec.event == EV_CANCELLED:
            job.state = JobState.CANCELLED
            job.outcome_json = dict(rec.data.get("outcome", {})) or None
    return jobs
