"""Job model of the serving layer: requests, outcomes, typed rejections.

A *job* is one solve campaign over one instance.  Requests are fully
JSON-serializable — the journal stores them verbatim so a restarted
daemon can re-run any job that never reached a terminal state, and the
crash-recovery tests can rebuild the instance offline to re-verify every
served answer.

States follow the graceful-degradation contract (DESIGN.md §5h):

* ``SUCCEEDED`` — solved to proven optimality, certificate checked;
* ``DEGRADED`` — a limit (deadline / node budget) expired first, but the
  best incumbent *and* the dual bound are served with a
  certificate-checked gap — never a bare error;
* ``FAILED`` — nothing certifiable to serve (no incumbent at the limit,
  or the certificate check refused the answer);
* ``CANCELLED`` — the client withdrew the job before it finished.

Admission rejections are *typed* (the HTTP-429 analogue carries
``retry_after``) and deliberately are not job states: a rejected
submission was never accepted, so it never enters the journal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

# -- states ---------------------------------------------------------------------


class JobState:
    """String constants for the job lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    DEGRADED = "degraded"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.DEGRADED, JobState.FAILED, JobState.CANCELLED}
)
#: terminal states whose answer is served to the client (and cacheable)
SERVED_STATES = frozenset({JobState.SUCCEEDED, JobState.DEGRADED})


# -- typed errors ---------------------------------------------------------------


class ServeError(Exception):
    """Base class for serving-layer errors; ``code`` travels on the wire."""

    code = "serve_error"


class InvalidJobError(ServeError):
    """The request cannot be turned into a solvable instance."""

    code = "invalid_job"


class UnknownJobError(ServeError):
    """No job with that id was ever accepted by this daemon."""

    code = "unknown_job"


class AdmissionError(ServeError):
    """A submission was rejected by admission control (the 429 analogue).

    ``retry_after`` is the daemon's estimate (seconds) of when capacity
    frees up; clients should back off at least that long.
    """

    code = "admission_rejected"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class QueueFullError(AdmissionError):
    """The global pending queue is at its bound — load is being shed."""

    code = "queue_full"


class QuotaExceededError(AdmissionError):
    """The tenant hit its own quota (queued or active jobs)."""

    code = "quota_exceeded"


ERROR_CODES = {
    cls.code: cls
    for cls in (ServeError, InvalidJobError, UnknownJobError, AdmissionError,
                QueueFullError, QuotaExceededError)
}


def error_from_code(code: str, message: str, retry_after: float | None = None) -> ServeError:
    """Rebuild the typed exception a wire error response encodes."""
    cls = ERROR_CODES.get(code, ServeError)
    if issubclass(cls, AdmissionError):
        return cls(message, retry_after=1.0 if retry_after is None else retry_after)
    return cls(message)


# -- non-finite floats over JSON ------------------------------------------------


def encode_float(x: float) -> float | str:
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x)


def decode_float(x: Any) -> float:
    if isinstance(x, str):
        return math.inf if x == "inf" else -math.inf
    return float(x)


# -- requests -------------------------------------------------------------------

KINDS = ("stp", "misdp")


@dataclass
class JobRequest:
    """One solve request, fully serializable.

    ``payload`` describes the instance: ``{"stp": "<STP file text>"}``
    for a literal Steiner instance, or ``{"generator": name, "params":
    {...}}`` dispatching into the seeded instance generators of
    ``repro.steiner.instances`` / ``repro.sdp.instances``.

    ``deadline`` is the wall-clock budget (seconds) granted to the solve
    — at expiry the daemon serves the incumbent + certified gap instead
    of failing.  ``node_limit`` / ``virtual_time_limit`` are the
    deterministic counterparts (engine node budget / virtual seconds)
    used when a reproducible degradation point matters more than wall
    time.
    """

    kind: str
    payload: dict[str, Any]
    tenant: str = "default"
    deadline: float | None = None
    n_solvers: int = 1
    seed: int = 0
    node_limit: int | None = None
    virtual_time_limit: float | None = None
    objective_epsilon: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidJobError(f"unknown job kind {self.kind!r}; choose from {KINDS}")
        if not isinstance(self.payload, dict) or not self.payload:
            raise InvalidJobError("payload must be a non-empty object")
        if "stp" not in self.payload and "generator" not in self.payload:
            raise InvalidJobError("payload needs either 'stp' text or a 'generator' spec")
        if self.n_solvers < 1:
            raise InvalidJobError(f"n_solvers must be >= 1, got {self.n_solvers}")
        if self.deadline is not None and not self.deadline > 0:
            raise InvalidJobError(f"deadline must be positive, got {self.deadline}")
        if self.node_limit is not None and self.node_limit < 1:
            raise InvalidJobError(f"node_limit must be >= 1, got {self.node_limit}")
        if self.virtual_time_limit is not None and not self.virtual_time_limit > 0:
            raise InvalidJobError("virtual_time_limit must be positive")

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "tenant": self.tenant,
            "deadline": self.deadline,
            "n_solvers": self.n_solvers,
            "seed": self.seed,
            "node_limit": self.node_limit,
            "virtual_time_limit": self.virtual_time_limit,
            "objective_epsilon": self.objective_epsilon,
        }

    @staticmethod
    def from_json(obj: dict[str, Any]) -> "JobRequest":
        if not isinstance(obj, dict):
            raise InvalidJobError(f"request must be an object, got {type(obj).__name__}")
        known = {
            "kind", "payload", "tenant", "deadline", "n_solvers", "seed",
            "node_limit", "virtual_time_limit", "objective_epsilon",
        }
        unknown = set(obj) - known
        if unknown:
            raise InvalidJobError(f"unknown request fields: {sorted(unknown)}")
        try:
            return JobRequest(
                kind=str(obj.get("kind", "")),
                payload=obj.get("payload") or {},
                tenant=str(obj.get("tenant", "default")),
                deadline=None if obj.get("deadline") is None else float(obj["deadline"]),
                n_solvers=int(obj.get("n_solvers", 1)),
                seed=int(obj.get("seed", 0)),
                node_limit=None if obj.get("node_limit") is None else int(obj["node_limit"]),
                virtual_time_limit=(
                    None if obj.get("virtual_time_limit") is None
                    else float(obj["virtual_time_limit"])
                ),
                objective_epsilon=(
                    None if obj.get("objective_epsilon") is None
                    else float(obj["objective_epsilon"])
                ),
            )
        except (TypeError, ValueError) as exc:
            raise InvalidJobError(f"malformed request: {exc}") from exc


# -- outcomes -------------------------------------------------------------------


@dataclass
class JobOutcome:
    """What a terminal job serves back (objective/bound in the problem's
    natural sense: minimized cost for STP, maximized ``b'y`` for MISDP)."""

    state: str
    objective: float = math.inf
    bound: float = math.inf
    gap: float = math.inf
    solved: bool = False
    certified: bool = False
    solution: Any = None
    detail: str = ""
    from_cache: bool = False
    attempts: int = 1
    checks: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "objective": encode_float(self.objective),
            "bound": encode_float(self.bound),
            "gap": encode_float(self.gap),
            "solved": self.solved,
            "certified": self.certified,
            "solution": self.solution,
            "detail": self.detail,
            "from_cache": self.from_cache,
            "attempts": self.attempts,
            "checks": dict(self.checks),
        }

    @staticmethod
    def from_json(obj: dict[str, Any]) -> "JobOutcome":
        return JobOutcome(
            state=str(obj["state"]),
            objective=decode_float(obj.get("objective", "inf")),
            bound=decode_float(obj.get("bound", "inf")),
            gap=decode_float(obj.get("gap", "inf")),
            solved=bool(obj.get("solved", False)),
            certified=bool(obj.get("certified", False)),
            solution=obj.get("solution"),
            detail=str(obj.get("detail", "")),
            from_cache=bool(obj.get("from_cache", False)),
            attempts=int(obj.get("attempts", 1)),
            checks=dict(obj.get("checks", {})),
        )


@dataclass
class JobRecord:
    """Daemon-side bookkeeping for one accepted job."""

    job_id: str
    request: JobRequest
    state: str = JobState.QUEUED
    outcome: JobOutcome | None = None
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cancel_requested: bool = False
    #: live event stream of the running solve (a repro.obs Tracer)
    tracer: Any = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cost(self) -> int:
        """Scheduling cost: the worker slots the job occupies."""
        return self.request.n_solvers

    def public_view(self) -> dict[str, Any]:
        """The status() wire shape."""
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "tenant": self.request.tenant,
            "kind": self.request.kind,
            "attempts": self.attempts,
        }
        if self.outcome is not None:
            view = self.outcome.to_json()
            # the solution payload can be big; status() reports its size only
            sol = view.pop("solution", None)
            view["solution_size"] = 0 if sol is None else len(sol)
            out["outcome"] = view
        return out
