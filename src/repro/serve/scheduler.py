"""Admission control and fair-share scheduling (deficit round-robin).

Two layers:

* **Admission** — a submission is rejected *typed* (never queued
  unboundedly) when the global pending queue is at
  ``max_queue_depth`` (:class:`~repro.serve.jobs.QueueFullError`) or the
  tenant is over its own ``max_queued``/``max_active`` quota
  (:class:`~repro.serve.jobs.QuotaExceededError`).  Both carry a
  ``retry_after`` estimate derived from the observed service rate — the
  HTTP-429 contract.

* **Fair share** — accepted jobs are drained by deficit round-robin
  (DRR): each tenant keeps a deficit counter topped up by
  ``quantum * weight`` per scheduling round and pays its head job's cost
  (the worker slots it occupies) to dequeue it.  Over any saturated
  window, tenant throughput converges to the weight ratio regardless of
  submission bursts — one chatty tenant cannot starve the rest.

The scheduler is synchronous and lock-free by design: the asyncio daemon
calls it only from the event loop.  The clock is injectable (the
``repro.utils.budget`` seam) so tests drive retry-after estimates
deterministically.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.serve.jobs import JobRecord, QueueFullError, QuotaExceededError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits and fair-share weight."""

    max_active: int = 8
    max_queued: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_active < 1 or self.max_queued < 1:
            raise ValueError("quota limits must be >= 1")
        if not self.weight > 0:
            raise ValueError("quota weight must be positive")


class FairShareScheduler:
    """Bounded multi-tenant queue with DRR draining."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        quantum: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if not quantum > 0:
            raise ValueError("quantum must be positive")
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.quantum = quantum
        self.clock = clock
        self._queues: dict[str, deque[JobRecord]] = {}
        self._deficit: dict[str, float] = {}
        self._active: dict[str, int] = {}
        self._rr: list[str] = []  # round-robin tenant order
        self._rr_pos = 0
        # True while the tenant at _rr_pos has not yet received this
        # visit's quantum top-up (DRR serves a tenant's jobs while its
        # deficit lasts, then rotates; the flag survives across
        # next_job() calls so one visit can span several dispatches)
        self._visit_fresh = True
        self._queued_total = 0
        # EMA of job service time, feeding the retry-after estimate
        self._service_ema = 1.0
        self._service_seen = 0

    # -- introspection ----------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    @property
    def depth(self) -> int:
        return self._queued_total

    def tenant_depth(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def active(self, tenant: str) -> int:
        return self._active.get(tenant, 0)

    @property
    def active_total(self) -> int:
        return sum(self._active.values())

    def pending_jobs(self) -> Iterator[JobRecord]:
        for q in self._queues.values():
            yield from q

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-tenant queue/active/deficit view for the stats endpoint."""
        tenants = set(self._queues) | set(self._active)
        return {
            t: {
                "queued": self.tenant_depth(t),
                "active": self.active(t),
                "deficit": round(self._deficit.get(t, 0.0), 6),
                "weight": self.quota_for(t).weight,
            }
            for t in sorted(tenants)
        }

    # -- retry-after ------------------------------------------------------------

    def observe_service(self, duration: float) -> None:
        """Feed one completed job's wall duration into the EMA."""
        duration = max(1e-3, float(duration))
        if self._service_seen == 0:
            self._service_ema = duration
        else:
            self._service_ema = 0.8 * self._service_ema + 0.2 * duration
        self._service_seen += 1

    def retry_after(self, slots: int = 1) -> float:
        """Estimated seconds until a freshly rejected job could be accepted."""
        backlog = self._queued_total + self.active_total
        return max(0.1, self._service_ema * backlog / max(1, slots))

    # -- admission --------------------------------------------------------------

    def submit(self, record: JobRecord, slots: int = 1) -> None:
        """Admit a job or raise a typed rejection (load shedding)."""
        tenant = record.request.tenant
        quota = self.quota_for(tenant)
        if self._queued_total >= self.max_queue_depth:
            raise QueueFullError(
                f"pending queue is full ({self._queued_total}/{self.max_queue_depth} jobs); "
                f"load is being shed",
                retry_after=self.retry_after(slots),
            )
        if self.tenant_depth(tenant) >= quota.max_queued:
            raise QuotaExceededError(
                f"tenant {tenant!r} has {self.tenant_depth(tenant)} queued jobs "
                f"(quota max_queued={quota.max_queued})",
                retry_after=self.retry_after(slots),
            )
        self.force_enqueue(record)

    def force_enqueue(self, record: JobRecord) -> None:
        """Enqueue bypassing admission control.

        Reserved for crash recovery: work the journal shows as accepted
        must be requeued even if the restarted daemon's bounds shrank —
        admission applies to *new* submissions, never to accepted ones.
        """
        tenant = record.request.tenant
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._rr.append(tenant)
        self._queues[tenant].append(record)
        self._queued_total += 1

    # -- DRR draining -----------------------------------------------------------

    def next_job(self, free_slots: int) -> JobRecord | None:
        """Pick the next job to run, honoring deficits, quotas and slots.

        Returns ``None`` when nothing eligible fits (queue empty, every
        tenant at ``max_active``, or no head job fits ``free_slots``).
        """
        if self._queued_total == 0 or free_slots < 1:
            return None
        n = len(self._rr)
        heads = [q[0].cost for q in self._queues.values() if q]
        max_cost = max(heads, default=1)
        min_weight = min(
            (self.quota_for(t).weight for t, q in self._queues.items() if q), default=1.0
        )
        # enough full cycles for the costliest head job of the
        # lowest-weight tenant to accumulate its cost in deficit (the
        # factor 2 covers the end-of-visit iteration each tenant spends)
        rounds = 2 * n * (int(math.ceil(max_cost / (self.quantum * min_weight))) + 1)
        for _ in range(rounds):
            tenant = self._rr[self._rr_pos % n]
            queue = self._queues.get(tenant)
            quota = self.quota_for(tenant)
            serveable = (
                bool(queue)
                and self.active(tenant) + queue[0].cost <= quota.max_active
                and queue[0].cost <= free_slots
            )
            if not serveable:
                if not queue:
                    # an emptied queue forfeits its saved-up deficit, so a
                    # tenant cannot bank credit while idle and then burst
                    self._deficit[tenant] = 0.0
                self._advance(n)
                continue
            if self._visit_fresh:
                self._deficit[tenant] = (
                    self._deficit.get(tenant, 0.0) + self.quantum * quota.weight
                )
                self._visit_fresh = False
            head = queue[0]
            if head.cost > self._deficit[tenant]:
                self._advance(n)  # this visit's credit is spent; rotate
                continue
            queue.popleft()
            self._queued_total -= 1
            self._deficit[tenant] -= head.cost
            if not queue:
                self._deficit[tenant] = 0.0
                self._advance(n)
            # else: stay on this tenant — the visit continues on the
            # next call while the remaining deficit covers its head job
            self._active[tenant] = self.active(tenant) + 1
            return head
        return None

    def _advance(self, n: int) -> None:
        self._rr_pos = (self._rr_pos + 1) % n
        self._visit_fresh = True

    def release(self, tenant: str, duration: float | None = None) -> None:
        """A job of ``tenant`` finished; free its active slot."""
        self._active[tenant] = max(0, self.active(tenant) - 1)
        if duration is not None:
            self.observe_service(duration)

    def cancel(self, job_id: str) -> JobRecord | None:
        """Remove a still-queued job; ``None`` if it is not queued."""
        for queue in self._queues.values():
            for rec in queue:
                if rec.job_id == job_id:
                    queue.remove(rec)
                    self._queued_total -= 1
                    return rec
        return None
