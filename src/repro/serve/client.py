"""Synchronous client for the serve daemon (JSON lines over TCP).

The client is deliberately dependency-free and blocking: library users
call it from scripts and tests; the CLI (``python -m repro.serve``) is a
thin shell around it.  Wire errors are re-raised as the *same* typed
exceptions the daemon raised — an admission rejection arrives as a
:class:`~repro.serve.jobs.QueueFullError` /
:class:`~repro.serve.jobs.QuotaExceededError` carrying ``retry_after``,
so callers implement backoff against types, not string matching.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Iterator

from repro.serve.jobs import JobRequest, ServeError, TERMINAL_STATES, error_from_code


class ServeClient:
    """One TCP connection to a daemon; reconnects lazily per call batch."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0) -> None:
        if port <= 0:
            raise ValueError("client needs the daemon's bound port")
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._fh: Any = None

    # -- connection -------------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._fh = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- request/response -------------------------------------------------------

    def _roundtrip(self, req: dict[str, Any]) -> dict[str, Any]:
        self._connect()
        try:
            self._fh.write(json.dumps(req).encode() + b"\n")
            self._fh.flush()
            line = self._fh.readline()
        except OSError:
            self.close()
            raise ServeError("connection to serve daemon lost") from None
        if not line:
            self.close()
            raise ServeError("serve daemon closed the connection")
        return self._check(json.loads(line))

    @staticmethod
    def _check(resp: dict[str, Any]) -> dict[str, Any]:
        if resp.get("ok", False):
            return resp
        raise error_from_code(
            str(resp.get("error", "serve_error")),
            str(resp.get("message", "serve error")),
            resp.get("retry_after"),
        )

    # -- operations -------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._roundtrip({"op": "ping"})

    def submit(self, request: JobRequest | dict[str, Any]) -> dict[str, Any]:
        """Submit one job; returns its public view (``job_id``, ``state``).

        Raises the typed admission errors on rejection; a cache hit
        returns an already-terminal view with the outcome attached.
        """
        body = request.to_json() if isinstance(request, JobRequest) else dict(request)
        return self._roundtrip({"op": "submit", "request": body})

    def status(self, job_id: str) -> dict[str, Any]:
        return self._roundtrip({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job; cancelling an already-finished job is a no-op."""
        return self._roundtrip({"op": "cancel", "job_id": job_id})

    def stats(self) -> dict[str, Any]:
        return self._roundtrip({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        resp = self._roundtrip({"op": "shutdown"})
        self.close()
        return resp

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's live trace events; the final item is the
        ``stream_end`` object carrying the terminal public view."""
        self._connect()
        try:
            self._fh.write(json.dumps({"op": "stream", "job_id": job_id}).encode() + b"\n")
            self._fh.flush()
            header = self._fh.readline()
            if not header:
                raise ServeError("serve daemon closed the connection")
            self._check(json.loads(header))
            while True:
                line = self._fh.readline()
                if not line:
                    raise ServeError("stream ended without a terminal record")
                obj = json.loads(line)
                yield obj
                if obj.get("stream_end"):
                    return
        finally:
            # the stream owns the connection's framing; drop it after use
            self.close()

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict[str, Any]:
        """Poll ``status`` until the job is terminal; returns the view."""
        deadline = clock() + timeout
        while True:
            view = self.status(job_id)
            if view.get("state") in TERMINAL_STATES:
                return view
            if clock() >= deadline:
                raise TimeoutError(f"job {job_id} not terminal within {timeout}s")
            sleep(poll)
