"""Verified instance-fingerprint cache.

Maps :func:`repro.serve.runner.instance_fingerprint` hashes to served
outcomes so a repeat query — same instance, regardless of how the
request spelled it — is answered instantly.  Two safety rules keep the
cache from ever laundering a bad answer:

* **verify on insert** — an entry is stored only after its certificate
  re-verifies against the instance *at insert time* (the verifier
  closure re-runs the independent ``repro.verify`` checkers); a result
  that cannot re-verify is refused and counted, never stored;
* **serve copies** — lookups return a fresh :class:`JobOutcome` marked
  ``from_cache`` so callers cannot mutate the stored entry.

Capacity-bounded LRU; eviction is by least-recent *use* (a hot entry
stays hot).
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Any, Callable

from repro.serve.jobs import JobOutcome, SERVED_STATES


class VerifiedResultCache:
    """LRU fingerprint -> outcome cache with certificate-gated inserts."""

    def __init__(self, capacity: int = 128, metrics: Any = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def lookup(self, fingerprint: str) -> JobOutcome | None:
        """Serve a cached outcome (a fresh copy flagged ``from_cache``)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self._inc("cache_misses")
            return None
        self._entries.move_to_end(fingerprint)
        self._inc("cache_hits")
        # deep-copy so a caller mutating the served solution cannot
        # poison the stored (certificate-verified) entry
        outcome = JobOutcome.from_json(copy.deepcopy(entry))
        outcome.from_cache = True
        return outcome

    def insert(
        self,
        fingerprint: str,
        outcome: JobOutcome,
        verifier: Callable[[], Any],
    ) -> bool:
        """Store a served outcome iff its certificate re-verifies now.

        ``verifier`` re-runs the independent certificate check (a
        ``repro.verify`` :class:`CheckReport`-returning closure built by
        the daemon around the instance).  Returns True when stored.
        """
        if outcome.state not in SERVED_STATES or outcome.solution is None:
            return False
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            return True
        try:
            report = verifier()
            ok = bool(getattr(report, "ok", False))
        except Exception:
            ok = False
        if not ok:
            self._inc("cache_insert_rejected")
            return False
        stored = copy.deepcopy(outcome.to_json())
        stored["from_cache"] = False
        self._entries[fingerprint] = stored
        self._inc("cache_inserts")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._inc("cache_evictions")
        return True
