"""CLI for the serving layer: ``python -m repro.serve <command>``.

Commands::

    daemon   start a daemon (prints "PORT <n>" once bound; --port-file
             writes the port for scripts that spawn the daemon)
    submit   submit one job and print its public view (or --wait for
             the terminal view)
    status   print a job's public view
    cancel   cancel a job (a no-op when it already finished)
    stream   print a job's live trace events as JSON lines
    stats    print the daemon's serve statistics

Admission rejections exit with code 75 (EX_TEMPFAIL) and print the
``retry_after`` hint — shell scripts can back off and retry.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.jobs import AdmissionError, ServeError
from repro.serve.scheduler import TenantQuota

EX_TEMPFAIL = 75


def _client(args: argparse.Namespace) -> ServeClient:
    port = args.port
    if port is None and args.port_file:
        port = int(Path(args.port_file).read_text().split()[0])
    if port is None:
        raise SystemExit("need --port or --port-file")
    return ServeClient(host=args.host, port=port, timeout=args.timeout)


def _print(obj: object) -> None:
    print(json.dumps(obj, indent=2, sort_keys=True))


def cmd_daemon(args: argparse.Namespace) -> int:
    config = ServeConfig(
        journal_path=args.journal,
        engine=args.engine,
        slots=args.slots,
        max_queue_depth=args.max_queue_depth,
        default_deadline=args.default_deadline,
        default_quota=TenantQuota(
            max_active=args.quota_active, max_queued=args.quota_queued
        ),
        host=args.host,
        port=args.port or 0,
    )
    daemon = ServeDaemon(config)

    async def _main() -> None:
        await daemon.start()
        print(f"PORT {daemon.port}", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{daemon.port}\n")
        assert daemon._server is not None
        async with daemon._server:
            try:
                await daemon._server.serve_forever()
            except asyncio.CancelledError:
                pass
        # the shutdown op spawns daemon.stop(); await the full drain so
        # asyncio.run's cleanup never cancels it mid-journal-close
        await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    if args.request_file:
        body = json.loads(Path(args.request_file).read_text())
    elif args.request:
        body = json.loads(args.request)
    else:
        raise SystemExit("need --request JSON or --request-file")
    with _client(args) as client:
        view = client.submit(body)
        if args.wait and view.get("state") not in ("succeeded", "degraded", "failed", "cancelled"):
            view = client.wait(view["job_id"], timeout=args.timeout)
        _print(view)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.status(args.job_id))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.cancel(args.job_id))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    with _client(args) as client:
        for item in client.stream(args.job_id):
            print(json.dumps(item, sort_keys=True), flush=True)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.stats())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    d = sub.add_parser("daemon", help="run a serve daemon")
    d.add_argument("--journal", required=True, help="journal file path (durable state)")
    d.add_argument("--engine", default="sim", choices=["sim", "threads", "process", "loopback"])
    d.add_argument("--slots", type=int, default=4)
    d.add_argument("--max-queue-depth", type=int, default=64)
    d.add_argument("--default-deadline", type=float, default=30.0)
    d.add_argument("--quota-active", type=int, default=8)
    d.add_argument("--quota-queued", type=int, default=64)
    d.add_argument("--host", default="127.0.0.1")
    d.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    d.add_argument("--port-file", default=None, help="write the bound port here")
    d.set_defaults(fn=cmd_daemon)

    def client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=None)
        p.add_argument("--port-file", default=None)
        p.add_argument("--timeout", type=float, default=60.0)

    s = sub.add_parser("submit", help="submit a job")
    client_args(s)
    s.add_argument("--request", default=None, help="request JSON inline")
    s.add_argument("--request-file", default=None, help="request JSON file")
    s.add_argument("--wait", action="store_true", help="block until terminal")
    s.set_defaults(fn=cmd_submit)

    for name, fn in (("status", cmd_status), ("cancel", cmd_cancel), ("stream", cmd_stream)):
        p = sub.add_parser(name, help=f"{name} a job")
        client_args(p)
        p.add_argument("job_id")
        p.set_defaults(fn=fn)

    st = sub.add_parser("stats", help="daemon statistics")
    client_args(st)
    st.set_defaults(fn=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except AdmissionError as exc:
        print(
            json.dumps({"error": exc.code, "message": str(exc), "retry_after": exc.retry_after}),
            file=sys.stderr,
        )
        return EX_TEMPFAIL
    except ServeError as exc:
        print(json.dumps({"error": exc.code, "message": str(exc)}), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
