"""Job execution: build the instance, run ug[...], certify the answer.

This module is deliberately stateless — the daemon calls it from worker
threads, the verified-result cache calls :func:`verify_certificate` on
insert, and the crash-recovery tests call it *offline* (rebuilding the
instance from the journal's submitted record) to prove that no served
answer lacks a passing ``repro.verify`` certificate.

The degradation contract lives in :func:`outcome_from_result`: a run
that ends unsolved (deadline, node budget, virtual time limit) is served
as ``DEGRADED`` with the incumbent *and* the dual bound, and only after
the certificate check passed; anything unverifiable becomes ``FAILED``
with the checker's reason — never a silently served answer.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Callable

from repro.obs.trace import Tracer
from repro.serve.jobs import InvalidJobError, JobOutcome, JobRequest, JobState
from repro.ug.config import UGConfig
from repro.ug.instantiation import UGResult, ug
from repro.ug.statistics import _gap
from repro.verify.result import CheckReport

# -- instance construction ------------------------------------------------------

_STP_GENERATORS: dict[str, Callable[..., Any]] = {}
_MISDP_GENERATORS: dict[str, Callable[..., Any]] = {}


def _stp_generators() -> dict[str, Callable[..., Any]]:
    if not _STP_GENERATORS:
        from repro.steiner.instances import (
            grid_instance,
            hypercube_instance,
            random_instance,
        )

        _STP_GENERATORS.update(
            hypercube=hypercube_instance, grid=grid_instance, random=random_instance
        )
    return _STP_GENERATORS


def _misdp_generators() -> dict[str, Callable[..., Any]]:
    if not _MISDP_GENERATORS:
        from repro.sdp.instances import (
            cardinality_least_squares,
            min_k_partitioning,
            truss_topology_design,
        )

        _MISDP_GENERATORS.update(
            truss=truss_topology_design,
            cardls=cardinality_least_squares,
            partition=min_k_partitioning,
        )
    return _MISDP_GENERATORS


def build_instance(request: JobRequest) -> Any:
    """Turn a request payload into a solver-ready instance object."""
    payload = request.payload
    if request.kind == "stp":
        if "stp" in payload:
            from repro.steiner.stp_io import parse_stp

            try:
                return parse_stp(str(payload["stp"]))
            except Exception as exc:
                raise InvalidJobError(f"cannot parse STP payload: {exc}") from exc
        generators = _stp_generators()
    else:
        generators = _misdp_generators()
    name = str(payload.get("generator", ""))
    gen = generators.get(name)
    if gen is None:
        raise InvalidJobError(
            f"unknown {request.kind} generator {name!r}; choose from {sorted(generators)}"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise InvalidJobError("generator params must be an object")
    try:
        return gen(**params)
    except TypeError as exc:
        raise InvalidJobError(f"bad params for generator {name!r}: {exc}") from exc
    except Exception as exc:
        raise InvalidJobError(f"generator {name!r} failed: {exc}") from exc


# -- instance fingerprinting ----------------------------------------------------

_CANON_BUDGET = 4000  # refinement steps for canonical labeling; exhaustion falls back
_COST_ROUND = 9


def stp_canonical_labeling(instance: Any, budget: int = _CANON_BUDGET):
    """Canonical (certificate, vertex labeling) of an STP instance, or None.

    Vertices are colored by aliveness + terminal flag, edges labeled by
    the sorted multiset of parallel-edge costs, and the colored graph is
    run through :func:`repro.cip.symmetry.canonical_form`.  The
    certificate is invariant under vertex relabeling, so two isomorphic
    instances fingerprint equal; the labeling lets the daemon translate
    a cached solution into the query instance's own edge ids.  Budget
    exhaustion returns None and the caller falls back to the structural
    (labeling-sensitive) fingerprint.
    """
    from repro.cip.symmetry import canonical_form, colored_graph

    n = int(instance.n)
    colors = []
    for v in range(n):
        if not bool(instance.vertex_alive[v]):
            colors.append(("dead",))
        else:
            colors.append(("v", bool(instance.terminal_mask[v])))
    pair_costs: dict[tuple[int, int], list[float]] = {}
    for e in instance.edges:
        if not e.alive:
            continue
        key = (min(int(e.u), int(e.v)), max(int(e.u), int(e.v)))
        pair_costs.setdefault(key, []).append(round(float(e.cost), _COST_ROUND))
    edges = [(u, v, tuple(sorted(costs))) for (u, v), costs in pair_costs.items()]
    return canonical_form(colored_graph(n, colors, edges), budget=budget)


def stp_solution_to_canonical(
    instance: Any, labeling: list[int], edge_ids: Any
) -> list[list[Any]]:
    """Express a solution's edge ids as relabeling-invariant triples."""
    pos = {v: i for i, v in enumerate(labeling)}
    triples = []
    for eid in edge_ids:
        e = instance.edges[int(eid)]
        cu, cv = pos[int(e.u)], pos[int(e.v)]
        triples.append([min(cu, cv), max(cu, cv), round(float(e.cost), _COST_ROUND)])
    return sorted(triples)


def stp_solution_from_canonical(
    instance: Any, labeling: list[int], triples: Any
) -> list[int] | None:
    """Map canonical triples onto this instance's edge ids, or None.

    Parallel edges with equal cost are interchangeable (same endpoints,
    same cost), so any one-to-one matching is valid; an unmatchable
    triple means the instances were not isomorphic after all and the
    caller must treat the lookup as a miss.
    """
    pos = {v: i for i, v in enumerate(labeling)}
    buckets: dict[tuple[int, int, float], list[int]] = {}
    for eid, e in enumerate(instance.edges):
        if not e.alive:
            continue
        cu, cv = pos[int(e.u)], pos[int(e.v)]
        key = (min(cu, cv), max(cu, cv), round(float(e.cost), _COST_ROUND))
        buckets.setdefault(key, []).append(eid)
    out = []
    for t in triples:
        key = (int(t[0]), int(t[1]), round(float(t[2]), _COST_ROUND))
        bucket = buckets.get(key)
        if not bucket:
            return None
        out.append(bucket.pop())
    return out


def instance_cache_key(kind: str, instance: Any) -> tuple[str, list[int] | None]:
    """Fingerprint plus (for STP) the canonical labeling used to build it.

    The labeling is ``None`` for MISDP instances and when the canonical
    search exhausted its budget — in both cases the fingerprint is the
    structural one and cached solutions need no translation.
    """
    if kind == "stp":
        canon = stp_canonical_labeling(instance)
        if canon is not None:
            cert, labeling = canon
            digest = hashlib.sha256(b"stp-canon:" + cert).hexdigest()
            return digest, list(labeling)
    return instance_fingerprint(kind, instance, _structural=True), None


def instance_fingerprint(kind: str, instance: Any, _structural: bool = False) -> str:
    """Canonical content hash of a parsed instance.

    Two requests describing the same mathematical instance — whether
    shipped as literal STP text or as a generator spec — hash equal, so
    the cache serves repeat queries instantly.  For STP the hash is
    additionally *isomorphism-invariant*: the instance is canonically
    labeled first (:func:`stp_canonical_labeling`), so a vertex-relabeled
    copy of a cached instance is still a cache hit.  MISDP instances —
    and STP instances whose canonical search exhausts its budget — use a
    structural encoding (sorted edge/terminal lists, full matrix
    entries), which is formatting-independent but labeling-sensitive.
    """
    if kind == "stp":
        if not _structural:
            canon = stp_canonical_labeling(instance)
            if canon is not None:
                return hashlib.sha256(b"stp-canon:" + canon[0]).hexdigest()
        doc = {
            "n": int(instance.n),
            "terminals": sorted(int(t) for t in instance.terminals),
            "edges": sorted(
                (min(int(e.u), int(e.v)), max(int(e.u), int(e.v)), float(e.cost))
                for e in instance.edges
                if e.alive
            ),
        }
    else:  # misdp
        doc = {
            "b": [float(x) for x in instance.b],
            "lb": [float(x) for x in instance.lb],
            "ub": [float(x) for x in instance.ub],
            "integers": sorted(int(i) for i in instance.integers),
            "blocks": [
                {
                    "C": [[float(x) for x in row] for row in blk.C],
                    "coefs": {
                        str(i): [[float(x) for x in row] for row in A]
                        for i, A in sorted(blk.coefs.items())
                    },
                }
                for blk in instance.blocks
            ],
            "rows": [
                {
                    "coefs": {str(i): float(c) for i, c in sorted(row.coefs.items())},
                    "lhs": _enc(row.lhs),
                    "rhs": _enc(row.rhs),
                }
                for row in instance.linear_rows
            ],
        }
    blob = json.dumps({"kind": kind, "doc": doc}, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _enc(x: float) -> float | str:
    return ("inf" if x > 0 else "-inf") if math.isinf(x) else float(x)


# -- solving --------------------------------------------------------------------


def build_config(request: JobRequest, trace_capacity: int = 4096) -> UGConfig:
    """The UGConfig for one job: tracing on (streams + audits), limits set."""
    cfg = UGConfig(trace_enabled=True, trace_capacity=trace_capacity)
    if request.objective_epsilon is not None:
        cfg.objective_epsilon = request.objective_epsilon
    if request.node_limit is not None:
        cfg.node_limit = request.node_limit
    if request.virtual_time_limit is not None:
        cfg.time_limit = request.virtual_time_limit
    return cfg


def solve_job(
    request: JobRequest,
    instance: Any,
    *,
    engine: str = "sim",
    deadline: float | None = None,
    tracer: Tracer | None = None,
    trace_capacity: int = 4096,
) -> UGResult:
    """Run the ug[...] solve for one job (blocking; call from a worker).

    ``deadline`` is the remaining wall-clock budget; it maps onto the
    engine's wall-clock limit so expiry degrades the run (incumbent +
    bound survive) instead of killing it.
    """
    if request.kind == "stp":
        from repro.apps.stp_plugins import SteinerUserPlugins

        plugins: Any = SteinerUserPlugins()
        work_instance = instance.copy()
    else:
        from repro.apps.misdp_plugins import MISDPUserPlugins

        plugins = MISDPUserPlugins()
        work_instance = instance
    solver = ug(
        work_instance,
        plugins,
        n_solvers=request.n_solvers,
        comm=engine,
        config=build_config(request, trace_capacity),
        seed=request.seed,
        wall_clock_limit=math.inf if deadline is None else max(0.05, deadline),
    )
    return solver.run(tracer=tracer)


# -- certification --------------------------------------------------------------


def verify_certificate(
    kind: str,
    instance: Any,
    solution: Any,
    objective: float,
    bound: float,
    *,
    solved: bool = False,
    tol: float = 1e-6,
    gap_slack: float = 0.0,
) -> CheckReport:
    """Certificate-check a served answer, independent of who produced it.

    ``objective``/``bound`` are in the problem's natural sense (min cost
    for STP, sup ``b'y`` for MISDP).  Checks: solution validity +
    objective recomputation (via the PR-4 checkers), weak duality, and —
    when ``solved`` is claimed — gap closure within ``gap_slack`` (the
    run's objective epsilon; integral instances legitimately stop with
    the bounds one unit apart).
    """
    if kind == "stp":
        from repro.verify.steiner import check_steiner_tree

        report = check_steiner_tree(
            instance, list(solution or ()), objective, original=True, tol=tol, subject="serve:stp"
        )
        scale = max(1.0, abs(objective))
        if math.isfinite(bound):
            report.add(
                "weak_duality",
                bound <= objective + tol * scale,
                f"dual {bound:.9g} exceeds primal {objective:.9g}",
            )
        primal, dual = objective, bound
    else:
        import numpy as np

        from repro.verify.sdp import check_misdp_solution

        report = check_misdp_solution(
            instance,
            None if solution is None else np.asarray(solution, dtype=float),
            objective,
            tol=tol,
            subject="serve:misdp",
        )
        scale = max(1.0, abs(objective))
        if math.isfinite(bound):
            report.add(
                "weak_duality",
                objective <= bound + tol * scale,
                f"objective {objective:.9g} above upper bound {bound:.9g}",
            )
        # gap closure below works on the min-sense pair
        primal, dual = -objective, -bound
    if solved:
        closed = (
            math.isfinite(dual)
            and math.isfinite(primal)
            and primal - dual <= max(tol * scale, gap_slack + tol)
        )
        report.add(
            "solved_gap_closed",
            closed,
            f"solved claimed with dual {dual:.9g} vs primal {primal:.9g} "
            f"(slack {gap_slack:.6g})",
        )
    return report


def outcome_from_result(
    request: JobRequest,
    instance: Any,
    result: UGResult,
    *,
    tol: float = 1e-6,
) -> tuple[JobOutcome, CheckReport | None]:
    """Apply the degradation contract to a finished run.

    Returns the outcome plus the certificate report (``None`` when there
    was nothing to certify — no incumbent at the limit).
    """
    inc = result.incumbent
    if inc is None:
        return (
            JobOutcome(
                state=JobState.FAILED,
                solved=False,
                detail="no incumbent found within the job limits; nothing servable",
            ),
            None,
        )
    if request.kind == "stp":
        solution = list(inc.payload.get("edges", [])) if isinstance(inc.payload, dict) else None
        objective = float(inc.value)
        bound = float(result.dual_bound)
        gap = _gap(inc.value, result.dual_bound)
    else:
        solution = None if inc.payload is None else [float(v) for v in inc.payload]
        objective = -float(inc.value)  # sup sense
        bound = -float(result.dual_bound)  # upper bound in sup sense
        gap = _gap(inc.value, result.dual_bound)
    gap_slack = request.objective_epsilon or 0.0
    report = verify_certificate(
        request.kind,
        instance,
        solution,
        objective,
        bound,
        solved=result.solved,
        tol=tol,
        gap_slack=gap_slack,
    )
    checks = {"passed": report.passed, "failed": report.failed}
    if not report.ok:
        failures = "; ".join(str(c) for c in report.failures)
        return (
            JobOutcome(
                state=JobState.FAILED,
                solved=False,
                certified=False,
                detail=f"certificate check refused the answer: {failures}",
                checks=checks,
            ),
            report,
        )
    state = JobState.SUCCEEDED if result.solved else JobState.DEGRADED
    detail = (
        "solved to proven optimality"
        if result.solved
        else f"limit expired; serving incumbent with certified gap {gap:.6g}"
    )
    return (
        JobOutcome(
            state=state,
            objective=objective,
            bound=bound,
            gap=gap,
            solved=result.solved,
            certified=True,
            solution=solution,
            detail=detail,
            checks=checks,
        ),
        report,
    )
