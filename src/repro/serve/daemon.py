"""The asyncio job daemon: accept, schedule, solve, certify, survive.

One :class:`ServeDaemon` multiplexes many concurrent STP/MISDP solves
over a bounded fleet of worker slots.  The control plane (admission,
fair-share scheduling, journaling, streaming) lives on the event loop;
each granted job runs its blocking ``ug[...]`` solve on a worker thread
(``asyncio.to_thread``), so with ``engine="process"`` the actual solving
is true-parallel across OS processes — and with the warm worker pool of
DESIGN.md §5g the spawned ranks persist *across jobs*, which is what
makes the fleet shared rather than per-job.

Crash safety is write-ahead: every state transition is journaled
(CRC32 + fsync, :mod:`repro.serve.journal`) *before* the daemon acts on
it.  A restarted daemon replays the journal, keeps every terminal job's
outcome (never re-runs completed work), and requeues accepted jobs that
were queued or in flight when the process died — each accepted job
reaches a terminal state exactly once.

Wire protocol: JSON lines over TCP.  One request object per line; one
response object per line (``stream`` responds with many lines, ending
in a ``stream_end`` object).  See :mod:`repro.serve.client`.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve import runner
from repro.serve.cache import VerifiedResultCache
from repro.serve.jobs import (
    AdmissionError,
    InvalidJobError,
    JobOutcome,
    JobRecord,
    JobRequest,
    JobState,
    ServeError,
    UnknownJobError,
)
from repro.serve.journal import (
    EV_CANCELLED,
    EV_COMPLETED,
    EV_STARTED,
    EV_SUBMITTED,
    JobJournal,
    reduce_journal,
    replay_journal,
)
from repro.serve.scheduler import FairShareScheduler, TenantQuota
from repro.utils.budget import Budget


@dataclass
class ServeStatistics:
    """Counters/gauges of one daemon life (MetricsRegistry sink)."""

    jobs_submitted: int = 0
    jobs_accepted: int = 0
    jobs_rejected_queue_full: int = 0
    jobs_rejected_quota: int = 0
    jobs_rejected_invalid: int = 0
    jobs_succeeded: int = 0
    jobs_degraded: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    jobs_requeued: int = 0  # accepted-but-unfinished jobs recovered on restart
    cache_hits: int = 0
    cache_misses: int = 0
    cache_inserts: int = 0
    cache_insert_rejected: int = 0
    cache_evictions: int = 0
    cache_translation_failed: int = 0  # canonical entry unmappable onto the query
    verify_refusals: int = 0  # answers refused by the certificate check
    journal_torn_bytes: int = 0  # torn-tail bytes dropped during recovery
    stream_events_sent: int = 0
    peak_queue_depth: int = 0
    peak_running_slots: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class ServeConfig:
    """Knobs of one daemon (times are wall-clock seconds)."""

    journal_path: str
    engine: str = "sim"  # comm handed to ug(): sim | threads | process | loopback
    slots: int = 4  # total worker slots shared by all running jobs
    max_queue_depth: int = 64
    default_deadline: float = 30.0  # granted when a request names none
    max_deadline: float = 600.0  # hard cap on any request's deadline
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    cache_capacity: int = 128
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is daemon.port after start()
    trace_capacity: int = 4096
    verify_tol: float = 1e-6
    scheduler_quantum: float = 1.0
    stream_poll: float = 0.05
    clock: Callable[[], float] = time.monotonic  # injectable (Budget seam)
    journal_fsync: bool = True
    warm_pool: bool = True  # pre-warm process workers when engine="process"

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        for name in ("default_deadline", "max_deadline", "scheduler_quantum", "stream_poll"):
            if not getattr(self, name) > 0:
                raise ValueError(f"ServeConfig.{name} must be positive")
        if self.engine not in ("sim", "threads", "process", "loopback"):
            raise ValueError(f"unknown engine {self.engine!r}")


class ServeDaemon:
    """Crash-safe solver-as-a-service daemon (one per journal file)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.stats = ServeStatistics()
        self.metrics = MetricsRegistry(sink=self.stats)
        self.scheduler = FairShareScheduler(
            max_queue_depth=config.max_queue_depth,
            default_quota=config.default_quota,
            quotas=config.quotas,
            quantum=config.scheduler_quantum,
            clock=config.clock,
        )
        self.cache = VerifiedResultCache(capacity=config.cache_capacity, metrics=self.metrics)
        self.jobs: dict[str, JobRecord] = {}
        self._instances: dict[str, Any] = {}
        self._slots_used = 0
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._kick: asyncio.Event | None = None
        self._stopping = False
        self._stopped: asyncio.Event | None = None
        self.port: int | None = None
        # -- crash recovery: replay the journal before accepting anything
        replay = replay_journal(config.journal_path)
        if replay.torn_bytes:
            self.metrics.inc("journal_torn_bytes", replay.torn_bytes)
        self._recovered = reduce_journal(replay.records)
        self.journal = JobJournal(config.journal_path, fsync=config.journal_fsync)
        self._requeue_recovered()

    # -- recovery ---------------------------------------------------------------

    def _requeue_recovered(self) -> None:
        """Rebuild records from the journal; requeue unfinished work."""
        for job_id, replayed in self._recovered.items():
            if replayed.request_json is None:
                continue  # submitted record lost to the torn tail
            try:
                request = JobRequest.from_json(replayed.request_json)
            except InvalidJobError:
                continue
            record = JobRecord(
                job_id=job_id,
                request=request,
                state=replayed.state,
                outcome=replayed.outcome(),
                attempts=replayed.attempts,
                submitted_at=self.config.clock(),
            )
            if replayed.terminal:
                self.jobs[job_id] = record
                continue
            # queued or mid-flight at the crash: run it (again); the
            # journal shows no terminal record, so this is not a re-run
            record.state = JobState.QUEUED
            self.jobs[job_id] = record
            # accepted work is never re-admitted — a shrunken queue bound
            # on the restarted daemon must not strand journaled jobs
            self.scheduler.force_enqueue(record)
            self.metrics.inc("jobs_requeued")

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP endpoint and start the scheduler loop."""
        self._kick = asyncio.Event()
        self._stopped = asyncio.Event()
        if self.config.engine == "process" and self.config.warm_pool:
            from repro.ug.net.process_engine import warm_pool

            await asyncio.to_thread(warm_pool, self.config.slots)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._spawn(self._scheduler_loop(), name="scheduler")
        self._kick.set()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting; cancel the control plane; close the journal.

        Running solves are *not* awaited — their journal has ``started``
        but no terminal record, so a later daemon on the same journal
        requeues them (the crash path, exercised deliberately).
        """
        if self._stopping:
            # a second caller (e.g. the CLI awaiting the shutdown op's
            # spawned stop) just waits for the first to finish
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        # drain until quiescent: a task cancelled mid-dispatch can spawn
        # one more job task after the first snapshot was taken; stop()
        # itself may be one of the tracked tasks (the shutdown op spawns
        # it), so never cancel/await the current task — that is a
        # self-cancellation cycle
        current = asyncio.current_task()
        while True:
            pending = [t for t in self._tasks if t is not current]
            if not pending:
                break
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        self.journal.close()
        if self._stopped is not None:
            self._stopped.set()

    def _spawn(self, coro: Any, name: str = "") -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- submission -------------------------------------------------------------

    def submit(self, request_json: dict[str, Any]) -> dict[str, Any]:
        """Admit one job (or serve it from cache).  Raises typed errors."""
        self.metrics.inc("jobs_submitted")
        try:
            request = JobRequest.from_json(request_json)
            instance = runner.build_instance(request)
        except InvalidJobError:
            self.metrics.inc("jobs_rejected_invalid")
            raise
        fingerprint, labeling = runner.instance_cache_key(request.kind, instance)
        job_id = uuid.uuid4().hex[:12]
        cached = self.cache.lookup(fingerprint)
        if cached is not None and request.kind == "stp":
            cached = self._translate_cached_stp(cached, instance, labeling)
        if cached is not None:
            cached.detail = f"served from cache ({cached.detail})"
            record = JobRecord(
                job_id=job_id,
                request=request,
                state=cached.state,
                outcome=cached,
                attempts=0,
                submitted_at=self.config.clock(),
                finished_at=self.config.clock(),
            )
            self.jobs[job_id] = record
            self.journal.append(EV_SUBMITTED, job_id, {"request": request.to_json()})
            self.journal.append(EV_COMPLETED, job_id, {"outcome": cached.to_json()})
            self._count_terminal(cached.state)
            return record.public_view()
        record = JobRecord(
            job_id=job_id, request=request, submitted_at=self.config.clock()
        )
        try:
            self.scheduler.submit(record, slots=self.config.slots)
        except AdmissionError as exc:
            code = getattr(exc, "code", "admission_rejected")
            self.metrics.inc(
                "jobs_rejected_queue_full" if code == "queue_full" else "jobs_rejected_quota"
            )
            raise
        # write-ahead: the journal knows about the job before the client does
        self.journal.append(EV_SUBMITTED, job_id, {"request": request.to_json()})
        self.jobs[job_id] = record
        self._instances[job_id] = instance
        self.metrics.inc("jobs_accepted")
        self.metrics.maximize("peak_queue_depth", self.scheduler.depth)
        if self._kick is not None:
            self._kick.set()
        return record.public_view()

    def _translate_cached_stp(
        self, cached: JobOutcome, instance: Any, labeling: list[int] | None
    ) -> JobOutcome | None:
        """Rewrite a cached STP solution into the query's own edge ids.

        Canonical fingerprints match *isomorphic* instances, whose edge
        ids differ — the stored solution is kept as relabeling-invariant
        ``(u, v, cost)`` triples and mapped through the query instance's
        canonical labeling here.  An untranslatable entry (no labeling,
        or a triple with no matching edge) is treated as a miss rather
        than served wrong.
        """
        sol = cached.solution
        if not (isinstance(sol, dict) and "stp_canonical" in sol):
            return cached  # structural-fingerprint entry: ids are literal
        if labeling is None:
            self.metrics.inc("cache_translation_failed")
            return None
        edges = runner.stp_solution_from_canonical(
            instance, labeling, sol["stp_canonical"]
        )
        if edges is None:
            self.metrics.inc("cache_translation_failed")
            return None
        cached.solution = edges
        return cached

    # -- scheduling + execution -------------------------------------------------

    async def _scheduler_loop(self) -> None:
        assert self._kick is not None
        while not self._stopping:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._kick.wait(), timeout=0.1)
            self._kick.clear()
            while not self._stopping:
                free = self.config.slots - self._slots_used
                job = self.scheduler.next_job(free)
                if job is None:
                    break
                self._slots_used += job.cost
                self.metrics.maximize("peak_running_slots", self._slots_used)
                self._spawn(self._run_job(job), name=f"job-{job.job_id}")

    def _effective_deadline(self, request: JobRequest) -> float:
        deadline = request.deadline if request.deadline is not None else self.config.default_deadline
        return min(deadline, self.config.max_deadline)

    def _solve(self, record: JobRecord, budget: Budget) -> Any:
        """Blocking solve on a worker thread (monkeypatchable test seam)."""
        instance = self._instances.get(record.job_id)
        if instance is None:
            instance = runner.build_instance(record.request)
            self._instances[record.job_id] = instance
        return runner.solve_job(
            record.request,
            instance,
            engine=self.config.engine,
            deadline=budget.remaining_time(),
            tracer=record.tracer,
            trace_capacity=self.config.trace_capacity,
        )

    async def _run_job(self, record: JobRecord) -> None:
        record.state = JobState.RUNNING
        record.attempts += 1
        record.started_at = self.config.clock()
        record.tracer = Tracer(enabled=True, capacity=self.config.trace_capacity)
        self.journal.append(EV_STARTED, record.job_id, {"attempt": record.attempts})
        budget = Budget(
            time_limit=self._effective_deadline(record.request), clock=self.config.clock
        ).start()
        outcome: JobOutcome
        try:
            result = await asyncio.to_thread(self._solve, record, budget)
        except asyncio.CancelledError:
            # daemon stopping: leave no terminal record; a restart requeues
            raise
        except Exception as exc:  # noqa: BLE001 - a crashed solve must terminate the job
            result = None
            outcome = JobOutcome(
                state=JobState.FAILED, detail=f"solver crashed: {exc!r}", attempts=record.attempts
            )
        if result is not None:
            if record.cancel_requested:
                outcome = JobOutcome(
                    state=JobState.CANCELLED,
                    detail="cancelled while running; result discarded",
                    attempts=record.attempts,
                )
            else:
                instance = self._instances.get(record.job_id)
                outcome, report = runner.outcome_from_result(
                    record.request, instance, result, tol=self.config.verify_tol
                )
                outcome.attempts = record.attempts
                if report is not None and not report.ok:
                    self.metrics.inc("verify_refusals")
        self._finish(record, outcome)

    def _finish(self, record: JobRecord, outcome: JobOutcome) -> None:
        event = EV_CANCELLED if outcome.state == JobState.CANCELLED else EV_COMPLETED
        self.journal.append(event, record.job_id, {"outcome": outcome.to_json()})
        record.outcome = outcome
        record.state = outcome.state
        record.finished_at = self.config.clock()
        duration = (record.finished_at or 0.0) - (record.started_at or 0.0)
        self.metrics.timer("job_seconds").observe(max(0.0, duration))
        self._count_terminal(outcome.state)
        if outcome.certified and outcome.solution is not None:
            instance = self._instances.get(record.job_id)
            if instance is not None:
                fingerprint, labeling = runner.instance_cache_key(
                    record.request.kind, instance
                )
                stored = outcome
                if record.request.kind == "stp" and labeling is not None:
                    # store the solution in relabeling-invariant form so a
                    # hit from an isomorphic instance can be translated
                    stored = dataclasses.replace(
                        outcome,
                        solution={
                            "stp_canonical": runner.stp_solution_to_canonical(
                                instance, labeling, outcome.solution
                            )
                        },
                    )
                self.cache.insert(
                    fingerprint,
                    stored,
                    lambda: runner.verify_certificate(
                        record.request.kind,
                        instance,
                        outcome.solution,
                        outcome.objective,
                        outcome.bound,
                        solved=outcome.solved,
                        tol=self.config.verify_tol,
                        gap_slack=record.request.objective_epsilon or 0.0,
                    ),
                )
        self._instances.pop(record.job_id, None)
        self.scheduler.release(record.request.tenant, duration)
        self._slots_used -= record.cost
        if self._kick is not None:
            self._kick.set()

    def _count_terminal(self, state: str) -> None:
        name = {
            JobState.SUCCEEDED: "jobs_succeeded",
            JobState.DEGRADED: "jobs_degraded",
            JobState.FAILED: "jobs_failed",
            JobState.CANCELLED: "jobs_cancelled",
        }.get(state)
        if name:
            self.metrics.inc(name)

    # -- queries ----------------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"no job {job_id!r} on this daemon")
        return record

    def status(self, job_id: str) -> dict[str, Any]:
        return self._record(job_id).public_view()

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job.  Cancelling finished work is a successful no-op."""
        record = self._record(job_id)
        if record.terminal:
            view = record.public_view()
            view["noop"] = True
            view["detail"] = f"already {record.state}; cancel is a no-op"
            return view
        if record.state == JobState.QUEUED:
            removed = self.scheduler.cancel(job_id)
            if removed is not None:
                outcome = JobOutcome(
                    state=JobState.CANCELLED,
                    detail="cancelled while queued",
                    attempts=record.attempts,
                )
                self.journal.append(EV_CANCELLED, job_id, {"outcome": outcome.to_json()})
                record.outcome = outcome
                record.state = JobState.CANCELLED
                record.finished_at = self.config.clock()
                self._count_terminal(JobState.CANCELLED)
                return record.public_view()
        # running (or a race just moved it): best-effort cooperative cancel
        record.cancel_requested = True
        view = record.public_view()
        view["cancel_requested"] = True
        return view

    def stats_view(self) -> dict[str, Any]:
        return {
            "serve": self.stats.as_dict(),
            "scheduler": self.scheduler.snapshot(),
            "slots": {"total": self.config.slots, "used": self._slots_used},
            "queue_depth": self.scheduler.depth,
            "jobs": len(self.jobs),
            "cache_size": len(self.cache),
            "job_seconds": self.metrics.value("job_seconds"),
        }

    # -- wire protocol ----------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    op = str(req.get("op", ""))
                except (ValueError, AttributeError):
                    await self._send(writer, {"ok": False, "error": "bad_request",
                                              "message": "malformed JSON request"})
                    continue
                if op == "stream":
                    await self._handle_stream(writer, req)
                    continue
                await self._send(writer, self._dispatch(op, req))
                if op == "shutdown":
                    self._spawn(self.stop(), name="shutdown")
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _dispatch(self, op: str, req: dict[str, Any]) -> dict[str, Any]:
        try:
            if op == "submit":
                return {"ok": True, **self.submit(req.get("request") or {})}
            if op == "status":
                return {"ok": True, **self.status(str(req.get("job_id", "")))}
            if op == "cancel":
                return {"ok": True, **self.cancel(str(req.get("job_id", "")))}
            if op == "stats":
                return {"ok": True, **self.stats_view()}
            if op == "ping":
                return {"ok": True, "pong": True, "engine": self.config.engine}
            if op == "shutdown":
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": "bad_request", "message": f"unknown op {op!r}"}
        except ServeError as exc:
            out = {"ok": False, "error": exc.code, "message": str(exc)}
            if isinstance(exc, AdmissionError):
                out["retry_after"] = exc.retry_after
            return out
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the connection
            return {"ok": False, "error": "internal_error", "message": repr(exc)}

    async def _send(self, writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
        writer.write(json.dumps(obj, sort_keys=True).encode() + b"\n")
        await writer.drain()

    async def _handle_stream(self, writer: asyncio.StreamWriter, req: dict[str, Any]) -> None:
        """Stream a job's live trace events as JSON lines until terminal."""
        job_id = str(req.get("job_id", ""))
        try:
            record = self._record(job_id)
        except ServeError as exc:
            await self._send(writer, {"ok": False, "error": exc.code, "message": str(exc)})
            return
        await self._send(writer, {"ok": True, "streaming": job_id})
        cursor, missed_total = 0, 0
        while True:
            tracer = record.tracer
            if tracer is not None:
                cursor, missed, events = tracer.events_since(cursor)
                missed_total += missed
                for ev in events:
                    await self._send(writer, {"event": ev.to_json()})
                    self.metrics.inc("stream_events_sent")
            if record.terminal:
                tail = record.tracer
                if tail is not None:
                    cursor, missed, events = tail.events_since(cursor)
                    missed_total += missed
                    for ev in events:
                        await self._send(writer, {"event": ev.to_json()})
                        self.metrics.inc("stream_events_sent")
                view = record.public_view()
                view.update({"stream_end": True, "missed": missed_total})
                await self._send(writer, view)
                return
            await asyncio.sleep(self.config.stream_poll)


# -- embedding helper -----------------------------------------------------------


@contextlib.contextmanager
def daemon_in_thread(config: ServeConfig) -> Iterator[ServeDaemon]:
    """Run a daemon on a background event loop (examples and tests).

    Yields the started daemon (``daemon.port`` is bound); the sync
    :class:`~repro.serve.client.ServeClient` can talk to it from the
    calling thread.  Stops the daemon on exit.
    """
    daemon = ServeDaemon(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="serve-daemon", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon failed to start within 30s")
    try:
        yield daemon
    finally:
        future = asyncio.run_coroutine_threadsafe(daemon.stop(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
