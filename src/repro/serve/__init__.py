"""repro.serve — crash-safe solver-as-a-service over the ug[...] engines.

The serving layer (DESIGN.md §5h) turns the library into a long-lived
daemon that schedules many concurrent STP/MISDP solves over a shared
worker fleet:

* :class:`ServeDaemon` / :class:`ServeConfig` — the asyncio daemon;
* :class:`ServeClient` — the synchronous client API (also the CLI:
  ``python -m repro.serve submit|status|cancel|stream``);
* :class:`JobRequest` / :class:`JobOutcome` — the job model;
* :class:`FairShareScheduler` / :class:`TenantQuota` — admission control
  and deficit-round-robin fair share;
* :class:`JobJournal` — the CRC32 + fsync write-ahead journal that makes
  a ``kill -9`` survivable;
* :class:`VerifiedResultCache` — the instance-fingerprint cache whose
  inserts are gated on a re-verified certificate.
"""

from repro.serve.cache import VerifiedResultCache
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon, ServeStatistics, daemon_in_thread
from repro.serve.jobs import (
    AdmissionError,
    InvalidJobError,
    JobOutcome,
    JobRecord,
    JobRequest,
    JobState,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    UnknownJobError,
)
from repro.serve.journal import JobJournal, reduce_journal, replay_journal
from repro.serve.runner import instance_fingerprint, verify_certificate
from repro.serve.scheduler import FairShareScheduler, TenantQuota

__all__ = [
    "AdmissionError",
    "FairShareScheduler",
    "InvalidJobError",
    "JobJournal",
    "JobOutcome",
    "JobRecord",
    "JobRequest",
    "JobState",
    "QueueFullError",
    "QuotaExceededError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeStatistics",
    "TenantQuota",
    "UnknownJobError",
    "VerifiedResultCache",
    "daemon_in_thread",
    "instance_fingerprint",
    "reduce_journal",
    "replay_journal",
    "verify_certificate",
]
