"""MISDP solution checking via direct eigenvalue computations.

Nothing from the solver is trusted: bounds, integrality, linear rows,
the smallest eigenvalue of every slack matrix ``Z_k(y) = C_k - sum A_ki
y_i`` and the sup-sense objective ``b'y`` are all recomputed from the
model data.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.sdp.model import MISDP
from repro.verify.result import CheckReport


def check_misdp_solution(
    misdp: MISDP,
    y: Any,
    claimed_value: float | None = None,
    *,
    tol: float = 1e-6,
    subject: str = "misdp",
) -> CheckReport:
    """Verify feasibility of ``y`` and recompute its objective.

    ``claimed_value`` is in the original (sup) sense, matching
    :class:`~repro.sdp.solver.MISDPSolution.objective`.
    """
    report = CheckReport(subject=subject)
    if y is None:
        report.add("solution_present", False, "no variable vector to check")
        return report
    y = np.asarray(y, dtype=float)
    if not report.require(
        "solution_shape", y.shape == (misdp.num_vars,), f"got {y.shape}, need ({misdp.num_vars},)"
    ):
        return report

    report.add(
        "bounds",
        bool(np.all(y >= misdp.lb - tol) and np.all(y <= misdp.ub + tol)),
        "variable bound violated",
    )
    bad_int = [i for i in misdp.integers if abs(y[i] - round(y[i])) > tol]
    report.add("integrality", not bad_int, f"fractional integers at {bad_int}" if bad_int else "")
    for k, row in enumerate(misdp.linear_rows):
        act = sum(c * y[j] for j, c in row.coefs.items())
        rtol = tol * max(1.0, abs(row.lhs) if math.isfinite(row.lhs) else 1.0,
                         abs(row.rhs) if math.isfinite(row.rhs) else 1.0)
        report.add(
            f"linear_row_{k}",
            row.lhs - rtol <= act <= row.rhs + rtol,
            f"activity {act:.9g} outside [{row.lhs:.6g}, {row.rhs:.6g}]",
        )
    for k, block in enumerate(misdp.blocks):
        Z = block.evaluate(y)
        eigmin = float(np.linalg.eigvalsh(Z)[0])
        threshold = -tol * max(1.0, float(np.abs(Z).max()))
        report.add(
            f"psd_block_{k}",
            eigmin >= threshold,
            f"lambda_min(Z)={eigmin:.3e} < {threshold:.1e}",
            eigmin=eigmin,
        )
    if claimed_value is not None and math.isfinite(claimed_value):
        val = misdp.objective(y)
        scale = max(1.0, abs(val))
        report.add(
            "objective_recomputed",
            abs(val - claimed_value) <= tol * scale,
            f"b'y={val:.9g} vs claimed {claimed_value:.9g}",
        )
    return report


def check_misdp_result(misdp: MISDP, solution: Any, *, tol: float = 1e-6) -> CheckReport:
    """Certificate-check a :class:`~repro.sdp.solver.MISDPSolution`.

    Feasibility + objective of the best point, and weak duality in the
    sup sense (``dual_bound`` is an *upper* bound on ``b'y``).
    """
    report = CheckReport(subject=f"misdp[{misdp.name}]")
    if solution.y is None:
        report.add("no_incumbent", True, "nothing to certify")
        return report
    report.merge(
        check_misdp_solution(misdp, solution.y, solution.objective, tol=tol, subject=report.subject)
    )
    if math.isfinite(solution.dual_bound):
        scale = max(1.0, abs(solution.objective))
        report.add(
            "weak_duality",
            solution.objective <= solution.dual_bound + tol * scale,
            f"objective {solution.objective:.9g} above upper bound {solution.dual_bound:.9g}",
        )
    return report
