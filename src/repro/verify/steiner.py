"""Steiner solution checkers — validity, connectivity and weight
recomputation, independent of the solver that produced the tree.

Covers the three solution shapes of the transformation pipeline
(DESIGN.md §2): plain SPG trees (possibly expressed in *original* edge
ids expanded through reduction ancestors), prize-collecting trees, and
SAP arborescences. The UG-level helper audits a whole
:class:`~repro.ug.instantiation.UGResult` against the input graph.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.steiner.validation import validate_arborescence, validate_pc_tree, validate_tree
from repro.verify.result import CheckReport


def check_steiner_tree(
    graph: SteinerGraph,
    edge_ids: list[int],
    claimed_value: float | None = None,
    *,
    original: bool = False,
    tol: float = 1e-6,
    subject: str = "steiner",
) -> CheckReport:
    """Validate a tree and recompute its weight against ``claimed_value``."""
    report = CheckReport(subject=subject)
    try:
        cost = validate_tree(graph, list(edge_ids), original=original)
    except GraphError as exc:
        report.add("tree_valid", False, str(exc))
        return report
    report.add("tree_valid", True, edges=len(edge_ids), cost=cost)
    if claimed_value is not None:
        scale = max(1.0, abs(cost))
        report.add(
            "weight_recomputed",
            abs(cost - claimed_value) <= tol * scale,
            f"recomputed {cost:.9g} vs claimed {claimed_value:.9g}",
        )
    return report


def check_pc_solution(
    instance: Any,
    edge_ids: list[int],
    vertices: Iterable[int],
    claimed_value: float | None = None,
    *,
    tol: float = 1e-6,
    subject: str = "pcstp",
) -> CheckReport:
    """Validate a prize-collecting tree and its edge-cost + penalty value."""
    report = CheckReport(subject=subject)
    try:
        value = validate_pc_tree(instance, list(edge_ids), vertices)
    except GraphError as exc:
        report.add("pc_tree_valid", False, str(exc))
        return report
    report.add("pc_tree_valid", True, value=value)
    if claimed_value is not None:
        scale = max(1.0, abs(value))
        report.add(
            "pc_value_recomputed",
            abs(value - claimed_value) <= tol * scale,
            f"recomputed {value:.9g} vs claimed {claimed_value:.9g}",
        )
    return report


def check_sap_arborescence(
    sap: Any,
    arc_ids: list[int],
    claimed_value: float | None = None,
    *,
    tol: float = 1e-6,
    subject: str = "sap",
) -> CheckReport:
    """Validate an arborescence on a transformed (SAP) instance."""
    report = CheckReport(subject=subject)
    try:
        cost = validate_arborescence(sap, list(arc_ids))
    except GraphError as exc:
        report.add("arborescence_valid", False, str(exc))
        return report
    report.add("arborescence_valid", True, cost=cost)
    if claimed_value is not None:
        scale = max(1.0, abs(cost))
        report.add(
            "arc_cost_recomputed",
            abs(cost - claimed_value) <= tol * scale,
            f"recomputed {cost:.9g} vs claimed {claimed_value:.9g}",
        )
    return report


def check_ug_steiner_result(
    graph: SteinerGraph, result: Any, *, tol: float = 1e-6
) -> CheckReport:
    """Certificate-check a finished ug[SteinerJack, *] run.

    ``graph`` must be the *input* graph of the run (pre-presolve):
    incumbents ship original edge ids, so the tree re-validates and its
    weight recomputes there. Also asserts weak duality and, for runs
    claiming ``solved``, that the dual bound closes onto the incumbent.
    """
    report = CheckReport(subject=f"ug[{getattr(result, 'name', 'steiner')}]")
    inc = result.incumbent
    if inc is None:
        report.add("no_incumbent", True, "nothing to certify")
        return report
    edges = None
    if isinstance(inc.payload, dict):
        edges = inc.payload.get("edges")
    if edges is None:
        report.add("incumbent_payload", False, "incumbent carries no edge set")
        return report
    report.merge(
        check_steiner_tree(
            graph, list(edges), inc.value, original=True, tol=tol, subject=report.subject
        )
    )
    scale = max(1.0, abs(inc.value))
    if math.isfinite(result.dual_bound):
        report.add(
            "weak_duality",
            result.dual_bound <= inc.value + tol * scale,
            f"dual {result.dual_bound:.9g} exceeds primal {inc.value:.9g}",
        )
    if result.solved:
        # a solved claim is a proof of optimality within the configured
        # objective epsilon: the final bounds must essentially coincide
        gap_tol = max(tol * scale, 1.0 - 1e-9)  # integral objectives close within 1 unit
        report.add(
            "solved_gap_closed",
            math.isfinite(result.dual_bound) and inc.value - result.dual_bound <= gap_tol,
            f"solved claimed with dual {result.dual_bound:.9g} vs primal {inc.value:.9g}",
        )
    return report
