"""Tree auditors — replay a finished solve from its ``repro.obs`` trace.

The CIP kernel emits one ``bb_node`` event per popped node (how it was
resolved) and one ``bb_incumbent`` event per accepted primal bound; the
UG layer emits ``assign``/``racing_start``/``incumbent``/``solution``/
``step`` events. From those streams alone — without trusting any solver
state — the auditors assert the branch-and-bound invariants:

* every popped node is branched, pruned by a bound that beats the
  cutoff, infeasible, resolved by a feasible solution, or explicitly
  forfeited (``unresolved``);
* node bounds never decrease along tree edges or within a node;
* the incumbent sequence is strictly improving and never worse than any
  solution the trace reports;
* a claimed OPTIMAL/solved status admits no unresolved node;
* UG node accounting is consistent with :class:`~repro.ug.statistics.UGStatistics`.

An overflowing ring buffer (``Tracer.dropped > 0``) voids the audit —
invariants cannot be certified from a partial stream, so the auditors
*refuse* (one failing ``trace_complete`` check) rather than guess.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.obs.trace import TraceEvent, Tracer
from repro.verify.result import CheckReport

BB_OUTCOMES = frozenset({"branched", "pruned_bound", "infeasible", "solution", "unresolved"})


def _as_events(trace: Tracer | Iterable[TraceEvent]) -> tuple[list[TraceEvent], int]:
    if isinstance(trace, Tracer):
        return trace.events(), trace.dropped
    return list(trace), 0


def audit_cip_trace(
    trace: Tracer | Iterable[TraceEvent],
    result: Any = None,
    *,
    rank: int | None = None,
    tol: float = 1e-6,
    dropped: int | None = None,
) -> CheckReport:
    """Audit the ``bb_node``/``bb_incumbent`` stream of one CIP solve.

    ``result`` (a :class:`~repro.cip.result.SolveResult`) tightens the
    audit with final-state cross-checks; ``rank`` restricts the audit to
    one solver's events inside a shared UG trace. ``dropped`` overrides
    the overflow count when auditing a plain event list.
    """
    events, trace_dropped = _as_events(trace)
    if dropped is not None:
        trace_dropped = dropped
    report = CheckReport(subject="cip-tree" if rank is None else f"cip-tree[rank {rank}]")
    if not report.require(
        "trace_complete",
        trace_dropped == 0,
        f"ring buffer overflowed: {trace_dropped} events dropped (Tracer.dropped="
        f"{trace_dropped}, mirrored on UGResult.trace_dropped / "
        f"stats.trace_events_dropped); invariants cannot be certified from a "
        f"partial stream — raise UGConfig.trace_capacity; audit void",
    ):
        return report
    if rank is not None:
        events = [e for e in events if e.rank == rank]
    nodes = [e for e in events if e.kind == "bb_node"]
    incumbents = [e for e in events if e.kind == "bb_incumbent"]
    if not nodes and not incumbents:
        return report.mark_skipped("no bb events in trace (tracer disabled or solve untraced)")

    # incumbent sequence: strictly improving, per event timestamp order
    inc_value = math.inf
    inc_ok = True
    for e in incumbents:
        v = float(e.data["value"])
        if v >= inc_value + tol:
            inc_ok = False
            report.add("incumbent_improving", False,
                       f"incumbent went from {inc_value:.9g} to {v:.9g} at t={e.t:.6g}")
            break
        inc_value = min(inc_value, v)
    if inc_ok:
        report.add("incumbent_improving", True, count=len(incumbents))

    bound_out: dict[int, float] = {}  # node id -> final bound at resolution
    n_unresolved = 0
    n_processed = 0
    n_tree_resets = 0
    seen: set[int] = set()
    # replay in emission order (the tracer preserves it): timestamps alone
    # cannot order an incumbent found *during* a node against that node
    inc_running = math.inf
    for e in events:
        if e.kind == "bb_incumbent":
            inc_running = min(inc_running, float(e.data["value"]))
            continue
        if e.kind != "bb_node":
            continue
        d = e.data
        nid = int(d["node"])
        if nid == 0 and int(d["depth"]) == 0 and nid in seen:
            # a fresh root: the solver started a new tree (UG ParaSolvers
            # build one CIPSolver per received subproblem, and in-solve
            # restarts rebuild the tree mid-run) — node ids and parent
            # bounds reset, the incumbent carries across
            seen.clear()
            bound_out.clear()
            n_tree_resets += 1
        outcome = str(d["outcome"])
        b_in, b_out = float(d["bound_in"]), float(d["bound"])
        scale = max(1.0, abs(b_out) if math.isfinite(b_out) else 1.0)
        if not report.require(f"outcome_known[{nid}]", outcome in BB_OUTCOMES, f"outcome {outcome!r}"):
            continue
        if nid in seen:
            report.add(f"node_unique[{nid}]", False, "node resolved twice")
            continue
        seen.add(nid)
        if b_out < b_in - tol * scale:
            report.add(f"bound_monotone[{nid}]", False,
                       f"bound decreased from {b_in:.9g} to {b_out:.9g}")
        parent = int(d["parent"])
        if parent in bound_out and b_in < bound_out[parent] - tol * scale:
            report.add(f"parent_bound[{nid}]", False,
                       f"child bound_in {b_in:.9g} below parent bound {bound_out[parent]:.9g}")
        if outcome == "pruned_bound":
            cutoff = float(d["cutoff"])
            if not (b_out >= cutoff - tol * scale):
                report.add(f"prune_justified[{nid}]", False,
                           f"pruned with bound {b_out:.9g} below cutoff {cutoff:.9g}")
            if math.isfinite(inc_running) and cutoff > inc_running + tol * scale:
                report.add(f"cutoff_vs_incumbent[{nid}]", False,
                           f"cutoff {cutoff:.9g} above known incumbent {inc_running:.9g}")
        elif outcome == "solution":
            value = float(d.get("value", math.nan))
            if not (value >= b_out - tol * max(1.0, abs(value))):
                report.add(f"solution_respects_bound[{nid}]", False,
                           f"feasible value {value:.9g} below node bound {b_out:.9g}")
        elif outcome == "unresolved":
            n_unresolved += 1
        if outcome in ("branched", "solution", "infeasible", "unresolved") or d.get("processed"):
            bound_out[nid] = b_out
        if d.get("processed"):
            n_processed += 1
    report.add("nodes_audited", True, total=len(nodes), processed=n_processed,
               unresolved=n_unresolved)

    if result is not None:
        status = getattr(result.status, "value", str(result.status))
        if status in ("optimal", "infeasible"):
            report.add("complete_claim_vs_unresolved", n_unresolved == 0,
                       f"status {status} claimed with {n_unresolved} unresolved nodes")
        if incumbents and result.best_solution is not None:
            final = float(incumbents[-1].data["value"])
            scale = max(1.0, abs(final))
            report.add("final_incumbent_matches", abs(final - result.objective) <= tol * scale,
                       f"trace incumbent {final:.9g} vs result {result.objective:.9g}")
        if result.best_solution is not None and math.isfinite(result.dual_bound):
            scale = max(1.0, abs(result.objective))
            report.add("weak_duality", result.dual_bound <= result.objective + tol * scale,
                       f"dual {result.dual_bound:.9g} above primal {result.objective:.9g}")
        stats = getattr(result, "stats", None)
        if stats is not None:
            report.add("nodes_processed_accounting", n_processed == stats.nodes_processed,
                       f"trace saw {n_processed} processed nodes, stats say {stats.nodes_processed}")
            traced_unresolved = int(stats.extra.get("unresolved_nodes", 0))
            report.add("unresolved_accounting", n_unresolved == traced_unresolved,
                       f"trace saw {n_unresolved}, stats say {traced_unresolved}")
            # estimation-driven restarts: every restart the solver claims
            # must appear as a `restart` trace event, and each one must be
            # witnessed by a fresh-root tree reset in the bb_node stream
            n_restart_events = sum(1 for e in events if e.kind == "restart")
            claimed = int(stats.extra.get("restarts", 0))
            report.add(
                "restart_accounting",
                n_restart_events == claimed and n_restart_events <= n_tree_resets,
                f"trace saw {n_restart_events} restart events over {n_tree_resets} "
                f"tree resets, stats say {claimed}",
            )
    return report


def audit_ug_run(result: Any, *, tol: float = 1e-6) -> CheckReport:
    """Audit a :class:`~repro.ug.instantiation.UGResult` against its trace.

    Fault-free runs get strict node accounting (every transfer and every
    processed node reconciled with :class:`UGStatistics`); runs with
    injected faults or dead solvers keep only the sound-by-construction
    invariants (incumbent monotonicity, weak duality, solved-claim gap).
    """
    report = CheckReport(subject=f"ug-audit[{getattr(result, 'name', '?')}]")
    stats = result.stats
    primal = result.objective
    scale = max(1.0, abs(primal) if math.isfinite(primal) else 1.0)

    if math.isfinite(result.dual_bound) and math.isfinite(primal):
        report.add("weak_duality", result.dual_bound <= primal + tol * scale,
                   f"dual {result.dual_bound:.9g} above primal {primal:.9g}")
    if result.solved:
        report.add("solved_has_incumbent", result.incumbent is not None)
        gap_tol = max(tol * scale, 1.0 - 1e-9)  # integral objectives close within one unit
        report.add("solved_gap_closed",
                   math.isfinite(result.dual_bound) and primal - result.dual_bound <= gap_tol,
                   f"solved with dual {result.dual_bound:.9g} vs primal {primal:.9g}")
    report.add("primal_final_matches", stats.primal_final == primal
               or abs(stats.primal_final - primal) <= tol * scale,
               f"stats.primal_final {stats.primal_final:.9g} vs incumbent {primal:.9g}")

    trace = result.trace
    if trace is None or (not trace.enabled and len(trace) == 0):
        return report.mark_skipped("run was not traced") if not report.checks else report
    if not report.require(
        "trace_complete",
        trace.dropped == 0,
        f"ring buffer overflowed: {trace.dropped} events dropped (Tracer.dropped="
        f"{trace.dropped}, mirrored on UGResult.trace_dropped); raise "
        f"UGConfig.trace_capacity; accounting audit void",
    ):
        return report
    events = trace.events()

    inc_events = [e for e in events if e.kind == "incumbent"]
    inc_ok = True
    prev = math.inf
    for e in inc_events:
        v = float(e.data["value"])
        if v >= prev + tol:
            inc_ok = False
            report.add("incumbent_improving", False,
                       f"LC incumbent went from {prev:.9g} to {v:.9g} at t={e.t:.6g}")
            break
        prev = min(prev, v)
    if inc_ok:
        report.add("incumbent_improving", True, count=len(inc_events))
    if inc_events and result.incumbent is not None:
        final = float(inc_events[-1].data["value"])
        report.add("final_incumbent_matches", abs(final - primal) <= tol * scale,
                   f"trace incumbent {final:.9g} vs result {primal:.9g}")

    sol_values = [float(e.data["value"]) for e in events if e.kind == "solution"]
    if sol_values and result.incumbent is not None:
        best_seen = min(sol_values)
        report.add("incumbent_not_worse_than_solutions", primal <= best_seen + tol * scale,
                   f"incumbent {primal:.9g} worse than reported solution {best_seen:.9g}")

    # elastic-membership reconciliation (repro.ug.cluster): graceful churn
    # — runtime joins and drains — is NOT a fault, and its trace events
    # are emitted by the LoadCoordinator in lockstep with the metrics, so
    # these checks stay sound even on otherwise-faulty runs
    joins = [e for e in events if e.kind == "rank_join"]
    drained = [e for e in events if e.kind == "rank_drained"]
    if joins or drained or stats.ranks_joined or stats.ranks_drained:
        report.add("ranks_joined_accounting", len(joins) == stats.ranks_joined,
                   f"trace saw {len(joins)} joins, stats say {stats.ranks_joined}")
        report.add("ranks_drained_accounting", len(drained) == stats.ranks_drained,
                   f"trace saw {len(drained)} drains, stats say {stats.ranks_drained}")
        n_returned = sum(1 for e in drained if e.data.get("requeued"))
        report.add("nodes_returned_accounting", n_returned == stats.nodes_returned,
                   f"trace saw {n_returned} returned nodes, stats say {stats.nodes_returned}")
        # a drained rank is gone: nothing may be assigned to it afterwards
        drained_at = {e.rank: e.t for e in drained}
        late = [e for e in events
                if e.kind == "assign" and e.rank in drained_at and e.t > drained_at[e.rank]]
        report.add("no_assign_after_drain", not late,
                   "" if not late else
                   f"rank {late[0].rank} assigned at t={late[0].t:.6g} after draining")

    faulty = (
        stats.solver_failures > 0
        or stats.step_failures > 0
        or stats.faults_injected > 0
        or stats.messages_dropped > 0
        or any(e.kind == "crash" for e in events)
    )
    if faulty:
        report.add("fault_tolerant_run", True,
                   "accounting audit skipped: faults observed", strict=False)
        return report

    n_transfers = sum(1 for e in events if e.kind in ("assign", "racing_start"))
    report.add("transferred_nodes_accounting", n_transfers == stats.transferred_nodes,
               f"trace saw {n_transfers} transfers, stats say {stats.transferred_nodes}")

    # each step event carries its per-step node count; the per-rank sums
    # must reconcile with the cumulative totals solvers report on
    # STATUS/TERMINATED, which is what UGStatistics.nodes_generated sums.
    # Under the ProcessEngine the steps happen inside worker processes
    # whose tracers cannot feed the parent's ring buffer: the parent
    # trace then has no step events at all while nodes were genuinely
    # processed — the LC-side checks above still hold, but node-level
    # reconciliation is not available.
    step_events = [e for e in events if e.kind == "step"]
    if not step_events and stats.nodes_generated > 0:
        report.add("remote_solver_steps", True,
                   "solver steps ran in worker processes; node accounting skipped",
                   strict=False)
        return report
    traced_nodes = sum(int(e.data.get("nodes", 0)) for e in step_events)
    report.add("nodes_generated_accounting", traced_nodes == stats.nodes_generated,
               f"trace saw {traced_nodes} processed nodes, stats say {stats.nodes_generated}")
    return report
