"""Check results — the common report type of every verification oracle.

A checker never raises on a *failed check* (that is the finding it
exists to report); it returns a :class:`CheckReport` whose entries say
exactly which invariant held or broke. Callers that want hard failure
semantics (benchmarks, CI gates) call :meth:`CheckReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import VerificationError


@dataclass(frozen=True)
class CheckResult:
    """One verified (or violated) invariant."""

    name: str
    ok: bool
    detail: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{tail}"


@dataclass
class CheckReport:
    """An ordered collection of check results for one artifact.

    ``skipped`` marks reports the checker refused to evaluate (e.g. a
    tree audit over an incomplete ring-buffered trace): no claim is made
    either way, and ``ok`` stays True so skipped reports do not fail
    pipelines — the ``skipped`` flag itself is the signal.
    """

    subject: str = ""
    checks: list[CheckResult] = field(default_factory=list)
    skipped: bool = False
    skip_reason: str = ""

    def add(self, name: str, ok: bool, detail: str = "", **data: Any) -> CheckResult:
        res = CheckResult(name, bool(ok), detail, data)
        self.checks.append(res)
        return res

    def require(self, name: str, ok: bool, detail: str = "", **data: Any) -> bool:
        """Like :meth:`add` but returns the verdict for early-exit flows."""
        return self.add(name, ok, detail, **data).ok

    def merge(self, other: "CheckReport") -> "CheckReport":
        self.checks.extend(other.checks)
        if other.skipped and not self.checks:
            self.skipped = True
            self.skip_reason = self.skip_reason or other.skip_reason
        return self

    def mark_skipped(self, reason: str) -> "CheckReport":
        self.skipped = True
        self.skip_reason = reason
        return self

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.ok)

    @property
    def failed(self) -> int:
        return sum(1 for c in self.checks if not c.ok)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def raise_if_failed(self) -> "CheckReport":
        """Raise :class:`VerificationError` summarising every failure."""
        if not self.ok:
            lines = [str(c) for c in self.failures]
            subject = f"{self.subject}: " if self.subject else ""
            raise VerificationError(
                f"{subject}{self.failed}/{len(self.checks)} checks failed\n" + "\n".join(lines)
            )
        return self

    def record(self, metrics: Any) -> "CheckReport":
        """Mirror the tallies onto a :class:`~repro.obs.metrics.MetricsRegistry`.

        Counters: ``verify_checks`` (total evaluated), ``verify_failures``
        and ``verify_reports_skipped`` — the repro.obs wiring that makes
        verification itself observable.
        """
        if self.skipped:
            metrics.inc("verify_reports_skipped")
        if self.checks:
            metrics.inc("verify_checks", len(self.checks))
        if self.failed:
            metrics.inc("verify_failures", self.failed)
        return self

    def summary(self) -> str:
        subject = self.subject or "report"
        if self.skipped and not self.checks:
            return f"{subject}: skipped ({self.skip_reason})"
        head = f"{subject}: {self.passed}/{len(self.checks)} checks passed"
        if self.failed:
            head += "\n" + "\n".join(str(c) for c in self.failures)
        return head

    def __str__(self) -> str:
        return self.summary()
