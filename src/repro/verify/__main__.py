"""Standalone checker CLI: audit a bench artifact and/or a trace export.

Usage::

    python -m repro.verify --trace run.jsonl [--bench BENCH_table1.json]

The trace (a :meth:`~repro.obs.trace.Tracer.dump` JSONL export) is
replayed through the tree auditors: the CIP ``bb_node`` stream per rank,
plus the UG-level incumbent/solution invariants that need no solver
state. The bench JSON is scanned for obviously inconsistent
primal/dual pairs. Exit status is non-zero when any check fails — wire
it after a benchmark run to gate on certified results.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.obs.trace import load_trace_jsonl
from repro.verify.result import CheckReport
from repro.verify.tree_audit import audit_cip_trace


def audit_trace_file(path: str | Path) -> list[CheckReport]:
    """Audit every solver rank's bb stream found in a JSONL trace export."""
    events = load_trace_jsonl(Path(path))
    reports: list[CheckReport] = []
    ranks = sorted({e.rank for e in events if e.kind == "bb_node"})
    for rank in ranks:
        reports.append(audit_cip_trace(events, rank=rank))
    # UG-level invariants checkable without the UGResult object
    ug_report = CheckReport(subject="ug-trace")
    inc = [float(e.data["value"]) for e in events if e.kind == "incumbent"]
    ug_report.add(
        "incumbent_improving",
        all(b < a + 1e-9 for a, b in zip(inc, inc[1:])),
        f"sequence {inc}" if inc else "no incumbent events",
    )
    sols = [float(e.data["value"]) for e in events if e.kind == "solution"]
    if inc and sols:
        ug_report.add(
            "incumbent_not_worse_than_solutions",
            inc[-1] <= min(sols) + 1e-9 * max(1.0, abs(inc[-1])),
            f"final incumbent {inc[-1]:.9g} vs best reported solution {min(sols):.9g}",
        )
    if inc or sols or ranks:
        reports.append(ug_report)
    return reports


def _scan_bench_payload(obj: object, path: str, report: CheckReport) -> None:
    """Recursively flag primal/dual pairs that violate weak duality."""
    if isinstance(obj, dict):
        keys = {k.lower(): k for k in obj if isinstance(k, str)}
        for p_key, d_key in (("primal", "dual"), ("primal_final", "dual_final")):
            if p_key in keys and d_key in keys:
                p, d = obj[keys[p_key]], obj[keys[d_key]]
                if isinstance(p, (int, float)) and isinstance(d, (int, float)) \
                        and math.isfinite(p) and math.isfinite(d):
                    report.add(
                        f"weak_duality[{path}]",
                        d <= p + 1e-6 * max(1.0, abs(p)),
                        f"dual {d:.9g} above primal {p:.9g}",
                    )
        for k, v in obj.items():
            _scan_bench_payload(v, f"{path}.{k}", report)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            _scan_bench_payload(v, f"{path}[{i}]", report)


def check_bench_file(path: str | Path) -> CheckReport:
    """Structural + weak-duality scan of a ``BENCH_*.json`` artifact."""
    report = CheckReport(subject=f"bench[{Path(path).name}]")
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        report.add("readable", False, str(exc))
        return report
    report.add("readable", True)
    _scan_bench_payload(payload, "$", report)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Run the standalone verification oracles on run artifacts.",
    )
    parser.add_argument("--trace", type=Path, help="JSONL trace export (Tracer.dump)")
    parser.add_argument("--bench", type=Path, help="BENCH_*.json artifact to scan")
    args = parser.parse_args(argv)
    if args.trace is None and args.bench is None:
        parser.error("need --trace and/or --bench")

    reports: list[CheckReport] = []
    if args.bench is not None:
        reports.append(check_bench_file(args.bench))
    if args.trace is not None:
        reports.extend(audit_trace_file(args.trace))

    failed = 0
    for report in reports:
        print(report.summary())
        failed += report.failed
    print(f"verify: {sum(r.passed for r in reports)} passed, {failed} failed, "
          f"{sum(1 for r in reports if r.skipped)} skipped reports")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
