"""Differential oracles — cross-checks between independent solution paths.

Three families, all seeded and dependency-free:

* **brute force** — exhaustive enumeration for tiny STP / binary-MIP /
  all-integer MISDP instances; the B&B answer must match exactly;
* **backend cross-checks** — the bundled simplex vs the HiGHS backend on
  randomized LPs, each certificate independently verified;
* **engine equivalence** — a ug[...] run under the SimEngine and the
  ThreadEngine must prove the same optimum (timing differs, the
  mathematics may not).

The brute-force helpers are also re-exported through ``tests/conftest.py``
for direct use in the test suite.
"""

from __future__ import annotations

import itertools
import math
from typing import Any

import numpy as np

from repro.lp.interface import solve_lp
from repro.lp.model import LinearProgram, LPStatus
from repro.sdp.model import MISDP
from repro.steiner.graph import SteinerGraph
from repro.steiner.mst import mst_on_subgraph, prune_steiner_tree
from repro.verify.lp import check_lp_certificate
from repro.verify.result import CheckReport

# -- brute-force references ----------------------------------------------------


def brute_force_steiner(graph: SteinerGraph) -> float | None:
    """Exact SPG optimum by enumerating Steiner-vertex subsets (tiny graphs)."""
    terms = [int(t) for t in graph.terminals]
    if len(terms) <= 1:
        return 0.0
    nonterms = [int(v) for v in graph.alive_vertices() if not graph.is_terminal(int(v))]
    best: float | None = None
    for k in range(len(nonterms) + 1):
        for sub in itertools.combinations(nonterms, k):
            vs = set(terms) | set(sub)
            r = mst_on_subgraph(graph, vs)
            if r is None:
                continue
            _, cost = prune_steiner_tree(graph, r[0])
            if best is None or cost < best:
                best = cost
    return best


def brute_force_binary_mip(c: np.ndarray, A: np.ndarray, b: np.ndarray) -> float | None:
    """min c'x s.t. Ax <= b, x binary — exhaustive."""
    n = len(c)
    best: float | None = None
    for k in range(2**n):
        x = np.array([(k >> i) & 1 for i in range(n)], dtype=float)
        if np.all(A @ x <= b + 1e-9):
            val = float(c @ x)
            if best is None or val < best:
                best = val
    return best


def brute_force_misdp(misdp: MISDP, max_points: int = 1 << 20) -> tuple[float, np.ndarray] | None:
    """Exact optimum of an all-integer MISDP by integer-grid enumeration.

    Returns ``(b'y, y)`` of the best feasible point in the sup sense, or
    None if no grid point is feasible. Requires every variable integer
    with finite bounds and a grid no larger than ``max_points``.
    """
    n = misdp.num_vars
    if set(misdp.integers) != set(range(n)):
        raise ValueError("brute_force_misdp needs an all-integer instance")
    ranges = []
    total = 1
    for i in range(n):
        if not (math.isfinite(misdp.lb[i]) and math.isfinite(misdp.ub[i])):
            raise ValueError(f"variable {i} has unbounded domain")
        lo, hi = math.ceil(misdp.lb[i] - 1e-9), math.floor(misdp.ub[i] + 1e-9)
        ranges.append(range(int(lo), int(hi) + 1))
        total *= len(ranges[-1])
        if total > max_points:
            raise ValueError(f"grid larger than {max_points} points")
    best: tuple[float, np.ndarray] | None = None
    for point in itertools.product(*ranges):
        y = np.array(point, dtype=float)
        if not misdp.is_feasible(y):
            continue
        val = misdp.objective(y)
        if best is None or val > best[0]:
            best = (val, y)
    return best


# -- randomized LP generation + backend cross-check ----------------------------


def random_lp(rng: np.random.Generator, n_vars: int = 6, n_rows: int = 5) -> LinearProgram:
    """A random bounded-feasible LP with a mix of <=, >= and range rows.

    Feasibility is guaranteed by construction: every row is calibrated
    against a random interior point; boundedness by finite variable
    bounds.
    """
    lp = LinearProgram()
    x0 = rng.uniform(0.2, 0.8, size=n_vars)
    for j in range(n_vars):
        lp.add_variable(0.0, float(rng.uniform(1.0, 4.0)), float(rng.uniform(-5.0, 5.0)), f"x{j}")
    for i in range(n_rows):
        support = rng.choice(n_vars, size=min(n_vars, int(rng.integers(2, 5))), replace=False)
        coefs = {int(j): float(rng.uniform(-3.0, 3.0)) for j in support}
        act0 = sum(v * x0[j] for j, v in coefs.items())
        kind = int(rng.integers(0, 3))
        slack = float(rng.uniform(0.1, 2.0))
        if kind == 0:  # <=
            lp.add_row(coefs, rhs=act0 + slack, name=f"r{i}")
        elif kind == 1:  # >=
            lp.add_row(coefs, lhs=act0 - slack, name=f"r{i}")
        else:  # range
            lp.add_row(coefs, lhs=act0 - slack, rhs=act0 + slack, name=f"r{i}")
    return lp


def cross_check_lp(lp: LinearProgram, tol: float = 1e-6) -> CheckReport:
    """Solve with both backends; statuses, objectives and certificates must agree."""
    report = CheckReport(subject="lp-cross-check")
    sols = {backend: solve_lp(lp, backend) for backend in ("simplex", "highs")}
    report.add(
        "status_agreement",
        sols["simplex"].status is sols["highs"].status,
        f"simplex={sols['simplex'].status.value} highs={sols['highs'].status.value}",
    )
    if all(s.status is LPStatus.OPTIMAL for s in sols.values()):
        a, b = sols["simplex"].objective, sols["highs"].objective
        scale = max(1.0, abs(a), abs(b))
        report.add("objective_agreement", abs(a - b) <= tol * scale,
                   f"simplex {a:.9g} vs highs {b:.9g}")
        for backend, sol in sols.items():
            sub = check_lp_certificate(lp, sol, tol=tol, subject=f"lp[{backend}]")
            report.require(f"certificate_{backend}", sub.ok, sub.summary())
    return report


# -- engine equivalence --------------------------------------------------------


def cross_check_engines(
    graph: SteinerGraph,
    n_solvers: int = 2,
    seed: int = 0,
    *,
    tol: float = 1e-6,
    **config_kwargs: Any,
) -> CheckReport:
    """Run ug[SteinerJack] under both engines; the proven optimum must agree.

    The SimEngine result is bit-deterministic, the ThreadEngine one is
    schedule-dependent — but on instances both engines solve to proven
    optimality the *objective* is an invariant. Each incumbent is also
    certificate-checked against the input graph.
    """
    from repro.apps.stp_plugins import SteinerUserPlugins
    from repro.ug import ug
    from repro.ug.config import UGConfig
    from repro.verify.steiner import check_ug_steiner_result

    report = CheckReport(subject="engine-equivalence")
    config_kwargs.setdefault("time_limit", 1e9)
    config_kwargs.setdefault("objective_epsilon", 1 - 1e-6)
    results = {}
    for comm in ("sim", "threads"):
        solver = ug(
            graph.copy(),
            SteinerUserPlugins(),
            n_solvers=n_solvers,
            comm=comm,
            config=UGConfig(**config_kwargs),
            seed=seed,
            wall_clock_limit=120.0,
        )
        results[comm] = solver.run()
        report.require(f"solved_{comm}", results[comm].solved,
                       f"{comm} engine failed to prove optimality")
        sub = check_ug_steiner_result(graph, results[comm], tol=tol)
        report.require(f"certificate_{comm}", sub.ok, sub.summary())
    a, b = results["sim"].objective, results["threads"].objective
    if math.isfinite(a) and math.isfinite(b):
        scale = max(1.0, abs(a), abs(b))
        report.add("objective_agreement", abs(a - b) <= tol * scale,
                   f"sim {a:.9g} vs threads {b:.9g}")
    return report
