"""LP certificate checking — primal/dual feasibility, complementary
slackness and duality against an :class:`~repro.lp.model.LPSolution`.

The LP is ``min c'x  s.t.  lhs <= A x <= rhs,  lb <= x <= ub``. The
solution carries row duals (binding ``>= lhs`` row: dual >= 0, binding
``<= rhs`` row: dual <= 0) and reduced costs ``r = c - A'duals``. A
correct optimal certificate therefore satisfies

* primal feasibility of ``x`` and ``objective == c'x``,
* dual sign conventions per row type,
* stationarity: ``r == c - A' duals`` exactly as stored,
* dual feasibility: ``r_j >= 0`` where ``x_j`` sits at its lower bound,
  ``r_j <= 0`` at the upper bound, ``r_j == 0`` strictly between,
* complementary slackness: a nonzero dual implies a binding row (on the
  side its sign selects),
* strong duality: the dual objective
  ``sum_i lhs_i [y_i]_+ + rhs_i [y_i]_-  +  sum_j lb_j [r_j]_+ + ub_j [r_j]_-``
  equals the primal objective.

Every quantity is recomputed from the raw arrays — nothing is trusted
from the solver beyond the certificate itself.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lp.model import LinearProgram, LPSolution, LPStatus
from repro.verify.result import CheckReport


def check_lp_certificate(
    lp: LinearProgram, sol: LPSolution, tol: float = 1e-6, subject: str = "lp"
) -> CheckReport:
    """Verify an optimal LP certificate; non-OPTIMAL solves are skipped."""
    report = CheckReport(subject=subject)
    if sol.status is not LPStatus.OPTIMAL:
        return report.mark_skipped(f"no certificate for status {sol.status.value}")

    c, A, lhs, rhs, lb, ub = lp.to_arrays()
    x = np.asarray(sol.x, dtype=float)
    y = np.asarray(sol.duals, dtype=float)
    r = np.asarray(sol.reduced_costs, dtype=float)
    m, n = A.shape

    shapes_ok = x.shape == (n,) and y.shape == (m,) and r.shape == (n,)
    if not report.require("shapes", shapes_ok, f"x{x.shape} duals{y.shape} rc{r.shape} vs n={n} m={m}"):
        return report

    scale = max(1.0, float(np.abs(c).sum()), float(np.abs(x).max(initial=0.0)))
    ftol = tol * scale

    report.add(
        "primal_feasible",
        bool(np.all(x >= lb - ftol) and np.all(x <= ub + ftol)) and lp.is_feasible(x, ftol),
        "bounds or rows violated" if not lp.is_feasible(x, ftol) else "",
    )
    cx = float(c @ x)
    report.add(
        "objective_recomputed",
        abs(cx - sol.objective) <= ftol,
        f"c'x={cx:.9g} vs reported {sol.objective:.9g}",
    )

    activity = A @ x
    for i in range(m):
        if y[i] > tol and math.isfinite(lhs[i]):
            report.add(
                f"compl_slack_row_{i}",
                activity[i] <= lhs[i] + ftol,
                f"dual {y[i]:.3g} > 0 but activity {activity[i]:.6g} not at lhs {lhs[i]:.6g}",
            )
        elif y[i] < -tol and math.isfinite(rhs[i]):
            report.add(
                f"compl_slack_row_{i}",
                activity[i] >= rhs[i] - ftol,
                f"dual {y[i]:.3g} < 0 but activity {activity[i]:.6g} not at rhs {rhs[i]:.6g}",
            )
        if y[i] > tol and not math.isfinite(lhs[i]):
            report.add(f"dual_sign_row_{i}", False, f"positive dual {y[i]:.3g} on a <=-only row")
        if y[i] < -tol and not math.isfinite(rhs[i]):
            report.add(f"dual_sign_row_{i}", False, f"negative dual {y[i]:.3g} on a >=-only row")

    rc = c - A.T @ y
    report.add(
        "stationarity",
        bool(np.all(np.abs(rc - r) <= ftol)),
        f"max |c - A'y - r| = {float(np.abs(rc - r).max(initial=0.0)):.3g}",
    )

    dual_feas = True
    why = ""
    for j in range(n):
        at_lb = x[j] <= lb[j] + ftol
        at_ub = x[j] >= ub[j] - ftol
        if at_lb and r[j] < -ftol and not at_ub:
            dual_feas, why = False, f"x[{j}] at lb but reduced cost {r[j]:.3g} < 0"
            break
        if at_ub and r[j] > ftol and not at_lb:
            dual_feas, why = False, f"x[{j}] at ub but reduced cost {r[j]:.3g} > 0"
            break
        if not at_lb and not at_ub and abs(r[j]) > ftol:
            dual_feas, why = False, f"x[{j}] interior but reduced cost {r[j]:.3g} != 0"
            break
    report.add("dual_feasibility", dual_feas, why)

    dual_obj = 0.0
    finite = True
    for i in range(m):
        if y[i] > tol:
            if not math.isfinite(lhs[i]):
                finite = False
            else:
                dual_obj += lhs[i] * y[i]
        elif y[i] < -tol:
            if not math.isfinite(rhs[i]):
                finite = False
            else:
                dual_obj += rhs[i] * y[i]
    for j in range(n):
        if r[j] > ftol:
            if not math.isfinite(lb[j]):
                finite = False
            else:
                dual_obj += lb[j] * r[j]
        elif r[j] < -ftol:
            if not math.isfinite(ub[j]):
                finite = False
            else:
                dual_obj += ub[j] * r[j]
    if finite:
        # weak duality says dual_obj <= c'x for every dual-feasible y;
        # strong duality makes the certificate tight at the optimum
        gtol = tol * max(1.0, abs(cx), abs(dual_obj))
        report.add("weak_duality", dual_obj <= cx + gtol, f"dual obj {dual_obj:.9g} > primal {cx:.9g}")
        report.add(
            "strong_duality",
            abs(dual_obj - cx) <= 10.0 * gtol,
            f"dual obj {dual_obj:.9g} vs primal {cx:.9g}",
        )
    else:
        report.add("weak_duality", False, "nonzero multiplier on an infinite bound")
    return report
