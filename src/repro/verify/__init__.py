"""repro.verify — independent verification oracles for the whole stack.

Nothing in this package shares code with the solvers it audits: Steiner
trees are re-validated edge by edge, MISDP points go through fresh
eigenvalue computations, LP certificates are recomputed from the raw
arrays, and finished B&B runs are replayed from their ``repro.obs``
traces. See DESIGN.md §5d.

Three layers:

* **solution checkers** (:mod:`~repro.verify.steiner`,
  :mod:`~repro.verify.sdp`, :mod:`~repro.verify.lp`) — validity,
  connectivity/PSD-ness and weight/objective recomputation;
* **tree auditors** (:mod:`~repro.verify.tree_audit`) — B&B invariants
  replayed from the event trace;
* **differential oracles** (:mod:`~repro.verify.differential`) — brute
  force, backend cross-checks and engine equivalence.

Everything reports through :class:`~repro.verify.result.CheckReport`,
which can mirror its tallies onto a ``repro.obs`` metrics registry.
``python -m repro.verify`` runs the auditors standalone on a
``BENCH_*.json`` + trace-JSONL pair.
"""

from repro.verify.result import CheckReport, CheckResult
from repro.verify.lp import check_lp_certificate
from repro.verify.sdp import check_misdp_result, check_misdp_solution
from repro.verify.steiner import (
    check_pc_solution,
    check_sap_arborescence,
    check_steiner_tree,
    check_ug_steiner_result,
)
from repro.verify.restart import audit_restart_coverage
from repro.verify.tree_audit import audit_cip_trace, audit_ug_run
from repro.verify.differential import (
    brute_force_binary_mip,
    brute_force_misdp,
    brute_force_steiner,
    cross_check_engines,
    cross_check_lp,
    random_lp,
)

__all__ = [
    "CheckReport",
    "CheckResult",
    "check_lp_certificate",
    "check_misdp_result",
    "check_misdp_solution",
    "check_pc_solution",
    "check_sap_arborescence",
    "check_steiner_tree",
    "check_ug_steiner_result",
    "audit_cip_trace",
    "audit_restart_coverage",
    "audit_ug_run",
    "brute_force_binary_mip",
    "brute_force_misdp",
    "brute_force_steiner",
    "cross_check_engines",
    "cross_check_lp",
    "random_lp",
]
