"""Shape-changing restart auditor.

The paper's checkpoint/restart series (Tables 2-3) always resume on the
same cluster shape — the MPI world size is fixed per job.  The elastic
runtime (``repro.ug.cluster``) drops that assumption: a checkpoint
written at N ranks restarts on M ranks, M != N.  What must survive the
reshaping is the *frontier*: every primitive node the dying run saved has
to reappear in the restored pool, bound for bound, or the restarted run
could silently claim an optimum over a dropped subtree.

:func:`audit_restart_coverage` is the independent check: it compares the
checkpoint's saved nodes against the pool the fresh LoadCoordinator
actually restored (``lc.restored_nodes``, snapshotted before any
assignment renumbers or hands out nodes), as a multiset keyed on the
solver-independent subproblem content — never on lc_ids, which a restart
legitimately reassigns.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.ug.checkpoint import Checkpoint
from repro.ug.para_node import ParaNode
from repro.verify.result import CheckReport


def _node_key(node: ParaNode) -> tuple[str, int]:
    """Identity of a subproblem across a restart: what it constrains and
    how deep it sits — lc_id/lineage/attempts are run-local bookkeeping."""
    return (json.dumps(node.payload, sort_keys=True, separators=(",", ":")), node.depth)


def audit_restart_coverage(
    checkpoint: Checkpoint,
    restored_nodes: tuple[ParaNode, ...] | list[ParaNode],
    incumbent: Any | None = None,
    *,
    tol: float = 1e-9,
) -> CheckReport:
    """Check a restored pool covers the checkpointed frontier.

    Invariants:

    * node counts match (nothing dropped, nothing invented),
    * every saved node appears in the restored pool — same payload, same
      depth, dual bound within ``tol`` (multiset semantics: duplicates in
      the checkpoint need matching multiplicity),
    * the dual-bound floor is preserved (the restored pool's weakest bound
      is no weaker than the saved one, so the global bound cannot jump),
    * the saved incumbent is not lost (when ``incumbent`` is supplied),
    * the recorded per-rank provenance histogram sums to the node count.
    """
    report = CheckReport(subject="restart coverage")
    saved = list(checkpoint.nodes)
    restored = list(restored_nodes)

    report.add(
        "node_count",
        len(restored) == len(saved),
        f"checkpoint saved {len(saved)} primitive nodes, restored pool has {len(restored)}",
        saved=len(saved),
        restored=len(restored),
    )

    # multiset cover on subproblem identity; duals matched greedily within tol
    remaining: dict[tuple[str, int], list[float]] = {}
    for node in restored:
        remaining.setdefault(_node_key(node), []).append(node.dual_bound)
    missing: list[str] = []
    for node in saved:
        duals = remaining.get(_node_key(node))
        hit = None
        if duals:
            for i, dual in enumerate(duals):
                close = (
                    math.isclose(dual, node.dual_bound, rel_tol=0.0, abs_tol=tol)
                    or dual == node.dual_bound  # covers matching infinities
                )
                if close:
                    hit = i
                    break
        if hit is None:
            missing.append(f"depth={node.depth} dual={node.dual_bound} lc_id={node.lc_id}")
        else:
            duals.pop(hit)
    report.add(
        "frontier_covered",
        not missing,
        "every saved node found in the restored pool"
        if not missing
        else f"{len(missing)} saved node(s) missing: " + "; ".join(missing[:5]),
        missing=len(missing),
    )

    if saved:
        saved_floor = min(n.dual_bound for n in saved)
        restored_floor = min((n.dual_bound for n in restored), default=math.inf)
        report.add(
            "dual_floor_preserved",
            restored_floor <= saved_floor + tol,
            f"saved floor {saved_floor}, restored floor {restored_floor}",
            saved_floor=saved_floor,
            restored_floor=restored_floor,
        )

    if checkpoint.incumbent is not None and incumbent is not None:
        report.add(
            "incumbent_preserved",
            incumbent.value <= checkpoint.incumbent.value + tol,
            f"checkpoint incumbent {checkpoint.incumbent.value}, run holds {incumbent.value}",
            saved_value=checkpoint.incumbent.value,
            restored_value=incumbent.value,
        )

    provenance = checkpoint.meta.get("rank_provenance")
    if provenance is not None:
        total = sum(int(v) for v in provenance.values())
        report.add(
            "provenance_totals",
            total == len(saved),
            f"provenance histogram sums to {total} for {len(saved)} saved nodes",
            histogram=dict(provenance),
        )

    return report
