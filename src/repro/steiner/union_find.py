"""Disjoint-set forest with union by rank and path compression."""

from __future__ import annotations


class UnionFind:
    """Classic disjoint sets over ``0..n-1``."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n
        self.n_components = n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
