"""Wong's dual ascent for the Steiner arborescence problem.

Produces (i) a lower bound, (ii) reduced costs supporting that bound,
(iii) root/terminal reduced-cost distances for arc fixing, and (iv) the
saturated-arc support that seeds the initial LP of the branch-and-cut
(the constraint-selection role described in the paper's §3.1).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.steiner.transformations import SAPDigraph


@dataclass
class DualAscentResult:
    lower_bound: float
    reduced_costs: np.ndarray
    root_dist: np.ndarray  # reduced-cost distance root -> v
    term_dist: np.ndarray  # reduced-cost distance v -> nearest non-root terminal
    saturated_arcs: np.ndarray  # bool per arc

    def arc_fixing_bound(self, a: int, tail: int, head: int) -> float:
        """Lower bound on any solution that uses arc ``a``."""
        return (
            self.lower_bound
            + self.root_dist[tail]
            + self.reduced_costs[a]
            + self.term_dist[head]
        )


def _reverse_zero_reachable(sap: SAPDigraph, t: int, rc: np.ndarray, eps: float) -> set[int]:
    """Vertices from which ``t`` is reachable via arcs of zero reduced cost."""
    comp = {t}
    queue = deque([t])
    while queue:
        v = queue.popleft()
        for a in sap.in_arcs[v]:
            u = int(sap.arc_tail[a])
            if u not in comp and rc[a] <= eps:
                comp.add(u)
                queue.append(u)
    return comp


def dual_ascent(sap: SAPDigraph, eps: float = 1e-9, max_sweeps: int = 10_000) -> DualAscentResult:
    """Run Wong's dual ascent; deterministic given the instance.

    Active terminals are processed smallest-component-first (the standard
    guiding rule); each step raises the dual of the component's cut by the
    minimum entering reduced cost.
    """
    rc = sap.arc_cost.astype(float).copy()
    lb = 0.0
    active = deque(sorted(sap.sinks()))
    sweeps = 0
    while active and sweeps < max_sweeps:
        sweeps += 1
        # pick terminal with the smallest zero-reachable component
        best_t = None
        best_comp: set[int] | None = None
        for t in list(active):
            comp = _reverse_zero_reachable(sap, t, rc, eps)
            if sap.root in comp:
                active.remove(t)
                continue
            if best_comp is None or len(comp) < len(best_comp):
                best_t, best_comp = t, comp
        if best_comp is None:
            break
        entering = [
            a
            for v in best_comp
            for a in sap.in_arcs[v]
            if int(sap.arc_tail[a]) not in best_comp
        ]
        if not entering:
            # root genuinely unreachable: infinite bound (infeasible SPG)
            lb = math.inf
            break
        delta = min(float(rc[a]) for a in entering)
        if delta <= eps:
            # numerically saturated already; grow handled next sweep
            delta = 0.0
        lb += delta
        for a in entering:
            rc[a] -= delta
            if rc[a] < 0:
                rc[a] = 0.0
        # re-test this terminal next round; rotate the queue for fairness
        assert best_t is not None
        active.rotate(-1)

    root_dist = _rc_dijkstra_forward(sap, rc)
    term_dist = _rc_dijkstra_to_terminals(sap, rc)
    saturated = rc <= eps
    return DualAscentResult(lb, rc, root_dist, term_dist, saturated)


def _rc_dijkstra_forward(sap: SAPDigraph, rc: np.ndarray) -> np.ndarray:
    dist = np.full(sap.n, math.inf)
    dist[sap.root] = 0.0
    heap = [(0.0, sap.root)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for a in sap.out_arcs[v]:
            w = int(sap.arc_head[a])
            nd = d + float(rc[a])
            if nd < dist[w] - 1e-12:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def _rc_dijkstra_to_terminals(sap: SAPDigraph, rc: np.ndarray) -> np.ndarray:
    """Reduced-cost distance from each vertex to its nearest sink terminal
    (multi-source Dijkstra on the reversed digraph)."""
    dist = np.full(sap.n, math.inf)
    heap: list[tuple[float, int]] = []
    for t in sap.sinks():
        dist[t] = 0.0
        heapq.heappush(heap, (0.0, t))
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for a in sap.in_arcs[v]:
            u = int(sap.arc_tail[a])
            nd = d + float(rc[a])
            if nd < dist[u] - 1e-12:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist
