"""Wong's dual ascent for the Steiner arborescence problem.

Produces (i) a lower bound, (ii) reduced costs supporting that bound,
(iii) root/terminal reduced-cost distances for arc fixing, and (iv) the
saturated-arc support that seeds the initial LP of the branch-and-cut
(the constraint-selection role described in the paper's §3.1).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.steiner.transformations import SAPDigraph


@dataclass
class DualAscentResult:
    lower_bound: float
    reduced_costs: np.ndarray
    root_dist: np.ndarray  # reduced-cost distance root -> v
    term_dist: np.ndarray  # reduced-cost distance v -> nearest non-root terminal
    saturated_arcs: np.ndarray  # bool per arc

    def arc_fixing_bound(self, a: int, tail: int, head: int) -> float:
        """Lower bound on any solution that uses arc ``a``."""
        return (
            self.lower_bound
            + self.root_dist[tail]
            + self.reduced_costs[a]
            + self.term_dist[head]
        )


def _arc_csr(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR over arcs grouped by ``keys`` (tails or heads): the arcs of
    vertex ``v`` are ``order[indptr[v]:indptr[v+1]]``."""
    order = np.argsort(keys, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(keys, minlength=n), out=indptr[1:])
    return indptr, order


def _reverse_zero_reachable(
    sap: SAPDigraph,
    t: int,
    rc: np.ndarray,
    eps: float,
    rin_ptr: np.ndarray,
    rin_arc: np.ndarray,
    tails: np.ndarray,
) -> np.ndarray:
    """Bool mask of vertices from which ``t`` is reachable via arcs of
    zero reduced cost (vectorized saturation scan per frontier vertex)."""
    comp = np.zeros(sap.n, dtype=bool)
    comp[t] = True
    stack = [t]
    while stack:
        v = stack.pop()
        lo, hi = rin_ptr[v], rin_ptr[v + 1]
        if lo == hi:
            continue
        arcs = rin_arc[lo:hi]
        us = tails[arcs]
        grow = us[(rc[arcs] <= eps) & ~comp[us]]
        if grow.size:
            comp[grow] = True
            stack.extend(grow.tolist())
    return comp


def dual_ascent(sap: SAPDigraph, eps: float = 1e-9, max_sweeps: int = 10_000) -> DualAscentResult:
    """Run Wong's dual ascent; deterministic given the instance.

    Active terminals are processed smallest-component-first (the standard
    guiding rule); each step raises the dual of the component's cut by the
    minimum entering reduced cost.  Component growth, the entering-arc
    scan and the delta update are numpy mask operations over the arc
    arrays — the python per-arc loops dominated dual-ascent profiles.
    """
    rc = sap.arc_cost.astype(float).copy()
    lb = 0.0
    active = deque(sorted(sap.sinks()))
    sweeps = 0
    tails = np.asarray(sap.arc_tail, dtype=np.int64)
    heads = np.asarray(sap.arc_head, dtype=np.int64)
    rin_ptr, rin_arc = _arc_csr(heads, sap.n)
    while active and sweeps < max_sweeps:
        sweeps += 1
        # pick terminal with the smallest zero-reachable component
        best_t = None
        best_comp: np.ndarray | None = None
        best_size = 0
        for t in list(active):
            comp = _reverse_zero_reachable(sap, t, rc, eps, rin_ptr, rin_arc, tails)
            if comp[sap.root]:
                active.remove(t)
                continue
            size = int(np.count_nonzero(comp))
            if best_comp is None or size < best_size:
                best_t, best_comp, best_size = t, comp, size
        if best_comp is None:
            break
        # the cut: arcs entering the component from outside
        entering = best_comp[heads] & ~best_comp[tails]
        if not entering.any():
            # root genuinely unreachable: infinite bound (infeasible SPG)
            lb = math.inf
            break
        delta = float(rc[entering].min())
        if delta <= eps:
            # numerically saturated already; grow handled next sweep
            delta = 0.0
        lb += delta
        if delta > 0.0:
            rc[entering] = np.maximum(rc[entering] - delta, 0.0)
        # re-test this terminal next round; rotate the queue for fairness
        assert best_t is not None
        active.rotate(-1)

    root_dist = _rc_dijkstra_forward(sap, rc)
    term_dist = _rc_dijkstra_to_terminals(sap, rc)
    saturated = rc <= eps
    return DualAscentResult(lb, rc, root_dist, term_dist, saturated)


def _rc_dijkstra(
    sap: SAPDigraph,
    rc: np.ndarray,
    sources: list[int],
    ends: np.ndarray,
    indptr: np.ndarray,
    arc_order: np.ndarray,
) -> np.ndarray:
    """Heap Dijkstra with vectorized relaxation over an arc-CSR view."""
    dist = np.full(sap.n, math.inf)
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heapq.heappush(heap, (0.0, s))
    push = heapq.heappush
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        arcs = arc_order[lo:hi]
        ws = ends[arcs]
        nd = d + rc[arcs]
        for i in np.flatnonzero(nd < dist[ws] - 1e-12):
            w = int(ws[i])
            ndi = float(nd[i])
            if ndi < dist[w] - 1e-12:  # parallel arcs within one slice
                dist[w] = ndi
                push(heap, (ndi, w))
    return dist


def _rc_dijkstra_forward(sap: SAPDigraph, rc: np.ndarray) -> np.ndarray:
    tails = np.asarray(sap.arc_tail, dtype=np.int64)
    heads = np.asarray(sap.arc_head, dtype=np.int64)
    indptr, order = _arc_csr(tails, sap.n)
    return _rc_dijkstra(sap, rc, [sap.root], heads, indptr, order)


def _rc_dijkstra_to_terminals(sap: SAPDigraph, rc: np.ndarray) -> np.ndarray:
    """Reduced-cost distance from each vertex to its nearest sink terminal
    (multi-source Dijkstra on the reversed digraph)."""
    tails = np.asarray(sap.arc_tail, dtype=np.int64)
    heads = np.asarray(sap.arc_head, dtype=np.int64)
    indptr, order = _arc_csr(heads, sap.n)
    return _rc_dijkstra(sap, rc, sap.sinks(), tails, indptr, order)
