"""Graph transformations: SPG -> Steiner arborescence problem (SAP).

SCIP-Jack transforms every problem class to the SAP; for the SPG each
undirected edge becomes an antiparallel arc pair and an arbitrary
terminal becomes the root. The arc <-> undirected-edge mapping is kept so
LP solutions and branching decisions can be mapped back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph


@dataclass
class SAPDigraph:
    """Steiner arborescence instance in arc-array form."""

    n: int
    root: int
    arc_tail: np.ndarray
    arc_head: np.ndarray
    arc_cost: np.ndarray
    arc_edge: np.ndarray  # undirected edge id each arc came from (-1: none)
    terminals: list[int]  # all terminals, including the root
    out_arcs: list[list[int]] = field(default_factory=list)
    in_arcs: list[list[int]] = field(default_factory=list)

    @property
    def num_arcs(self) -> int:
        return len(self.arc_tail)

    def sinks(self) -> list[int]:
        """Terminals that must be reached from the root."""
        return [t for t in self.terminals if t != self.root]

    def reverse_arc(self, a: int) -> int | None:
        """Index of the antiparallel partner arc (SPG build pairs arcs)."""
        partner = a ^ 1
        if partner < self.num_arcs and self.arc_edge[partner] == self.arc_edge[a]:
            return partner
        return None


def spg_to_sap(graph: SteinerGraph, root: int | None = None) -> SAPDigraph:
    """Build the SAP bidirection of an SPG.

    Arcs come in pairs ``(2k, 2k+1)`` sharing undirected edge ``k``'s cost;
    the root defaults to the lowest-id terminal.
    """
    terms = [int(t) for t in graph.terminals]
    if not terms:
        raise GraphError("SPG has no terminals")
    if root is None:
        root = terms[0]
    elif root not in terms:
        raise GraphError(f"root {root} is not a terminal")
    alive = graph.alive_edges()
    m = len(alive)
    arc_tail = np.empty(2 * m, dtype=np.int64)
    arc_head = np.empty(2 * m, dtype=np.int64)
    arc_cost = np.empty(2 * m, dtype=float)
    arc_edge = np.empty(2 * m, dtype=np.int64)
    for k, eid in enumerate(alive):
        e = graph.edges[eid]
        arc_tail[2 * k], arc_head[2 * k] = e.u, e.v
        arc_tail[2 * k + 1], arc_head[2 * k + 1] = e.v, e.u
        arc_cost[2 * k] = arc_cost[2 * k + 1] = e.cost
        arc_edge[2 * k] = arc_edge[2 * k + 1] = eid
    out_arcs: list[list[int]] = [[] for _ in range(graph.n)]
    in_arcs: list[list[int]] = [[] for _ in range(graph.n)]
    for a in range(2 * m):
        out_arcs[arc_tail[a]].append(a)
        in_arcs[arc_head[a]].append(a)
    return SAPDigraph(graph.n, root, arc_tail, arc_head, arc_cost, arc_edge, terms, out_arcs, in_arcs)


def arborescence_from_arcs(sap: SAPDigraph, arc_values: np.ndarray, tol: float = 1e-6) -> list[int]:
    """Arcs with value ~1 trimmed to an arborescence rooted at ``sap.root``.

    Follows root-reachability through selected arcs and drops everything
    unreachable; used to turn integral LP points into clean trees.
    """
    selected = {a for a in range(sap.num_arcs) if arc_values[a] > 1.0 - tol}
    reached = {sap.root}
    tree: list[int] = []
    frontier = [sap.root]
    while frontier:
        v = frontier.pop()
        for a in sap.out_arcs[v]:
            if a in selected and sap.arc_head[a] not in reached:
                reached.add(int(sap.arc_head[a]))
                tree.append(a)
                frontier.append(int(sap.arc_head[a]))
    return tree
