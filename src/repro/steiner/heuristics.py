"""SPG primal heuristics: TM construction, MST polish, key-vertex search.

The shortest-path (Takahashi–Matsuyama, "TM") heuristic with repeated
starts is SCIP-Jack's main constructive heuristic; during branch-and-cut
it is re-run with LP-biased edge costs. ``local_search`` implements
steiner-vertex insertion/elimination moves.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.steiner.graph import SteinerGraph
from repro.steiner.mst import mst_on_subgraph, prune_steiner_tree
from repro.steiner.shortest_paths import dijkstra, extract_path
from repro.utils import make_rng


def shortest_path_heuristic(
    graph: SteinerGraph,
    start: int | None = None,
    cost_override: dict[int, float] | None = None,
) -> tuple[list[int], float] | None:
    """TM construction: grow a tree by repeatedly connecting the nearest
    unconnected terminal via a shortest path.

    Returns (edge ids, cost under the *true* costs) or None when some
    terminal is unreachable. ``cost_override`` only biases the path
    search (LP guidance), never the reported cost.
    """
    terms = [int(t) for t in graph.terminals]
    if not terms:
        return [], 0.0
    if start is None:
        start = terms[0]
    in_tree = {start}
    tree_edges: set[int] = set()
    unconnected = set(terms) - in_tree

    while unconnected:
        # multi-source Dijkstra from the current tree
        dist = np.full(graph.n, math.inf)
        pred = np.full(graph.n, -1, dtype=np.int64)
        heap: list[tuple[float, int]] = []
        for v in in_tree:
            dist[v] = 0.0
            heapq.heappush(heap, (0.0, v))
        target: int | None = None
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            if v in unconnected:
                target = v
                break
            for w, eid, cost in graph.neighbors(v):
                if cost_override is not None:
                    cost = cost_override.get(eid, cost)
                nd = d + cost
                if nd < dist[w] - 1e-12:
                    dist[w] = nd
                    pred[w] = eid
                    heapq.heappush(heap, (nd, w))
        if target is None:
            return None
        v = target
        while pred[v] >= 0 and v not in in_tree:
            eid = int(pred[v])
            tree_edges.add(eid)
            in_tree.add(v)
            v = graph.edges[eid].other(v)
        in_tree.add(target)
        unconnected.discard(target)

    # polish: MST over the chosen vertices, then strip useless leaves
    vertices = set()
    for eid in tree_edges:
        e = graph.edges[eid]
        vertices.add(e.u)
        vertices.add(e.v)
    vertices |= set(terms)
    mst = mst_on_subgraph(graph, vertices)
    if mst is not None:
        tree_edges = set(mst[0])
    pruned, cost = prune_steiner_tree(graph, sorted(tree_edges))
    return pruned, cost


def repeated_shortest_path_heuristic(
    graph: SteinerGraph,
    n_starts: int = 8,
    seed: int = 0,
    cost_override: dict[int, float] | None = None,
) -> tuple[list[int], float] | None:
    """TM from several start terminals (and random non-terminals); best kept."""
    terms = [int(t) for t in graph.terminals]
    if not terms:
        return [], 0.0
    rng = make_rng(seed)
    starts: list[int] = terms[: max(1, n_starts // 2)]
    alive = graph.alive_vertices()
    if len(alive) and n_starts > len(starts):
        extra = rng.choice(alive, size=min(n_starts - len(starts), len(alive)), replace=False)
        starts.extend(int(v) for v in extra)
    best: tuple[list[int], float] | None = None
    for s in starts:
        res = shortest_path_heuristic(graph, s, cost_override)
        if res is not None and (best is None or res[1] < best[1] - 1e-12):
            best = res
    return best


def mst_construction_heuristic(
    graph: SteinerGraph,
    cost_override: dict[int, float] | None = None,
) -> tuple[list[int], float] | None:
    """KMB-style MST construction (Kou–Markowsky–Berman).

    Build the metric closure over the terminals (Dijkstra per terminal),
    take Prim's MST of that closure, replace each closure edge by its
    shortest path, and polish with an MST + prune pass on the union.
    Returns (edge ids, cost under the true costs) or None when some
    terminal is unreachable. Complements TM: on incidence-weighted and
    grid-like instances the two constructions pick different trees.
    """
    terms = [int(t) for t in graph.terminals]
    if not terms:
        return [], 0.0
    if len(terms) == 1:
        return [], 0.0
    target_set = set(terms)
    dists: dict[int, np.ndarray] = {}
    preds: dict[int, np.ndarray] = {}
    for t in terms:
        dist, pred = dijkstra(graph, t, targets=target_set, cost_override=cost_override)
        dists[t] = dist
        preds[t] = pred
    # Prim over the metric closure, tracking which closure edge joins each
    # newly spanned terminal
    in_mst = {terms[0]}
    best_src = {t: terms[0] for t in terms[1:]}
    tree_edges: set[int] = set()
    while len(in_mst) < len(terms):
        cand, cand_src, cand_d = None, None, math.inf
        for t in terms:
            if t in in_mst:
                continue
            src = best_src[t]
            d = float(dists[src][t])
            if d < cand_d - 1e-12:
                cand, cand_src, cand_d = t, src, d
        if cand is None or not math.isfinite(cand_d):
            return None  # disconnected terminal set
        tree_edges.update(extract_path(graph, preds[cand_src], cand))
        in_mst.add(cand)
        for t in terms:
            if t not in in_mst and float(dists[cand][t]) < float(dists[best_src[t]][t]) - 1e-12:
                best_src[t] = cand
    vertices = set(terms)
    for eid in tree_edges:
        e = graph.edges[eid]
        vertices.add(e.u)
        vertices.add(e.v)
    mst = mst_on_subgraph(graph, vertices)
    if mst is not None:
        tree_edges = set(mst[0])
    return prune_steiner_tree(graph, sorted(tree_edges))


def key_vertex_local_search(
    graph: SteinerGraph,
    edge_ids: list[int],
    max_rounds: int = 3,
    seed: int = 0,
) -> tuple[list[int], float]:
    """Uchoa–Werneck-style key-vertex elimination/insertion local search.

    Key vertices are the non-terminal tree vertices of tree-degree >= 3 —
    the branching points whose removal restructures the tree the most.
    Each round tries, in a seeded first-improvement order: (a) eliminating
    a key vertex and reconnecting via MST over the remaining vertex set,
    (b) inserting an outside vertex adjacent to >= 2 tree vertices (the
    only candidates that can create a shortcut). Unlike ``local_search``
    it never scans every tree vertex, so it stays cheap on large trees.
    """
    current = list(edge_ids)
    current_cost = sum(graph.edges[e].cost for e in current)
    rng = make_rng(seed)

    def tree_info(edges_: list[int]) -> tuple[set[int], dict[int, int]]:
        vs: set[int] = set()
        deg: dict[int, int] = {}
        for eid in edges_:
            e = graph.edges[eid]
            vs.add(e.u)
            vs.add(e.v)
            deg[e.u] = deg.get(e.u, 0) + 1
            deg[e.v] = deg.get(e.v, 0) + 1
        vs.update(int(t) for t in graph.terminals)
        return vs, deg

    def try_vertex_set(trial: set[int]) -> tuple[list[int], float] | None:
        mst = mst_on_subgraph(graph, trial)
        if mst is None:
            return None
        pruned, cost = prune_steiner_tree(graph, mst[0])
        if cost < current_cost - 1e-9:
            return pruned, cost
        return None

    for _round in range(max_rounds):
        improved = False
        vertices, deg = tree_info(current)
        key_vertices = [v for v in sorted(vertices) if deg.get(v, 0) >= 3 and not graph.is_terminal(v)]
        if key_vertices:
            rng.shuffle(key_vertices)
        for cand in key_vertices:
            res = try_vertex_set(vertices - {cand})
            if res is not None:
                current, current_cost = res
                improved = True
                vertices, deg = tree_info(current)
        # insertion: outside vertices touching the tree at >= 2 points
        touch: dict[int, int] = {}
        for v in vertices:
            for w, _eid, _c in graph.neighbors(v):
                if w not in vertices:
                    touch[w] = touch.get(w, 0) + 1
        candidates = [v for v, k in sorted(touch.items()) if k >= 2]
        if candidates:
            rng.shuffle(candidates)
        for cand in candidates:
            res = try_vertex_set(vertices | {cand})
            if res is not None:
                current, current_cost = res
                improved = True
                vertices, _deg = tree_info(current)
        if not improved:
            break
    return current, current_cost


def local_search(
    graph: SteinerGraph,
    edge_ids: list[int],
    max_rounds: int = 3,
) -> tuple[list[int], float]:
    """Steiner-vertex insertion/elimination local search.

    Insertion: adding a vertex to the tree's vertex set and re-running the
    MST can shortcut expensive tree paths. Elimination: dropping a
    non-terminal key vertex (degree >= 3 in the tree) and reconnecting via
    MST may also improve. Accepts first-improvement moves until a round
    yields nothing.
    """
    current = list(edge_ids)
    current_cost = sum(graph.edges[e].cost for e in current)

    def tree_vertices(edges_: list[int]) -> set[int]:
        vs: set[int] = set()
        for eid in edges_:
            e = graph.edges[eid]
            vs.add(e.u)
            vs.add(e.v)
        vs.update(int(t) for t in graph.terminals)
        return vs

    for _round in range(max_rounds):
        improved = False
        vertices = tree_vertices(current)
        # insertion candidates: neighbours of the tree
        candidates: set[int] = set()
        for v in vertices:
            for w, _eid, _c in graph.neighbors(v):
                if w not in vertices:
                    candidates.add(w)
        for cand in sorted(candidates):
            trial = vertices | {cand}
            mst = mst_on_subgraph(graph, trial)
            if mst is None:
                continue
            pruned, cost = prune_steiner_tree(graph, mst[0])
            if cost < current_cost - 1e-9:
                current, current_cost = pruned, cost
                improved = True
                vertices = tree_vertices(current)
        # elimination candidates: non-terminal tree vertices
        for cand in sorted(vertices):
            if graph.is_terminal(cand):
                continue
            trial = vertices - {cand}
            mst = mst_on_subgraph(graph, trial)
            if mst is None:
                continue
            pruned, cost = prune_steiner_tree(graph, mst[0])
            if cost < current_cost - 1e-9:
                current, current_cost = pruned, cost
                improved = True
                vertices = tree_vertices(current)
        if not improved:
            break
    return current, current_cost
