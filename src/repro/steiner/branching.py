"""Steiner vertex branching.

The paper: "each branching either deletes a vertex or adds a terminal".
The OUT child fixes all arcs incident to the chosen vertex to zero (pure
bound changes); the IN child adds the constraint-branching row
``y(delta^-(v)) >= 1`` locally and records the decision so ParaSolvers
receiving the subproblem can rebuild the graph with ``v`` as a terminal —
the decision-communication capability added in ug-0.8.6 that let
ug[SCIP-Jack, MPI] catch up with SCIP-Jack's improvements.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import BranchingRule, ChildSpec, Cut
from repro.cip.solver import CIPSolver
from repro.steiner.transformations import SAPDigraph


class SteinerVertexBranching(BranchingRule):
    """Branch on the non-terminal vertex with the most fractional
    flow-through value (ties broken by the permutation seed)."""

    name = "steinervertex"
    priority = 100

    def __init__(self, sap: SAPDigraph) -> None:
        self.sap = sap

    def branch(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> list[ChildSpec]:
        if x is None:
            return []
        sap = self.sap
        terminal_set = set(sap.terminals)
        decided = {v for v, _d in node.local_data.get("vertex_decisions", ())}
        best_v = -1
        best_score = solver.tol.integrality
        perm = solver.rng.permutation(sap.n)
        rank = np.empty(sap.n, dtype=np.int64)
        rank[perm] = np.arange(sap.n)
        best_rank = sap.n + 1
        for v in range(sap.n):
            if v in terminal_set or v in decided or not sap.in_arcs[v]:
                continue
            flow_in = float(sum(x[a] for a in sap.in_arcs[v]))
            score = min(flow_in, 1.0 - flow_in)
            if score > best_score + 1e-12 or (
                score > best_score - 1e-12 and rank[v] < best_rank
            ):
                best_score, best_v, best_rank = score, v, rank[v]
        if best_v < 0:
            return []  # defer to the arc-variable fallback rule
        v = best_v
        out_child = ChildSpec(
            bound_changes={a: (0.0, 0.0) for a in sap.in_arcs[v] + sap.out_arcs[v]},
            local_update={"vertex_decisions": ((v, "out"),)},
        )
        in_row = Cut.from_dict({a: 1.0 for a in sap.in_arcs[v]}, lhs=1.0, name=f"branch_in_{v}")
        in_child = ChildSpec(
            local_update={"vertex_decisions": ((v, "in"),)},
            local_rows=[in_row],
        )
        return [out_child, in_child]
