"""Minimum spanning tree utilities (Kruskal) on vertex subsets."""

from __future__ import annotations

from repro.steiner.graph import SteinerGraph
from repro.steiner.union_find import UnionFind


def mst_on_subgraph(graph: SteinerGraph, vertices: set[int]) -> tuple[list[int], float] | None:
    """Kruskal MST of the subgraph induced by ``vertices``.

    Returns (edge ids, cost) or None if the induced subgraph is not
    connected.
    """
    cand = [
        (graph.edges[eid].cost, eid)
        for eid in graph.alive_edges()
        if graph.edges[eid].u in vertices and graph.edges[eid].v in vertices
    ]
    cand.sort()
    uf = UnionFind(graph.n)
    chosen: list[int] = []
    cost = 0.0
    for c, eid in cand:
        e = graph.edges[eid]
        if uf.union(e.u, e.v):
            chosen.append(eid)
            cost += c
    roots = {uf.find(v) for v in vertices}
    if len(roots) != 1:
        return None
    return chosen, cost


def prune_steiner_tree(graph: SteinerGraph, edge_ids: list[int]) -> tuple[list[int], float]:
    """Strip non-terminal leaves from a candidate tree until none remain.

    Standard post-processing of construction heuristics: an MST over the
    chosen vertices can contain useless non-terminal leaves.
    """
    chosen = set(edge_ids)
    degree: dict[int, list[int]] = {}
    for eid in chosen:
        e = graph.edges[eid]
        degree.setdefault(e.u, []).append(eid)
        degree.setdefault(e.v, []).append(eid)
    changed = True
    while changed:
        changed = False
        for v, incident in list(degree.items()):
            live = [eid for eid in incident if eid in chosen]
            degree[v] = live
            if len(live) == 1 and not graph.is_terminal(v):
                chosen.discard(live[0])
                changed = True
    pruned = sorted(chosen)
    return pruned, sum(graph.edges[e].cost for e in pruned)
