"""Directed Steiner cut constraint handler.

Owns the exponential family (4) of the flow-balance directed cut
formulation: for every vertex set W containing the root but missing a
terminal, at least one arc must leave W. ``separate`` finds violated
members by max-flow (the paper's "separator routine based on a
maximum-flow algorithm"); ``check`` certifies candidate solutions by
root-reachability.
"""

from __future__ import annotations

import numpy as np

from repro.cip.node import Node
from repro.cip.plugins import ConstraintHandler, Cut
from repro.cip.solver import CIPSolver
from repro.steiner.maxflow import MaxFlow
from repro.steiner.transformations import SAPDigraph


class SteinerCutHandler(ConstraintHandler):
    """Lazy directed-cut constraints over the SAP arc variables.

    Variable ``a`` of the model corresponds to arc ``a`` of ``sap``.
    """

    name = "steinercuts"
    priority = 100

    def __init__(self, sap: SAPDigraph, max_cuts_per_call: int = 25) -> None:
        self.sap = sap
        self.max_cuts_per_call = max_cuts_per_call
        self._flow = MaxFlow(sap.n, sap.arc_tail, sap.arc_head)

    # -- feasibility ---------------------------------------------------------

    def check(self, solver: CIPSolver, x: np.ndarray) -> bool:
        """All terminals reachable from the root via arcs with value ~1."""
        sap = self.sap
        selected = x[: sap.num_arcs] > 1.0 - solver.tol.integrality
        reached = np.zeros(sap.n, dtype=bool)
        reached[sap.root] = True
        stack = [sap.root]
        while stack:
            v = stack.pop()
            for a in sap.out_arcs[v]:
                w = int(sap.arc_head[a])
                if selected[a] and not reached[w]:
                    reached[w] = True
                    stack.append(w)
        return all(reached[t] for t in sap.sinks())

    # -- separation -----------------------------------------------------------

    def separate(self, solver: CIPSolver, node: Node, x: np.ndarray) -> list[Cut]:
        sap = self.sap
        caps = np.asarray(x[: sap.num_arcs], dtype=float).clip(min=0.0)
        cuts: list[Cut] = []
        sinks = sorted(sap.sinks(), key=lambda t: -1.0)  # deterministic order
        for t in sinks:
            if len(cuts) >= self.max_cuts_per_call:
                break
            self._flow.set_capacities(caps)
            flow = self._flow.max_flow(sap.root, t, limit=1.0)
            if flow >= 1.0 - solver.tol.feas:
                continue
            reach = self._flow.min_cut_source_side(sap.root)
            coefs: dict[int, float] = {}
            for a in range(sap.num_arcs):
                if reach[sap.arc_tail[a]] and not reach[sap.arc_head[a]]:
                    coefs[a] = 1.0
            if not coefs:
                continue
            cuts.append(Cut.from_dict(coefs, lhs=1.0, name=f"dcut_t{t}"))
        return cuts
