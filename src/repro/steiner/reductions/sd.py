"""Special-distance (SD) edge deletion test.

An edge (u, v) can be deleted if the bottleneck Steiner distance between
u and v is smaller than the edge cost: every tree using the edge can be
improved by swapping it for a cheaper terminal-separated path. We use the
restricted SD computation of :func:`bottleneck_steiner_distance`, which
only yields *upper bounds* on the SD — still sound for deletion (a
cheaper alternative path certainly exists).
"""

from __future__ import annotations

from repro.steiner.graph import SteinerGraph
from repro.steiner.shortest_paths import bottleneck_steiner_distance


def sd_edge_test(graph: SteinerGraph, max_visits: int = 300) -> int:
    """Delete edges dominated by the (restricted) special distance."""
    reductions = 0
    for v in graph.alive_vertices():
        v = int(v)
        inc = graph.incident_edges(v)
        if not inc:
            continue
        limit = max(graph.edges[e].cost for e in inc)
        sd = bottleneck_steiner_distance(graph, v, limit, max_visits)
        for eid in inc:
            e = graph.edges[eid]
            if not e.alive:
                continue
            w = e.other(v)
            alt = sd.get(w)
            if alt is None:
                continue
            # strict dominance; allow equality only for non-terminal paths
            # is unsafe to detect here, so require strictly cheaper.
            if alt < e.cost - 1e-12:
                # the SD walk may have used the edge itself; re-check by
                # requiring an alternative: recompute without is overkill —
                # the walk relaxes via the edge only with length >= cost, so
                # alt < cost implies an alternative path. Safe to delete.
                graph.delete_edge(eid)
                reductions += 1
    return reductions
