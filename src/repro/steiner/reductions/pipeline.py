"""The reduction pipeline: iterated application of all tests.

Mirrors SCIP-Jack's presolve loop: cheap degree/terminal tests first,
then SD, then bound-based, then (optionally) extended tests, repeated
until a full round yields nothing. The same pipeline runs once at the
LoadCoordinator and again on every received subproblem inside the
ParaSolvers (layered presolving).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.steiner.graph import SteinerGraph
from repro.steiner.reductions.basic import (
    adjacent_terminals,
    degree_tests,
    parallel_edges,
    terminal_degree1,
)
from repro.steiner.reductions.bound_based import bound_based_tests
from repro.steiner.reductions.extended import extended_edge_test
from repro.steiner.reductions.sd import sd_edge_test


@dataclass
class ReductionStats:
    """Per-technique reduction counts of one pipeline run."""

    degree: int = 0
    terminal: int = 0
    parallel: int = 0
    sd: int = 0
    bound: int = 0
    extended: int = 0
    rounds: int = 0
    by_round: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.degree + self.terminal + self.parallel + self.sd + self.bound + self.extended


def reduce_graph(
    graph: SteinerGraph,
    *,
    use_sd: bool = True,
    use_bound_based: bool = True,
    use_extended: bool = False,
    max_rounds: int = 8,
    seed: int = 0,
) -> ReductionStats:
    """Run the reduction pipeline in place; returns per-technique counts.

    ``use_extended`` enables the extended reduction techniques — off by
    default at the root (they are comparatively expensive) but switched on
    for subproblem re-presolve, where the paper reports them to shine.
    """
    stats = ReductionStats()
    for _round in range(max_rounds):
        before = stats.total
        stats.parallel += parallel_edges(graph)
        stats.degree += degree_tests(graph)
        stats.terminal += terminal_degree1(graph)
        stats.terminal += adjacent_terminals(graph)
        stats.degree += degree_tests(graph)
        if graph.num_terminals < 2:
            stats.rounds += 1
            stats.by_round.append(stats.total - before)
            break
        if use_sd:
            stats.sd += sd_edge_test(graph)
            stats.degree += degree_tests(graph)
        if use_bound_based and graph.num_terminals >= 2:
            stats.bound += bound_based_tests(graph, seed=seed)
            stats.degree += degree_tests(graph)
        if use_extended and graph.num_terminals >= 2:
            stats.extended += extended_edge_test(graph)
            stats.degree += degree_tests(graph)
        stats.rounds += 1
        stats.by_round.append(stats.total - before)
        if stats.total == before:
            break
    return stats
