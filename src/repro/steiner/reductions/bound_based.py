"""Dual-ascent bound-based reductions (arc/vertex fixing).

Combines a dual-ascent lower bound with a heuristic upper bound: any edge
(vertex) whose inclusion forces the bound above the incumbent cannot be
in an optimal solution and is deleted. This is the reduced-cost-based
domain propagation of the paper's §3.1, applied at presolve time.
"""

from __future__ import annotations

import math

from repro.steiner.dual_ascent import dual_ascent
from repro.steiner.graph import SteinerGraph
from repro.steiner.heuristics import repeated_shortest_path_heuristic
from repro.steiner.transformations import spg_to_sap


def bound_based_tests(graph: SteinerGraph, upper_bound: float | None = None, seed: int = 0) -> int:
    """Delete edges/vertices whose dual-ascent fixing bound exceeds the
    incumbent; returns #reductions.

    ``upper_bound`` is in *reduced-graph* units (without ``fixed_cost``);
    when omitted, the TM heuristic provides it.
    """
    if graph.num_terminals < 2:
        return 0
    if upper_bound is None:
        heur = repeated_shortest_path_heuristic(graph, seed=seed)
        if heur is None:
            return 0
        upper_bound = heur[1]
    sap = spg_to_sap(graph)
    da = dual_ascent(sap)
    if math.isinf(da.lower_bound):
        return 0
    reductions = 0
    # an undirected edge is deletable if BOTH its arcs are fixable
    for k, eid in enumerate(graph.alive_edges()):
        a1, a2 = 2 * k, 2 * k + 1
        b1 = da.arc_fixing_bound(a1, int(sap.arc_tail[a1]), int(sap.arc_head[a1]))
        b2 = da.arc_fixing_bound(a2, int(sap.arc_tail[a2]), int(sap.arc_head[a2]))
        if min(b1, b2) > upper_bound + 1e-9:
            graph.delete_edge(eid)
            reductions += 1
    # a non-terminal vertex is deletable if routing through it is too costly
    for v in graph.alive_vertices():
        v = int(v)
        if graph.is_terminal(v):
            continue
        bound = da.lower_bound + da.root_dist[v] + da.term_dist[v]
        if bound > upper_bound + 1e-9 and graph.vertex_alive[v]:
            graph.delete_vertex(v)
            reductions += 1
    return reductions
