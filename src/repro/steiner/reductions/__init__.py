"""SPG reduction techniques.

The reduction pipeline is SCIP-Jack's first pillar: degree tests and
terminal contractions (:mod:`repro.steiner.reductions.basic`), the
special-distance edge test (:mod:`repro.steiner.reductions.sd`),
dual-ascent bound-based tests (:mod:`repro.steiner.reductions.bound_based`)
and the extended reduction techniques (:mod:`repro.steiner.reductions.extended`)
whose combination with massive B&B let the paper solve bip52u.

All reductions are *optimality preserving*: the optimal value of the
reduced graph plus its ``fixed_cost`` equals the optimal value of the
input, and :meth:`SteinerGraph.expand_solution` lifts any optimal reduced
solution to an optimal original one.
"""

from repro.steiner.reductions.pipeline import ReductionStats, reduce_graph

__all__ = ["reduce_graph", "ReductionStats"]
