"""Extended reduction techniques (restricted implementation).

Following Polzin's extension framework (the paper's [54]): to prove an
edge e = (u, v), with non-terminal v, is not contained in at least one
optimal Steiner tree, we show that *every* way the tree could continue
through v is dominated. In any tree S containing e, v is internal, so
the tree uses a star {(v, w) : w in Delta} at v for some neighbour
subset Delta containing u with |Delta| >= 2. If for every such Delta the
minimum spanning tree of the (restricted) bottleneck Steiner distances
over Delta — computed avoiding v — is strictly cheaper than the star,
the star can be exchanged for those SD paths, reconnecting all components
of S - star(v) at lower cost. Hence e is never needed and can be deleted.

This is the depth-one ("rather restricted", as the paper puts it) variant
of the technique; its value grows deep in the B&B tree where branching
has already deleted vertices and added terminals — exactly the interplay
the paper credits for solving bip52u.
"""

from __future__ import annotations

import itertools
import math

from repro.steiner.graph import SteinerGraph
from repro.steiner.shortest_paths import bottleneck_steiner_distance


def _sd_matrix(
    graph: SteinerGraph,
    center: int,
    spokes: list[tuple[int, float]],
    max_visits: int,
) -> dict[tuple[int, int], float]:
    """Pairwise restricted SD between the spokes' far endpoints, avoiding
    ``center``. Missing entries mean 'no cheap path found' (treated inf)."""
    limit = 2.0 * max(c for _w, c in spokes) + 1e-9
    out: dict[tuple[int, int], float] = {}
    ends = [w for w, _c in spokes]
    for i, a in enumerate(ends):
        sd = bottleneck_steiner_distance(graph, a, limit, max_visits, avoid=center)
        for b in ends[i + 1 :]:
            if b in sd:
                key = (min(a, b), max(a, b))
                val = sd[b]
                if val < out.get(key, math.inf):
                    out[key] = val
    return out


def _mst_cost(nodes: list[int], dist: dict[tuple[int, int], float]) -> float:
    """Prim MST over ``nodes`` with the given pair distances (inf if absent)."""
    if len(nodes) <= 1:
        return 0.0
    in_tree = {nodes[0]}
    cost = 0.0
    rest = set(nodes[1:])
    while rest:
        best = math.inf
        best_v = None
        for v in rest:
            for u in in_tree:
                d = dist.get((min(u, v), max(u, v)), math.inf)
                if d < best:
                    best, best_v = d, v
        if best_v is None or math.isinf(best):
            return math.inf
        cost += best
        in_tree.add(best_v)
        rest.discard(best_v)
    return cost


def extended_edge_test(graph: SteinerGraph, max_visits: int = 250, max_degree: int = 7) -> int:
    """Depth-one extended edge elimination; returns #deletions."""
    reductions = 0
    for eid in list(graph.alive_edges()):
        e = graph.edges[eid]
        if not e.alive:
            continue
        for endpoint in (e.u, e.v):
            if graph.is_terminal(endpoint):
                continue
            u = e.other(endpoint)
            spokes = [
                (w, cost)
                for w, ext_eid, cost in graph.neighbors(endpoint)
            ]
            if len(spokes) > max_degree or len(spokes) < 2:
                continue
            sd = _sd_matrix(graph, endpoint, spokes, max_visits)
            others = [(w, c) for w, c in spokes if w != u]
            u_cost = e.cost
            deletable = True
            # every neighbour subset containing u, size >= 2, must be beaten
            for k in range(1, len(others) + 1):
                for combo in itertools.combinations(others, k):
                    star = u_cost + sum(c for _w, c in combo)
                    nodes = [u] + [w for w, _c in combo]
                    if _mst_cost(nodes, sd) >= star - 1e-12:
                        deletable = False
                        break
                if not deletable:
                    break
            if deletable:
                graph.delete_edge(eid)
                reductions += 1
                break
    return reductions
