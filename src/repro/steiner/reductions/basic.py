"""Degree-based tests and terminal contractions.

The classical alternative-based tests:

* **NV/degree-0,1**: a non-terminal of degree <= 1 is never in an optimal
  tree — delete it.
* **degree-2**: a non-terminal of degree 2 lies on a path — replace its
  two edges by one.
* **terminal degree-1** (NTD1): the single edge of a degree-1 terminal is
  in every solution — contract it.
* **adjacent terminals** (NTD2/SD-terminal): an edge between terminals
  whose cost is minimal among both endpoints' incident edges is in some
  optimal solution — contract it.
"""

from __future__ import annotations

from collections import deque

from repro.steiner.graph import SteinerGraph


def degree_tests(graph: SteinerGraph) -> int:
    """Run degree-0/1/2 non-terminal tests to a fixpoint; returns #reductions."""
    reductions = 0
    queue = deque(int(v) for v in graph.alive_vertices())
    queued = set(queue)
    while queue:
        v = queue.popleft()
        queued.discard(v)
        if not graph.vertex_alive[v] or graph.is_terminal(v):
            continue
        deg = graph.degree(v)
        if deg >= 3:
            continue
        neighbors = [w for w, _e, _c in graph.neighbors(v)]
        if deg <= 1:
            graph.delete_vertex(v)
        else:
            graph.replace_path(v)
        reductions += 1
        for w in neighbors:
            if graph.vertex_alive[w] and w not in queued:
                queue.append(w)
                queued.add(w)
    return reductions


def terminal_degree1(graph: SteinerGraph) -> int:
    """Contract the unique edge of every degree-1 terminal; returns #contractions.

    Only valid while at least two terminals remain (a lone terminal needs
    no tree at all).
    """
    reductions = 0
    changed = True
    while changed and graph.num_terminals >= 2:
        changed = False
        for t in list(graph.terminals):
            t = int(t)
            if graph.num_terminals < 2:
                break
            inc = graph.incident_edges(t)
            if len(inc) != 1:
                continue
            eid = inc[0]
            other = graph.edges[eid].other(t)
            # keep the neighbour alive as the contraction survivor
            if not graph.is_terminal(other):
                graph.set_terminal(other, True)
            graph.contract_into_terminal(eid, other)
            reductions += 1
            changed = True
    return reductions


def adjacent_terminals(graph: SteinerGraph) -> int:
    """Contract terminal-terminal edges that are the cheapest incident edge
    of one endpoint; returns #contractions.

    Validity: if e = (t1, t2) is the cheapest edge at t1, some optimal
    tree uses it (exchange argument along the t1-t2 tree path).
    """
    reductions = 0
    changed = True
    while changed and graph.num_terminals >= 2:
        changed = False
        for t in list(graph.terminals):
            t = int(t)
            if not graph.vertex_alive[t] or graph.num_terminals < 2:
                continue
            best_eid = None
            best_cost = None
            for _w, eid, cost in graph.neighbors(t):
                if best_cost is None or cost < best_cost:
                    best_cost, best_eid = cost, eid
            if best_eid is None:
                continue
            other = graph.edges[best_eid].other(t)
            if graph.is_terminal(other):
                graph.contract_into_terminal(best_eid, other)
                reductions += 1
                changed = True
    return reductions


def parallel_edges(graph: SteinerGraph) -> int:
    """Keep only the cheapest edge of each parallel class; returns #deletions."""
    reductions = 0
    for v in graph.alive_vertices():
        v = int(v)
        best: dict[int, int] = {}
        for w, eid, cost in graph.neighbors(v):
            if w < v:
                continue
            if w in best:
                keep = best[w]
                if cost < graph.edges[keep].cost:
                    graph.delete_edge(keep)
                    best[w] = eid
                else:
                    graph.delete_edge(eid)
                reductions += 1
            else:
                best[w] = eid
    return reductions
