"""Mutable Steiner problem graph with solution-ancestry tracking.

Reductions delete vertices/edges, replace degree-2 paths by single edges
and contract edges into terminals. To recover an *original-graph* tree
from a solution of the reduced graph, every current edge remembers the
original edge ids it represents (``ancestors``) and contractions record
original edges that are unconditionally part of every solution
(``fixed_edges``) plus their cost in ``fixed_cost``.

Vertex ids are stable — deletion marks a vertex dead rather than
renumbering — so branching decisions ("vertex v in/out of the solution")
remain meaningful across graph copies, which is exactly what UG needs to
ship Steiner subproblems between ParaSolvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphError


@dataclass
class _Edge:
    u: int
    v: int
    cost: float
    alive: bool = True
    ancestors: tuple[int, ...] = ()

    def other(self, w: int) -> int:
        if w == self.u:
            return self.v
        if w == self.v:
            return self.u
        raise GraphError(f"vertex {w} not an endpoint of edge ({self.u},{self.v})")


@dataclass
class SteinerGraph:
    """Undirected graph with terminals, supporting reduction operations."""

    n: int = 0
    edges: list[_Edge] = field(default_factory=list)
    adj: list[list[int]] = field(default_factory=list)
    terminal_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    vertex_alive: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    fixed_cost: float = 0.0
    fixed_edges: list[int] = field(default_factory=list)
    # structure version: bumped by every mutation, invalidates the
    # neighbor/CSR caches below (kernels call neighbors() hundreds of
    # thousands of times between mutations — rebuilding the triple list
    # each call dominated Dijkstra/bottleneck profiles)
    _version: int = field(default=0, repr=False, compare=False)
    _nbr_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _nbr_version: int = field(default=-1, repr=False, compare=False)
    _csr_cache: tuple | None = field(default=None, repr=False, compare=False)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, n: int) -> "SteinerGraph":
        g = cls(
            n=n,
            adj=[[] for _ in range(n)],
            terminal_mask=np.zeros(n, dtype=bool),
            vertex_alive=np.ones(n, dtype=bool),
        )
        return g

    def add_edge(self, u: int, v: int, cost: float, ancestors: tuple[int, ...] | None = None) -> int:
        """Add an edge; by default it is its own (single) ancestor."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError("self-loops are not allowed")
        if cost < 0:
            raise GraphError("edge costs must be non-negative")
        eid = len(self.edges)
        anc = (eid,) if ancestors is None else tuple(ancestors)
        self.edges.append(_Edge(u, v, float(cost), True, anc))
        self.adj[u].append(eid)
        self.adj[v].append(eid)
        self._version += 1
        return eid

    def set_terminal(self, v: int, is_terminal: bool = True) -> None:
        self._check_vertex(v)
        self.terminal_mask[v] = is_terminal

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise GraphError(f"vertex {v} out of range [0, {self.n})")
        if not self.vertex_alive[v]:
            raise GraphError(f"vertex {v} is deleted")

    # -- queries ---------------------------------------------------------------

    @property
    def terminals(self) -> np.ndarray:
        return np.flatnonzero(self.terminal_mask & self.vertex_alive)

    @property
    def num_terminals(self) -> int:
        return int(np.count_nonzero(self.terminal_mask & self.vertex_alive))

    @property
    def num_alive_vertices(self) -> int:
        return int(np.count_nonzero(self.vertex_alive))

    @property
    def num_alive_edges(self) -> int:
        return sum(1 for e in self.edges if e.alive)

    def alive_vertices(self) -> np.ndarray:
        return np.flatnonzero(self.vertex_alive)

    def alive_edges(self) -> list[int]:
        return [i for i, e in enumerate(self.edges) if e.alive]

    def is_terminal(self, v: int) -> bool:
        return bool(self.terminal_mask[v]) and bool(self.vertex_alive[v])

    def degree(self, v: int) -> int:
        return sum(1 for eid in self.adj[v] if self.edges[eid].alive)

    def incident_edges(self, v: int) -> list[int]:
        return [eid for eid in self.adj[v] if self.edges[eid].alive]

    def neighbors(self, v: int) -> list[tuple[int, int, float]]:
        """Alive ``(neighbor, edge_id, cost)`` triples of vertex ``v``.

        Cached per vertex until the next mutation; callers must treat the
        returned list as read-only.
        """
        if self._nbr_version != self._version:
            self._nbr_cache.clear()
            self._nbr_version = self._version
        out = self._nbr_cache.get(v)
        if out is None:
            out = []
            for eid in self.adj[v]:
                e = self.edges[eid]
                if e.alive:
                    out.append((e.other(v), eid, e.cost))
            self._nbr_cache[v] = out
        return out

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Version-cached CSR view of the alive graph for numpy kernels.

        Returns ``(indptr, nbr, eid, cost)``: the alive neighbors of
        vertex ``v`` are ``nbr[indptr[v]:indptr[v+1]]`` with matching edge
        ids and costs.  Arrays are rebuilt lazily after any mutation and
        must be treated as read-only.
        """
        cache = self._csr_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        us, vs, ids, costs = [], [], [], []
        for i, e in enumerate(self.edges):
            if e.alive:
                us.append(e.u)
                vs.append(e.v)
                ids.append(i)
                costs.append(e.cost)
        tail = np.array(us + vs, dtype=np.int64)
        head = np.array(vs + us, dtype=np.int64)
        eid2 = np.array(ids + ids, dtype=np.int64)
        cost2 = np.array(costs + costs, dtype=np.float64)
        order = np.argsort(tail, kind="stable")
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(tail, minlength=self.n), out=indptr[1:])
        view = (indptr, head[order], eid2[order], cost2[order])
        self._csr_cache = (self._version, view)
        return view

    def invalidate_caches(self) -> None:
        """Bump the structure version after *direct* edge mutations.

        All graph methods invalidate automatically; call this only when
        touching ``edges[...]`` fields by hand (e.g. rewriting costs in
        bulk), or the neighbors/CSR caches will serve stale data.
        """
        self._version += 1

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        e = self.edges[eid]
        return e.u, e.v

    def edge_cost(self, eid: int) -> float:
        return self.edges[eid].cost

    def edge_ancestors(self, eid: int) -> tuple[int, ...]:
        return self.edges[eid].ancestors

    def find_edge(self, u: int, v: int) -> int | None:
        """Cheapest alive edge between u and v, or None."""
        best: int | None = None
        for eid in self.adj[u]:
            e = self.edges[eid]
            if e.alive and e.other(u) == v:
                if best is None or e.cost < self.edges[best].cost:
                    best = eid
        return best

    # -- mutations (the reduction primitives) ----------------------------------

    def delete_edge(self, eid: int) -> None:
        e = self.edges[eid]
        if not e.alive:
            raise GraphError(f"edge {eid} already deleted")
        e.alive = False
        self._version += 1

    def delete_vertex(self, v: int) -> None:
        """Delete ``v`` and all incident edges. Terminals cannot be deleted."""
        self._check_vertex(v)
        if self.terminal_mask[v]:
            raise GraphError(f"cannot delete terminal {v}")
        for eid in self.adj[v]:
            if self.edges[eid].alive:
                self.edges[eid].alive = False
        self.vertex_alive[v] = False
        self._version += 1

    def replace_path(self, v: int) -> int | None:
        """Degree-2 elimination: replace ``v``'s two edges by one edge.

        Returns the new edge id, or None if an existing parallel edge was
        cheaper (in which case both old edges are simply deleted).
        """
        self._check_vertex(v)
        if self.terminal_mask[v]:
            raise GraphError(f"cannot path-contract terminal {v}")
        inc = self.incident_edges(v)
        if len(inc) != 2:
            raise GraphError(f"vertex {v} has degree {len(inc)}, need 2")
        e1, e2 = self.edges[inc[0]], self.edges[inc[1]]
        a, b = e1.other(v), e2.other(v)
        new_cost = e1.cost + e2.cost
        new_anc = e1.ancestors + e2.ancestors
        e1.alive = False
        e2.alive = False
        self.vertex_alive[v] = False
        self._version += 1
        if a == b:
            return None  # the two edges formed a cycle through v
        existing = self.find_edge(a, b)
        if existing is not None and self.edges[existing].cost <= new_cost:
            return None
        if existing is not None:
            self.edges[existing].alive = False
        return self.add_edge(a, b, new_cost, new_anc)

    def contract_into_terminal(self, eid: int, terminal: int) -> None:
        """Contract edge ``eid`` into ``terminal``: its ancestors become part
        of every solution; the other endpoint's edges are re-hooked.

        Both endpoints may be terminals (adjacent-terminal contraction) or
        the other endpoint a non-terminal (degree-1 terminal neighbour).
        """
        e = self.edges[eid]
        if not e.alive:
            raise GraphError(f"edge {eid} is deleted")
        if terminal not in (e.u, e.v):
            raise GraphError("terminal must be an endpoint of the contracted edge")
        if not self.terminal_mask[terminal]:
            raise GraphError(f"vertex {terminal} is not a terminal")
        other = e.other(terminal)
        self.fixed_cost += e.cost
        self.fixed_edges.extend(e.ancestors)
        e.alive = False
        # re-hook other's edges to terminal, keeping the cheapest parallel
        for oid in list(self.adj[other]):
            oe = self.edges[oid]
            if not oe.alive:
                continue
            w = oe.other(other)
            if w == terminal:
                oe.alive = False
                continue
            existing = self.find_edge(terminal, w)
            if existing is not None and self.edges[existing].cost <= oe.cost:
                oe.alive = False
                continue
            if existing is not None:
                self.edges[existing].alive = False
            oe.alive = False
            self.add_edge(terminal, w, oe.cost, oe.ancestors)
        # merged vertex dies; it contributes terminal-ness to the survivor
        if self.terminal_mask[other]:
            self.terminal_mask[other] = False
        self.vertex_alive[other] = False
        self._version += 1

    # -- solution helpers -------------------------------------------------------

    def expand_solution(self, edge_ids: list[int]) -> tuple[list[int], float]:
        """Map current-graph solution edges to original edge ids + cost.

        Returns (original edge ids incl. fixed edges, total original cost
        = sum of current edge costs + fixed_cost).
        """
        orig: list[int] = list(self.fixed_edges)
        cost = self.fixed_cost
        for eid in edge_ids:
            e = self.edges[eid]
            orig.extend(e.ancestors)
            cost += e.cost
        return orig, cost

    def copy(self) -> "SteinerGraph":
        g = SteinerGraph(
            n=self.n,
            edges=[_Edge(e.u, e.v, e.cost, e.alive, e.ancestors) for e in self.edges],
            adj=[list(a) for a in self.adj],
            terminal_mask=self.terminal_mask.copy(),
            vertex_alive=self.vertex_alive.copy(),
            fixed_cost=self.fixed_cost,
            fixed_edges=list(self.fixed_edges),
        )
        return g

    def total_cost(self, edge_ids: list[int]) -> float:
        return sum(self.edges[e].cost for e in edge_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SteinerGraph(|V|={self.num_alive_vertices}, |E|={self.num_alive_edges}, "
            f"|T|={self.num_terminals}, fixed={self.fixed_cost:g})"
        )
