"""Shortest paths and Voronoi partitions on Steiner graphs.

Binary-heap Dijkstra over the adjacency structure; the multi-source
variant yields the *Voronoi partition* with respect to the terminal set,
the workhorse of bound-based reductions and the radius lower bound.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.steiner.graph import SteinerGraph


def dijkstra(
    graph: SteinerGraph,
    source: int,
    targets: set[int] | None = None,
    cost_override: dict[int, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths.

    Returns ``(dist, pred_edge)`` arrays over all vertex ids; dead
    vertices keep ``inf``/-1. If ``targets`` is given, stops once all of
    them are settled. ``cost_override`` substitutes costs per edge id
    (used by the LP-guided heuristic).
    """
    dist = np.full(graph.n, math.inf)
    pred = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    remaining = set(targets) if targets else None
    # numpy-first relaxation over the version-cached CSR view: one slice,
    # one vectorized compare per settled vertex instead of a python loop
    # over (neighbor, eid, cost) tuples
    indptr, nbr, eids, costs = graph.csr()
    if cost_override is not None:
        costs = np.array(
            [cost_override.get(int(e), c) for e, c in zip(eids, costs)], dtype=np.float64
        )
    push = heapq.heappush
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        nd = d + costs[lo:hi]
        ws = nbr[lo:hi]
        for i in np.flatnonzero(nd < dist[ws] - 1e-12):
            w = int(ws[i])
            ndi = float(nd[i])
            if ndi < dist[w] - 1e-12:  # parallel edges within one slice
                dist[w] = ndi
                pred[w] = eids[lo + i]
                push(heap, (ndi, w))
    return dist, pred


def extract_path(graph: SteinerGraph, pred: np.ndarray, target: int) -> list[int]:
    """Edge ids of the shortest path ending at ``target`` (pred from dijkstra)."""
    path = []
    v = target
    while pred[v] >= 0:
        eid = int(pred[v])
        path.append(eid)
        v = graph.edges[eid].other(v)
    path.reverse()
    return path


@dataclass
class VoronoiPartition:
    """Terminal Voronoi data: per-vertex nearest terminal, distance, pred edge."""

    base: np.ndarray  # nearest terminal per vertex (-1 for unreachable/dead)
    dist: np.ndarray
    pred: np.ndarray

    def radius_values(self, graph: SteinerGraph) -> np.ndarray:
        """Per-terminal radius: distance to the nearest foreign Voronoi region.

        The sum of the |T|-1 smallest radii is the classical *radius*
        lower bound for the SPG.
        """
        terms = graph.terminals
        radius = {int(t): math.inf for t in terms}
        for eid in graph.alive_edges():
            e = graph.edges[eid]
            bu, bv = int(self.base[e.u]), int(self.base[e.v])
            if bu < 0 or bv < 0 or bu == bv:
                continue
            du = self.dist[e.u] + e.cost
            dv = self.dist[e.v] + e.cost
            radius[bu] = min(radius[bu], du)
            radius[bv] = min(radius[bv], dv)
        return np.array([radius[int(t)] for t in terms])


def voronoi(graph: SteinerGraph) -> VoronoiPartition:
    """Multi-source Dijkstra from all terminals."""
    dist = np.full(graph.n, math.inf)
    base = np.full(graph.n, -1, dtype=np.int64)
    pred = np.full(graph.n, -1, dtype=np.int64)
    heap: list[tuple[float, int]] = []
    for t in graph.terminals:
        t = int(t)
        dist[t] = 0.0
        base[t] = t
        heapq.heappush(heap, (0.0, t))
    indptr, nbr, eids, costs = graph.csr()
    push = heapq.heappush
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        nd = d + costs[lo:hi]
        ws = nbr[lo:hi]
        bv = base[v]
        for i in np.flatnonzero(nd < dist[ws] - 1e-12):
            w = int(ws[i])
            ndi = float(nd[i])
            if ndi < dist[w] - 1e-12:
                dist[w] = ndi
                base[w] = bv
                pred[w] = eids[lo + i]
                push(heap, (ndi, w))
    return VoronoiPartition(base, dist, pred)


def radius_lower_bound(graph: SteinerGraph) -> float:
    """Radius-based SPG lower bound: sum of the |T|-1 smallest radii."""
    if graph.num_terminals <= 1:
        return 0.0
    vor = voronoi(graph)
    radii = np.sort(vor.radius_values(graph))
    vals = radii[: graph.num_terminals - 1]
    finite = vals[np.isfinite(vals)]
    return float(finite.sum())


def bottleneck_steiner_distance(
    graph: SteinerGraph,
    u: int,
    limit: float,
    max_visits: int = 400,
    avoid: int | None = None,
) -> dict[int, float]:
    """Restricted bottleneck Steiner distances from ``u``.

    Walks Dijkstra from ``u`` but resets the accumulated length to zero at
    terminals (the defining property of the special/bottleneck Steiner
    distance used by the SD edge-deletion test). The search is truncated
    at ``limit`` and ``max_visits`` settled vertices — the standard
    engineering compromise (exact SD is itself NP-hard to use fully).
    Returns a dict of reachable vertex -> upper bound on the SD.
    """
    # Each label is (bottleneck, cur_segment): the max terminal-free segment
    # length over the path so far, and the length of the ongoing segment.
    # Settling at the first pop keeps every reported value the bottleneck of
    # a concrete path, i.e. a sound upper bound on the true SD.
    sd: dict[int, float] = {u: 0.0}
    heap: list[tuple[float, float, int]] = [(0.0, 0.0, u)]
    best_key: dict[int, float] = {u: 0.0}
    settled: set[int] = set()
    indptr, nbr, _eids, costs = graph.csr()
    push = heapq.heappush
    inf = math.inf
    while heap and len(settled) < max_visits:
        key, cur, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        sd[v] = key
        if v == avoid:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        if lo == hi:
            continue
        seg_base = 0.0 if graph.is_terminal(v) and v != u else cur
        # vectorized label arithmetic over the CSR slice; the heap pushes
        # and dict filters stay scalar (tolist beats numpy scalar indexing)
        new_curs = (seg_base + costs[lo:hi]).tolist()
        ws = nbr[lo:hi].tolist()
        for w, new_cur in zip(ws, new_curs):
            if w == avoid or w in settled:
                continue
            new_key = new_cur if new_cur > key else key
            if new_key > limit:
                continue
            if new_key < best_key.get(w, inf) - 1e-12:
                best_key[w] = new_key
                push(heap, (new_key, new_cur, w))
    sd.pop(u, None)
    sd[u] = 0.0
    return sd
