"""SteinLib ``.stp`` format reader/writer.

Supports the sections used by the SPG instances of SteinLib (PUC, I640,
...): ``Comment``, ``Graph`` (Nodes/Edges/E lines, 1-based ids) and
``Terminals`` (T lines). Prize-collecting extensions are out of scope of
the paper's experiments and are rejected explicitly.

The reader and writer are kept *symmetric*: everything the writer can
emit the parser accepts, and the parser rejects — with 1-based ids in
the message — anything the writer could never have produced (ids outside
``[1, Nodes]``, self-loops, declared ``Edges``/``Terminals`` counts that
disagree with the actual lines, zero terminals). The generator zoo's
round-trip property suite (``tests/test_instances_generators.py``)
enforces this contract for every family.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph


def parse_stp(text: str) -> SteinerGraph:
    """Parse SteinLib text into a :class:`SteinerGraph`."""
    lines = [ln.strip() for ln in text.splitlines()]
    n_nodes: int | None = None
    edges: list[tuple[int, int, float]] = []  # 1-based endpoints, as read
    terminals: list[int] = []  # 1-based, as read
    declared_edges: int | None = None
    declared_terminals: int | None = None
    section = ""
    for raw in lines:
        if not raw or raw.startswith("#"):
            continue
        low = raw.lower()
        if low.startswith("section"):
            section = low.split(None, 1)[1] if len(low.split()) > 1 else ""
            continue
        if low == "end" or low == "eof":
            section = ""
            continue
        parts = raw.split()
        key = parts[0].lower()
        if section.startswith("graph"):
            if key == "nodes":
                n_nodes = int(parts[1])
            elif key in ("e", "a"):
                u, v, c = int(parts[1]), int(parts[2]), float(parts[3])
                edges.append((u, v, c))
            elif key == "edges" or key == "arcs":
                declared_edges = int(parts[1])
        elif section.startswith("terminals"):
            if key == "t":
                terminals.append(int(parts[1]))
            elif key == "terminals":
                declared_terminals = int(parts[1])
            elif key in ("rootp", "root", "tp"):
                raise GraphError("prize-collecting STP sections are not supported")
        elif section.startswith("maximumdegrees") or section.startswith("coordinates"):
            continue
    if n_nodes is None:
        raise GraphError("missing 'Nodes' line in Graph section")
    if declared_edges is not None and declared_edges != len(edges):
        raise GraphError(
            f"Graph section declares {declared_edges} edges but lists {len(edges)} "
            "(truncated or corrupt file)"
        )
    if declared_terminals is not None and declared_terminals != len(terminals):
        raise GraphError(
            f"Terminals section declares {declared_terminals} terminals but lists "
            f"{len(terminals)} (truncated or corrupt file)"
        )
    g = SteinerGraph.create(n_nodes)
    for u, v, c in edges:
        if not (1 <= u <= n_nodes and 1 <= v <= n_nodes):
            raise GraphError(f"edge ({u}, {v}) uses node ids outside [1, {n_nodes}] (ids are 1-based)")
        if u == v:
            raise GraphError(f"self-loop on node {u} is not a valid SPG edge")
        g.add_edge(u - 1, v - 1, c)
    for t in terminals:
        if not 1 <= t <= n_nodes:
            raise GraphError(f"terminal {t} outside [1, {n_nodes}] (ids are 1-based)")
        g.set_terminal(t - 1)
    if g.num_terminals == 0:
        raise GraphError("instance has no terminals")
    return g


def read_stp(path: str | Path) -> SteinerGraph:
    """Read a SteinLib ``.stp`` file."""
    return parse_stp(Path(path).read_text())


def write_stp(graph: SteinerGraph, name: str = "instance") -> str:
    """Serialize the alive part of ``graph`` in SteinLib format.

    Vertex ids are compacted to 1..|V_alive| in the output. A graph
    without terminals is refused — the parser (rightly) rejects such
    files, and a writer must not emit output its own reader cannot read.
    """
    if graph.num_terminals == 0:
        raise GraphError("refusing to write an instance with no terminals")
    buf = io.StringIO()
    buf.write("33D32945 STP File, STP Format Version 1.0\n\n")
    buf.write("SECTION Comment\n")
    buf.write(f'Name    "{name}"\n')
    buf.write('Creator "repro"\n')
    buf.write("END\n\n")
    alive = list(graph.alive_vertices())
    remap = {int(v): i + 1 for i, v in enumerate(alive)}
    live_edges = graph.alive_edges()
    buf.write("SECTION Graph\n")
    buf.write(f"Nodes {len(alive)}\n")
    buf.write(f"Edges {len(live_edges)}\n")
    for eid in live_edges:
        e = graph.edges[eid]
        cost = int(e.cost) if float(e.cost).is_integer() else e.cost
        buf.write(f"E {remap[e.u]} {remap[e.v]} {cost}\n")
    buf.write("END\n\n")
    buf.write("SECTION Terminals\n")
    terms = [int(t) for t in graph.terminals]
    buf.write(f"Terminals {len(terms)}\n")
    for t in terms:
        buf.write(f"T {remap[t]}\n")
    buf.write("END\n\nEOF\n")
    return buf.getvalue()
