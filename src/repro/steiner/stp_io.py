"""SteinLib ``.stp`` format reader/writer.

Supports the sections used by the SPG instances of SteinLib (PUC, I640,
...): ``Comment``, ``Graph`` (Nodes/Edges/E lines, 1-based ids) and
``Terminals`` (T lines). Prize-collecting extensions are out of scope of
the paper's experiments and are rejected explicitly.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph


def parse_stp(text: str) -> SteinerGraph:
    """Parse SteinLib text into a :class:`SteinerGraph`."""
    lines = [ln.strip() for ln in text.splitlines()]
    n_nodes: int | None = None
    edges: list[tuple[int, int, float]] = []
    terminals: list[int] = []
    section = ""
    for raw in lines:
        if not raw or raw.startswith("#"):
            continue
        low = raw.lower()
        if low.startswith("section"):
            section = low.split(None, 1)[1] if len(low.split()) > 1 else ""
            continue
        if low == "end" or low == "eof":
            section = ""
            continue
        parts = raw.split()
        key = parts[0].lower()
        if section.startswith("graph"):
            if key == "nodes":
                n_nodes = int(parts[1])
            elif key in ("e", "a"):
                u, v, c = int(parts[1]), int(parts[2]), float(parts[3])
                edges.append((u - 1, v - 1, c))
            elif key == "edges" or key == "arcs":
                continue
        elif section.startswith("terminals"):
            if key == "t":
                terminals.append(int(parts[1]) - 1)
            elif key == "terminals":
                continue
            elif key in ("rootp", "root", "tp"):
                raise GraphError("prize-collecting STP sections are not supported")
        elif section.startswith("maximumdegrees") or section.startswith("coordinates"):
            continue
    if n_nodes is None:
        raise GraphError("missing 'Nodes' line in Graph section")
    g = SteinerGraph.create(n_nodes)
    for u, v, c in edges:
        if u == v:
            continue
        g.add_edge(u, v, c)
    for t in terminals:
        g.set_terminal(t)
    if g.num_terminals == 0:
        raise GraphError("instance has no terminals")
    return g


def read_stp(path: str | Path) -> SteinerGraph:
    """Read a SteinLib ``.stp`` file."""
    return parse_stp(Path(path).read_text())


def write_stp(graph: SteinerGraph, name: str = "instance") -> str:
    """Serialize the alive part of ``graph`` in SteinLib format.

    Vertex ids are compacted to 1..|V_alive| in the output.
    """
    buf = io.StringIO()
    buf.write("33D32945 STP File, STP Format Version 1.0\n\n")
    buf.write("SECTION Comment\n")
    buf.write(f'Name    "{name}"\n')
    buf.write('Creator "repro"\n')
    buf.write("END\n\n")
    alive = list(graph.alive_vertices())
    remap = {int(v): i + 1 for i, v in enumerate(alive)}
    live_edges = graph.alive_edges()
    buf.write("SECTION Graph\n")
    buf.write(f"Nodes {len(alive)}\n")
    buf.write(f"Edges {len(live_edges)}\n")
    for eid in live_edges:
        e = graph.edges[eid]
        cost = int(e.cost) if float(e.cost).is_integer() else e.cost
        buf.write(f"E {remap[e.u]} {remap[e.v]} {cost}\n")
    buf.write("END\n\n")
    buf.write("SECTION Terminals\n")
    terms = [int(t) for t in graph.terminals]
    buf.write(f"Terminals {len(terms)}\n")
    for t in terms:
        buf.write(f"T {remap[t]}\n")
    buf.write("END\n\nEOF\n")
    return buf.getvalue()
