"""Dinic max-flow / min-cut on the SAP support digraph.

Used by the directed-cut separator: capacities are the LP arc values and
a min cut of capacity < 1 between the root and a terminal is exactly a
violated constraint (4) of the flow-balance directed cut formulation.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class MaxFlow:
    """Dinic's algorithm over an explicit arc list.

    Arcs are given once; capacities can be reset between runs so the
    separator reuses the structure across terminals and LP rounds.
    """

    def __init__(self, n: int, arc_tail: np.ndarray, arc_head: np.ndarray) -> None:
        self.n = n
        m = len(arc_tail)
        self.m = m
        # residual arc storage: forward arcs at 2k, backward at 2k+1
        self.to = np.empty(2 * m, dtype=np.int64)
        self.cap = np.zeros(2 * m, dtype=float)
        self.adj: list[list[int]] = [[] for _ in range(n)]
        for k in range(m):
            u, v = int(arc_tail[k]), int(arc_head[k])
            self.to[2 * k] = v
            self.to[2 * k + 1] = u
            self.adj[u].append(2 * k)
            self.adj[v].append(2 * k + 1)

    def set_capacities(self, capacities: np.ndarray) -> None:
        self.cap[0::2] = capacities
        self.cap[1::2] = 0.0

    def _bfs_levels(self, s: int, t: int) -> np.ndarray | None:
        level = np.full(self.n, -1, dtype=np.int64)
        level[s] = 0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for a in self.adj[v]:
                w = int(self.to[a])
                if self.cap[a] > 1e-12 and level[w] < 0:
                    level[w] = level[v] + 1
                    queue.append(w)
        return level if level[t] >= 0 else None

    def _dfs_augment(self, v: int, t: int, pushed: float, level: np.ndarray, it: list[int]) -> float:
        if v == t:
            return pushed
        while it[v] < len(self.adj[v]):
            a = self.adj[v][it[v]]
            w = int(self.to[a])
            if self.cap[a] > 1e-12 and level[w] == level[v] + 1:
                got = self._dfs_augment(w, t, min(pushed, float(self.cap[a])), level, it)
                if got > 1e-12:
                    self.cap[a] -= got
                    self.cap[a ^ 1] += got
                    return got
            it[v] += 1
        return 0.0

    def max_flow(self, s: int, t: int, limit: float = float("inf")) -> float:
        """Compute max flow from s to t, stopping early once >= limit."""
        flow = 0.0
        while flow < limit:
            level = self._bfs_levels(s, t)
            if level is None:
                break
            it = [0] * self.n
            while flow < limit:
                pushed = self._dfs_augment(s, t, limit - flow, level, it)
                if pushed <= 1e-12:
                    break
                flow += pushed
        return flow

    def min_cut_source_side(self, s: int) -> np.ndarray:
        """After max_flow: vertices reachable from s in the residual graph."""
        reach = np.zeros(self.n, dtype=bool)
        reach[s] = True
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for a in self.adj[v]:
                w = int(self.to[a])
                if self.cap[a] > 1e-12 and not reach[w]:
                    reach[w] = True
                    queue.append(w)
        return reach
