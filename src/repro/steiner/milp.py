"""Single-commodity flow MIP formulation of the Steiner tree problem.

This is the classical compact formulation: binary edge variables
``y_e``, one pair of arc flow variables per edge, a root chosen as the
smallest terminal that ships one unit of flow to every other terminal,
and capacity coupling ``f_uv + f_vu <= (|T|-1) y_e``.  Any Steiner tree
routes such a flow, and any feasible support connects the root to every
terminal, so with positive edge costs the MIP optimum *is* the Steiner
optimum and its support is a Steiner tree.

The point of the formulation inside this repo is that it is **purely
linear** — no constraint handler, no relaxator — which makes it the one
Steiner path on which the kernel's symmetry machinery
(:mod:`repro.cip.symmetry`) is allowed to run: graph automorphisms of
the instance (e.g. the coordinate permutations of a parity-terminal
hypercube) survive as formulation symmetries of this model.  The
branch-and-cut solver in :mod:`repro.steiner.solver` remains the fast
path; this module feeds the modern-kernel benchmarks and differential
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cip.mip import make_mip_solver
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.result import SolveResult
from repro.cip.solver import CIPSolver
from repro.exceptions import ModelError
from repro.steiner.graph import SteinerGraph
from repro.steiner.union_find import UnionFind


@dataclass
class FlowMIP:
    """A flow formulation plus the bookkeeping to read solutions back."""

    model: Model
    graph: SteinerGraph
    root: int
    edge_of_var: dict[int, int]  # y-variable index -> graph edge id
    var_of_edge: dict[int, int]  # graph edge id -> y-variable index

    def tree_edges(self, x: np.ndarray) -> list[int]:
        """Edge ids of the Steiner tree encoded by a feasible solution.

        The support of ``y`` connects the root to every terminal but may
        carry cost-neutral extras (zero-cost cycles, dangling zero-cost
        edges); drop cycle-closing edges and prune non-terminal leaves so
        the result is always a tree.
        """
        chosen = []
        uf = UnionFind(self.graph.n)
        for j, eid in self.edge_of_var.items():
            if x[j] >= 0.5:
                u, v = self.graph.edge_endpoints(eid)
                if uf.union(u, v):
                    chosen.append(eid)
        # iteratively prune leaves that are not terminals
        degree: dict[int, int] = {}
        incident: dict[int, list[int]] = {}
        for eid in chosen:
            for w in self.graph.edge_endpoints(eid):
                degree[w] = degree.get(w, 0) + 1
                incident.setdefault(w, []).append(eid)
        alive = set(chosen)
        changed = True
        while changed:
            changed = False
            for w, eids in incident.items():
                live = [e for e in eids if e in alive]
                if len(live) == 1 and not self.graph.is_terminal(w):
                    alive.discard(live[0])
                    changed = True
            incident = {
                w: [e for e in eids if e in alive] for w, eids in incident.items()
            }
        return sorted(alive)


def stp_flow_mip(graph: SteinerGraph) -> FlowMIP:
    """Build the single-commodity flow MIP of a Steiner instance."""
    terminals = [int(t) for t in graph.terminals]
    if not terminals:
        raise ModelError("flow formulation needs at least one terminal")
    root = min(terminals)
    demand = len(terminals) - 1  # units shipped out of the root
    model = Model(name="stp_flow")
    edge_of_var: dict[int, int] = {}
    var_of_edge: dict[int, int] = {}
    arc_in: dict[int, list[int]] = {v: [] for v in range(graph.n)}
    arc_out: dict[int, list[int]] = {v: [] for v in range(graph.n)}
    flow_vars: dict[int, tuple[int, int]] = {}  # edge id -> (f_uv, f_vu)
    for eid in graph.alive_edges():
        u, v = graph.edge_endpoints(eid)
        y = model.add_variable(
            f"y_{u}_{v}", VarType.BINARY, obj=graph.edge_cost(eid)
        )
        edge_of_var[y.index] = eid
        var_of_edge[eid] = y.index
        f_uv = model.add_variable(f"f_{u}_{v}", lb=0.0, ub=float(demand))
        f_vu = model.add_variable(f"f_{v}_{u}", lb=0.0, ub=float(demand))
        flow_vars[eid] = (f_uv.index, f_vu.index)
        arc_out[u].append(f_uv.index)
        arc_in[v].append(f_uv.index)
        arc_out[v].append(f_vu.index)
        arc_in[u].append(f_vu.index)
        # capacity coupling: no flow unless the edge is bought
        model.add_constraint(
            {f_uv.index: 1.0, f_vu.index: 1.0, y.index: -float(demand)},
            rhs=0.0,
            name=f"cap_{u}_{v}",
        )
    term_set = set(terminals)
    for v in np.flatnonzero(graph.vertex_alive):
        v = int(v)
        coefs: dict[int, float] = {}
        for a in arc_in[v]:
            coefs[a] = coefs.get(a, 0.0) + 1.0
        for a in arc_out[v]:
            coefs[a] = coefs.get(a, 0.0) - 1.0
        if v == root:
            balance = -float(demand)  # ships `demand` units out
        elif v in term_set:
            balance = 1.0  # absorbs one unit
        else:
            balance = 0.0
        if not coefs:
            if balance != 0.0:
                raise ModelError(f"terminal {v} is isolated")
            continue
        model.add_constraint(coefs, lhs=balance, rhs=balance, name=f"bal_{v}")
    model.obj_offset = graph.fixed_cost
    return FlowMIP(model, graph, root, edge_of_var, var_of_edge)


def solve_stp_flow(
    graph: SteinerGraph, params: ParamSet | None = None
) -> tuple[SolveResult, list[int], CIPSolver]:
    """Solve an instance through the flow MIP; returns (result, tree, solver)."""
    fm = stp_flow_mip(graph)
    solver = make_mip_solver(fm.model, params)
    result = solver.solve()
    edges: list[int] = []
    if result.best_solution is not None:
        edges = fm.tree_edges(result.best_solution.x)
    return result, edges, solver
