"""Seeded SPG instance generators.

The paper's hard instances come from the PUC test set, whose three
families are themselves synthetic constructions (Rosseti et al. 2001):
hypercubes (``hc``), code covering graphs (``cc``) and bipartite
instances (``bip``), each in unit-cost (``u``) and perturbed-cost (``p``)
variants. These generators follow the published constructions at
reduced scale — crucially preserving the PUC hallmark the paper relies
on: *presolve removes almost nothing* (see DESIGN.md §4).
"""

from __future__ import annotations

import itertools

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.utils import make_rng


def _costs(rng, m: int, perturbed: bool) -> list[float]:
    if not perturbed:
        return [1.0] * m
    # PUC 'p' variants use small random integer weights
    return [float(w) for w in rng.integers(1, 11, size=m)]


def hypercube_instance(dim: int, perturbed: bool = False, seed: int = 0) -> SteinerGraph:
    """``hc{dim}u``/``hc{dim}p`` analogue: d-dimensional hypercube.

    Vertices are the 2^d binary words, edges join Hamming-1 neighbours and
    terminals are the even-parity words — so |T| = |V|/2 and every
    non-terminal is adjacent only to terminals, defeating degree and SD
    tests exactly like the original family.
    """
    if not 2 <= dim <= 16:
        raise GraphError("hypercube dimension must be in [2, 16]")
    rng = make_rng(seed)
    n = 1 << dim
    g = SteinerGraph.create(n)
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)]
    costs = _costs(rng, len(edges), perturbed)
    for (u, v), c in zip(edges, costs):
        g.add_edge(u, v, c)
    for v in range(n):
        if bin(v).count("1") % 2 == 0:
            g.set_terminal(v)
    return g


def code_cover_instance(
    length: int,
    alphabet: int,
    perturbed: bool = False,
    seed: int = 0,
    terminal_fraction: float = 0.5,
) -> SteinerGraph:
    """``cc{length}-{alphabet}`` analogue: code covering graph.

    Vertices are words of ``length`` symbols over an ``alphabet``-ary
    alphabet; edges join words at Hamming distance one. A deterministic
    pseudo-random subset of vertices (``terminal_fraction``) is chosen as
    terminals, mirroring the covering-code flavour of the family.
    """
    n = alphabet**length
    if n > 1 << 16:
        raise GraphError("code cover instance too large")
    rng = make_rng(seed)
    words = list(itertools.product(range(alphabet), repeat=length))
    index = {w: i for i, w in enumerate(words)}
    g = SteinerGraph.create(n)
    edges = []
    for w, i in index.items():
        for pos in range(length):
            for sym in range(alphabet):
                if sym == w[pos]:
                    continue
                w2 = w[:pos] + (sym,) + w[pos + 1 :]
                j = index[w2]
                if i < j:
                    edges.append((i, j))
    costs = _costs(rng, len(edges), perturbed)
    for (u, v), c in zip(edges, costs):
        g.add_edge(u, v, c)
    k = max(2, int(n * terminal_fraction))
    terms = rng.choice(n, size=k, replace=False)
    for t in terms:
        g.set_terminal(int(t))
    return g


def bipartite_instance(
    n_left: int,
    n_right: int,
    degree: int = 3,
    perturbed: bool = True,
    seed: int = 0,
) -> SteinerGraph:
    """``bip`` analogue: terminals on the left, Steiner vertices on the right.

    Every left (terminal) vertex connects to ``degree`` random right
    vertices; right vertices are additionally sparsely interconnected.
    The resulting set-cover-like structure resists reductions, as in PUC.
    """
    rng = make_rng(seed)
    n = n_left + n_right
    g = SteinerGraph.create(n)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for left in range(n_left):
        picks = rng.choice(n_right, size=min(degree, n_right), replace=False)
        for r in picks:
            pair = (left, n_left + int(r))
            if pair not in seen:
                seen.add(pair)
                edges.append(pair)
    # sparse right-right backbone keeps the instance connected
    right_order = rng.permutation(n_right)
    for i in range(n_right - 1):
        pair = (n_left + int(right_order[i]), n_left + int(right_order[i + 1]))
        key = (min(pair), max(pair))
        if key not in seen:
            seen.add(key)
            edges.append(key)
    extra = max(n_right // 2, 1)
    for _ in range(extra):
        a, b = rng.choice(n_right, size=2, replace=False)
        pair = (n_left + int(min(a, b)), n_left + int(max(a, b)))
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            edges.append(pair)
    costs = _costs(rng, len(edges), perturbed)
    for (u, v), c in zip(edges, costs):
        g.add_edge(u, v, c)
    for t in range(n_left):
        g.set_terminal(t)
    return g


def grid_instance(rows: int, cols: int, n_terminals: int, perturbed: bool = True, seed: int = 0) -> SteinerGraph:
    """Rectangular grid with random terminals — an easy, reduction-friendly
    family for tests and examples (the opposite of PUC)."""
    rng = make_rng(seed)
    n = rows * cols
    g = SteinerGraph.create(n)
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    costs = _costs(rng, len(edges), perturbed)
    for (u, v), cst in zip(edges, costs):
        g.add_edge(u, v, cst)
    if n_terminals < 2 or n_terminals > n:
        raise GraphError("need 2 <= n_terminals <= rows*cols")
    for t in rng.choice(n, size=n_terminals, replace=False):
        g.set_terminal(int(t))
    return g


def random_instance(n: int, m: int, n_terminals: int, seed: int = 0, max_cost: int = 20) -> SteinerGraph:
    """Connected Erdos–Renyi-style instance with integer costs."""
    if m < n - 1:
        raise GraphError("need m >= n - 1 for connectivity")
    rng = make_rng(seed)
    g = SteinerGraph.create(n)
    seen: set[tuple[int, int]] = set()
    order = rng.permutation(n)
    for i in range(n - 1):  # random spanning tree first
        u, v = int(order[i]), int(order[i + 1])
        seen.add((min(u, v), max(u, v)))
    while len(seen) < m:
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        seen.add((int(min(u, v)), int(max(u, v))))
    for u, v in sorted(seen):
        g.add_edge(u, v, float(rng.integers(1, max_cost + 1)))
    for t in rng.choice(n, size=n_terminals, replace=False):
        g.set_terminal(int(t))
    return g
