"""Prize-collecting Steiner tree problems (PCSTP) and the MWCS reduction.

SCIP-Jack's hallmark is versatility: "transforms all problem classes to
the Steiner arborescence problem (sometimes with additional
constraints)". This module implements that pipeline for the
prize-collecting Steiner tree problem and, via the classical objective
shift, the maximum-weight connected subgraph problem (MWCS) the paper
cites for its problem-specific heuristics.

PCSTP: given G = (V, E), edge costs c >= 0 and vertex prizes p >= 0,
find a tree S minimising  sum_{e in S} c(e) + sum_{v not in S} p(v).

Transformation to SAP (Gamrath et al.): add an artificial root r and,
for every vertex v with p(v) > 0, a terminal t_v with arcs

    (v, t_v) of cost 0      — collect the prize by connecting v,
    (r, t_v) of cost p(v)   — or pay the prize as a penalty,

plus 0-cost *entry* arcs (r, v) for every potential terminal v, coupled
by the additional constraint "at most one entry arc" so the chosen graph
arcs form a single tree (this is exactly the paper's "sometimes with
additional constraints"). All t_v are terminals of the SAP; a minimum
arborescence then encodes an optimal prize-collecting tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cip.branching import MostFractionalBranching
from repro.cip.model import Model, VarType
from repro.cip.params import ParamSet
from repro.cip.result import SolveStatus
from repro.cip.solver import CIPSolver
from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.steiner.separators import SteinerCutHandler
from repro.steiner.transformations import SAPDigraph
from repro.steiner.union_find import UnionFind
from repro.utils import make_rng


@dataclass
class PCSTP:
    """A prize-collecting Steiner tree instance."""

    graph: SteinerGraph
    prizes: np.ndarray  # one non-negative prize per vertex

    def __post_init__(self) -> None:
        self.prizes = np.asarray(self.prizes, dtype=float)
        if len(self.prizes) != self.graph.n:
            raise GraphError("need one prize per vertex")
        if np.any(self.prizes < 0):
            raise GraphError("prizes must be non-negative")

    def solution_value(self, edge_ids: list[int], vertices: set[int]) -> float:
        """Objective of a candidate tree: edge costs + foregone prizes."""
        cost = sum(self.graph.edges[e].cost for e in edge_ids)
        penalty = sum(
            float(self.prizes[v])
            for v in self.graph.alive_vertices()
            if int(v) not in vertices
        )
        return cost + penalty

    def validate(self, edge_ids: list[int], vertices: set[int]) -> float:
        """Check the solution is a tree on ``vertices``; returns its value."""
        uf = UnionFind(self.graph.n)
        for eid in edge_ids:
            e = self.graph.edges[eid]
            if e.u not in vertices or e.v not in vertices:
                raise GraphError(f"edge {eid} leaves the chosen vertex set")
            if not uf.union(e.u, e.v):
                raise GraphError(f"edge {eid} closes a cycle")
        vs = sorted(vertices)
        for v in vs[1:]:
            if not uf.connected(vs[0], v):
                raise GraphError("chosen vertices are not connected")
        if len(edge_ids) != max(len(vertices) - 1, 0):
            raise GraphError("edge count does not match a spanning tree")
        return self.solution_value(edge_ids, vertices)


@dataclass
class PCSAP:
    """SAP encoding of a PCSTP plus the bookkeeping to map back."""

    sap: SAPDigraph
    edge_of_arc: dict[int, int]  # SAP arc -> original edge id (forward arcs)
    vertex_of_terminal: dict[int, int]  # terminal node -> original vertex
    collect_arc: dict[int, int]  # original vertex -> its (v, t_v) arc
    entry_arc: dict[int, int] = field(default_factory=dict)  # vertex -> (r, v) arc


def pcstp_to_sap(instance: PCSTP) -> PCSAP:
    """Build the rooted SAP encoding described in the module docstring."""
    g = instance.graph
    potential = [int(v) for v in g.alive_vertices() if instance.prizes[int(v)] > 0]
    if not potential:
        raise GraphError("PCSTP needs at least one positive prize")
    n_orig = g.n
    root = n_orig
    term_of = {v: n_orig + 1 + i for i, v in enumerate(potential)}
    n_total = n_orig + 1 + len(potential)

    arc_tail: list[int] = []
    arc_head: list[int] = []
    arc_cost: list[float] = []
    arc_edge: list[int] = []
    edge_of_arc: dict[int, int] = {}
    collect_arc: dict[int, int] = {}

    def add_arc(t: int, h: int, c: float, eid: int = -1) -> int:
        arc_tail.append(t)
        arc_head.append(h)
        arc_cost.append(c)
        arc_edge.append(eid)
        return len(arc_tail) - 1

    for eid in g.alive_edges():
        e = g.edges[eid]
        a1 = add_arc(e.u, e.v, e.cost, eid)
        a2 = add_arc(e.v, e.u, e.cost, eid)
        edge_of_arc[a1] = eid
        edge_of_arc[a2] = eid
    entry_arc: dict[int, int] = {}
    for v in potential:
        collect_arc[v] = add_arc(v, term_of[v], 0.0)
        add_arc(root, term_of[v], float(instance.prizes[v]))
        entry_arc[v] = add_arc(root, v, 0.0)

    out_arcs: list[list[int]] = [[] for _ in range(n_total)]
    in_arcs: list[list[int]] = [[] for _ in range(n_total)]
    for a in range(len(arc_tail)):
        out_arcs[arc_tail[a]].append(a)
        in_arcs[arc_head[a]].append(a)
    sap = SAPDigraph(
        n_total,
        root,
        np.asarray(arc_tail),
        np.asarray(arc_head),
        np.asarray(arc_cost),
        np.asarray(arc_edge),
        [root] + [term_of[v] for v in potential],
        out_arcs,
        in_arcs,
    )
    return PCSAP(sap, edge_of_arc, {t: v for v, t in term_of.items()}, collect_arc, entry_arc)


@dataclass
class PCSolution:
    status: SolveStatus
    value: float
    edges: list[int]
    vertices: set[int] = field(default_factory=set)
    dual_bound: float = -math.inf
    nodes_processed: int = 0


class PrizeCollectingSolver:
    """Branch-and-cut PCSTP solver on the SAP encoding."""

    def __init__(self, instance: PCSTP, params: ParamSet | None = None, seed: int = 0) -> None:
        self.instance = instance
        self.params = params or ParamSet()
        self.seed = seed
        self.pcsap = pcstp_to_sap(instance)
        self.cip = self._build_cip()

    def _build_cip(self) -> CIPSolver:
        sap = self.pcsap.sap
        model = Model("pcstp", data=self.instance)
        for a in range(sap.num_arcs):
            model.add_variable(f"y{a}", VarType.BINARY, obj=float(sap.arc_cost[a]))
        for t in sap.sinks():
            model.add_constraint({a: 1.0 for a in sap.in_arcs[t]}, lhs=1.0, rhs=1.0)
        # the additional PCSTP constraint: at most one root entry arc
        model.add_constraint({a: 1.0 for a in self.pcsap.entry_arc.values()}, rhs=1.0)
        for v in range(sap.n):
            if v == sap.root or v in set(sap.sinks()):
                continue
            in_a = sap.in_arcs[v]
            if not in_a:
                continue
            model.add_constraint({a: 1.0 for a in in_a}, rhs=1.0)
            coefs = {a: -1.0 for a in in_a}
            for a in sap.out_arcs[v]:
                coefs[a] = coefs.get(a, 0.0) + 1.0
            model.add_constraint(coefs, lhs=0.0)
        cip = CIPSolver(model, self.params.with_changes(presolve=False))
        cip.include_constraint_handler(SteinerCutHandler(sap))
        cip.include_branching_rule(MostFractionalBranching())
        cip.include_heuristic(_PCGreedyHeuristic(self.instance, self.pcsap, self.seed))
        cip.setup()
        return cip

    def solve(self, node_limit: int | None = None, time_limit: float | None = None) -> PCSolution:
        result = self.cip.solve(node_limit=node_limit, time_limit=time_limit)
        if result.best_solution is None:
            return PCSolution(result.status, math.inf, [], set(), result.dual_bound, result.nodes_processed)
        edges, vertices = self._decode(result.best_solution.x)
        value = self.instance.validate(edges, vertices)
        return PCSolution(result.status, value, edges, vertices, result.dual_bound, result.nodes_processed)

    def _decode(self, x: np.ndarray) -> tuple[list[int], set[int]]:
        sap = self.pcsap.sap
        edges = sorted(
            {self.pcsap.edge_of_arc[a] for a in self.pcsap.edge_of_arc if x[a] > 0.5}
        )
        vertices: set[int] = set()
        for eid in edges:
            e = self.instance.graph.edges[eid]
            vertices.add(e.u)
            vertices.add(e.v)
        # isolated collected vertices: prize collected through (v, t_v)
        for v, arc in self.pcsap.collect_arc.items():
            if x[arc] > 0.5:
                vertices.add(v)
        return edges, vertices


class _PCGreedyHeuristic:
    """Primal heuristic: grow the tree from the anchor along profitable
    shortest paths, then offer the encoded arc vector."""

    name = "pc_greedy"
    priority = 50

    def __init__(self, instance: PCSTP, pcsap: PCSAP, seed: int):
        self.instance = instance
        self.pcsap = pcsap
        self.rng = make_rng(seed)

    def run(self, solver: CIPSolver, node, x) -> None:
        inst = self.instance
        g = inst.graph
        potential = sorted(self.pcsap.collect_arc, key=lambda v: -inst.prizes[v])
        if not potential:
            return
        from repro.steiner.shortest_paths import dijkstra, extract_path

        anchor = potential[0]
        vertices = {anchor}
        edges: set[int] = set()
        for v in potential[1:]:
            dist, pred = dijkstra(g, v)
            best = min(vertices, key=lambda w: dist[w])
            if not math.isfinite(dist[best]) or dist[best] >= inst.prizes[v]:
                continue  # connecting costs more than the prize
            path = extract_path(g, pred, best)
            for eid in path:
                if eid not in edges:
                    e = g.edges[eid]
                    edges.add(eid)
                    vertices.add(e.u)
                    vertices.add(e.v)
        value = inst.solution_value(sorted(edges), vertices)
        arcs = self._encode(sorted(edges), vertices)
        if arcs is not None:
            solver.add_solution(value, arcs, data={"edges": sorted(edges)}, check=True)

    def _encode(self, edges: list[int], vertices: set[int]) -> np.ndarray | None:
        sap = self.pcsap.sap
        x = np.zeros(sap.num_arcs)
        # pick any potential-terminal entry vertex inside the tree
        entries = [v for v in vertices if v in self.pcsap.entry_arc]
        if not entries:
            return None
        anchor = min(entries)
        x[self.pcsap.entry_arc[anchor]] = 1.0
        adjacency: dict[int, list[tuple[int, int]]] = {}
        g = self.instance.graph
        for eid in edges:
            e = g.edges[eid]
            adjacency.setdefault(e.u, []).append((e.v, eid))
            adjacency.setdefault(e.v, []).append((e.u, eid))
        arc_lookup = {
            (int(sap.arc_tail[a]), int(sap.arc_head[a])): a for a in self.pcsap.edge_of_arc
        }
        visited = {anchor}
        stack = [anchor]
        while stack:
            v = stack.pop()
            for w, eid in adjacency.get(v, ()):
                if w in visited:
                    continue
                a = arc_lookup.get((v, w))
                if a is None:
                    return None
                x[a] = 1.0
                visited.add(w)
                stack.append(w)
        if visited - {anchor} != vertices - {anchor} and visited != vertices:
            return None  # disconnected pick
        for v, arc in self.pcsap.collect_arc.items():
            t = int(sap.arc_head[arc])
            if v in vertices:
                x[arc] = 1.0
            else:
                # pay the penalty arc (root, t_v)
                pen = next(a for a in sap.in_arcs[t] if int(sap.arc_tail[a]) == sap.root)
                x[pen] = 1.0
        return x


# --- MWCS reduction -----------------------------------------------------------

def mwcs_to_pcstp(graph: SteinerGraph, weights: np.ndarray) -> tuple[PCSTP, float]:
    """Reduce maximum-weight connected subgraph to PCSTP.

    MWCS: choose a connected vertex set maximising sum of (possibly
    negative) vertex weights ``w``. Classical reduction: positive weights
    become prizes, negative weights become costs on all incident edges'
    halves — here realised by edge costs c(u,v) = (max(0,-w(u)) +
    max(0,-w(v))) / 2 and prizes p(v) = max(0, w(v)). Returns the PCSTP
    and the constant ``sum of positive weights`` such that

        MWCS-optimum = positive_sum - PCSTP-optimum.
    """
    weights = np.asarray(weights, dtype=float)
    if len(weights) != graph.n:
        raise GraphError("need one weight per vertex")
    pc_graph = graph.copy()
    for eid in pc_graph.alive_edges():
        e = pc_graph.edges[eid]
        e.cost = max(0.0, -weights[e.u]) / 2.0 + max(0.0, -weights[e.v]) / 2.0
    pc_graph.invalidate_caches()  # costs were rewritten in place
    prizes = np.maximum(weights, 0.0)
    positive_sum = float(prizes.sum())
    return PCSTP(pc_graph, prizes), positive_sum
