"""Validation of Steiner tree solutions against a graph.

Covers the plain SPG tree check plus the two solution shapes the
transformation pipeline produces: prize-collecting trees (PCSTP) and
arborescences on a :class:`~repro.steiner.transformations.SAPDigraph`.
All checkers recompute the objective from raw edge/arc costs — they are
the trusted half of the ``repro.verify`` certificate layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.steiner.union_find import UnionFind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (prize_collecting imports us)
    from repro.steiner.prize_collecting import PCSTP
    from repro.steiner.transformations import SAPDigraph


def validate_tree(graph: SteinerGraph, edge_ids: list[int], *, original: bool = False) -> float:
    """Check that ``edge_ids`` form a cycle-free subgraph connecting all
    terminals; returns its cost.

    With ``original=True`` the ids refer to the *original* edge list
    (ancestor ids), so deleted edges are permitted — this is how expanded
    solutions from reduced graphs are validated.

    Raises
    ------
    GraphError
        If the edge set contains a cycle, duplicates, or fails to connect
        the terminals.
    """
    seen = set()
    uf = UnionFind(graph.n)
    cost = 0.0
    for eid in edge_ids:
        if eid in seen:
            raise GraphError(f"edge {eid} listed twice")
        seen.add(eid)
        e = graph.edges[eid]
        if not original and not e.alive:
            raise GraphError(f"edge {eid} is deleted")
        if not uf.union(e.u, e.v):
            raise GraphError(f"edge {eid} closes a cycle")
        cost += e.cost
    terms = [int(t) for t in graph.terminals]
    if original:
        # terminal set may have shrunk by contractions; use the mask as-is
        terms = [v for v in range(graph.n) if graph.terminal_mask[v]]
    for t in terms[1:]:
        if not uf.connected(terms[0], t):
            raise GraphError(f"terminals {terms[0]} and {t} are not connected")
    return cost


def validate_pc_tree(instance: "PCSTP", edge_ids: list[int], vertices: Iterable[int]) -> float:
    """Validate a prize-collecting solution; returns its objective.

    The solution is a tree spanning exactly ``vertices`` (a single
    vertex with no edges is a legal degenerate tree); the objective is
    edge costs plus the prizes of every alive vertex left out.
    """
    vs = set(int(v) for v in vertices)
    if not vs:
        raise GraphError("prize-collecting solution selects no vertex")
    return instance.validate(list(edge_ids), vs)


def validate_arborescence(
    sap: "SAPDigraph", arc_ids: list[int], *, require_all_sinks: bool = True
) -> float:
    """Check ``arc_ids`` form an arborescence rooted at ``sap.root``.

    Every selected arc's head is entered exactly once, the arcs are
    reachable from the root through other selected arcs, and (with
    ``require_all_sinks``) every sink terminal is reached. Returns the
    total arc cost.
    """
    chosen = [int(a) for a in arc_ids]
    if len(set(chosen)) != len(chosen):
        raise GraphError("arc listed twice")
    in_deg: dict[int, int] = {}
    out_of: dict[int, list[int]] = {}
    cost = 0.0
    for a in chosen:
        if not 0 <= a < sap.num_arcs:
            raise GraphError(f"arc {a} out of range")
        head, tail = int(sap.arc_head[a]), int(sap.arc_tail[a])
        if head == sap.root:
            raise GraphError(f"arc {a} enters the root")
        in_deg[head] = in_deg.get(head, 0) + 1
        if in_deg[head] > 1:
            raise GraphError(f"vertex {head} entered twice")
        out_of.setdefault(tail, []).append(a)
        cost += float(sap.arc_cost[a])
    reached = {sap.root}
    frontier = [sap.root]
    n_reached_arcs = 0
    while frontier:
        v = frontier.pop()
        for a in out_of.get(v, ()):  # selected arcs leaving a reached vertex
            h = int(sap.arc_head[a])
            n_reached_arcs += 1
            if h not in reached:
                reached.add(h)
                frontier.append(h)
    if n_reached_arcs != len(chosen):
        raise GraphError("selected arcs contain a part unreachable from the root")
    if require_all_sinks:
        for t in sap.sinks():
            if t not in reached:
                raise GraphError(f"sink terminal {t} not reached from the root")
    return cost
