"""Validation of Steiner tree solutions against a graph."""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.steiner.union_find import UnionFind


def validate_tree(graph: SteinerGraph, edge_ids: list[int], *, original: bool = False) -> float:
    """Check that ``edge_ids`` form a cycle-free subgraph connecting all
    terminals; returns its cost.

    With ``original=True`` the ids refer to the *original* edge list
    (ancestor ids), so deleted edges are permitted — this is how expanded
    solutions from reduced graphs are validated.

    Raises
    ------
    GraphError
        If the edge set contains a cycle, duplicates, or fails to connect
        the terminals.
    """
    seen = set()
    uf = UnionFind(graph.n)
    cost = 0.0
    for eid in edge_ids:
        if eid in seen:
            raise GraphError(f"edge {eid} listed twice")
        seen.add(eid)
        e = graph.edges[eid]
        if not original and not e.alive:
            raise GraphError(f"edge {eid} is deleted")
        if not uf.union(e.u, e.v):
            raise GraphError(f"edge {eid} closes a cycle")
        cost += e.cost
    terms = [int(t) for t in graph.terminals]
    if original:
        # terminal set may have shrunk by contractions; use the mask as-is
        terms = [v for v in range(graph.n) if graph.terminal_mask[v]]
    for t in terms[1:]:
        if not uf.connected(terms[0], t):
            raise GraphError(f"terminals {terms[0]} and {t} are not connected")
    return cost
