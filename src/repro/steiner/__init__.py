"""Steiner tree problem solver — the SCIP-Jack analogue.

Implements the three pillars the paper names for SCIP-Jack:

1. *reduction techniques* (:mod:`repro.steiner.reductions`, incl. the
   extended reductions whose interplay with massive B&B solved bip52u),
2. *heuristics* (:mod:`repro.steiner.heuristics`: shortest-path
   construction, pruning, key-vertex local search), and
3. *graph transformation + branch-and-cut* on the flow-balance directed
   cut formulation (:mod:`repro.steiner.transformations`,
   :mod:`repro.steiner.separators`), with Wong dual ascent for the
   initial LP and reduced-cost fixing (:mod:`repro.steiner.dual_ascent`)
   and vertex branching (delete vertex / add terminal).
"""

from repro.steiner.graph import SteinerGraph
from repro.steiner.solver import SteinerSolver, SteinerSolution
from repro.steiner.instances import (
    bipartite_instance,
    code_cover_instance,
    grid_instance,
    hypercube_instance,
    random_instance,
)

__all__ = [
    "SteinerGraph",
    "SteinerSolver",
    "SteinerSolution",
    "bipartite_instance",
    "code_cover_instance",
    "grid_instance",
    "hypercube_instance",
    "random_instance",
]
