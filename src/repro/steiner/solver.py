"""SCIP-Jack analogue: the customized Steiner tree CIP solver.

Assembles the CIP plugin stack for the flow-balance directed cut
formulation (Formulation 1 of the paper): reduction presolve, dual
ascent for the root bound and arc fixing, the max-flow cut handler,
LP-biased TM heuristics and vertex branching.

UG integration contract
-----------------------
A subproblem travels as *vertex decisions* (``(v, "in"|"out")`` on the
LoadCoordinator-presolved graph) plus *arc fixings* (keyed by stable edge
ids). :meth:`SteinerSolver.prepare` rebuilds the subproblem: copy the
root-presolved graph, apply decisions, delete fully-fixed-out edges,
re-run the reduction pipeline (**layered presolving**), then re-apply
surviving arc fixings. Fixings whose edge was consumed by a reduction
are dropped — this relaxes the subproblem (never cuts off solutions, so
bounds stay valid; siblings cover the search space), mirroring the
engineering trade-offs the UG papers describe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cip.branching import MostFractionalBranching
from repro.cip.model import Model, VarType
from repro.cip.node import Node
from repro.cip.params import ParamSet
from repro.cip.plugins import Heuristic, PropagationResult, PropagationStatus, Propagator
from repro.cip.result import SolveResult, SolveStatus
from repro.cip.solver import CIPSolver
from repro.exceptions import GraphError
from repro.steiner.branching import SteinerVertexBranching
from repro.steiner.dual_ascent import DualAscentResult, dual_ascent
from repro.steiner.graph import SteinerGraph
from repro.steiner.heuristics import (
    key_vertex_local_search,
    local_search,
    mst_construction_heuristic,
    repeated_shortest_path_heuristic,
)
from repro.steiner.reductions import ReductionStats, reduce_graph
from repro.steiner.separators import SteinerCutHandler
from repro.steiner.transformations import SAPDigraph, arborescence_from_arcs, spg_to_sap
from repro.steiner.validation import validate_tree

VertexDecision = tuple[int, str]  # (vertex id, "in" | "out")
ArcFixing = tuple[int, int, float, float]  # (edge id, head vertex, lb, ub)


@dataclass
class SteinerData:
    """Problem payload attached to the CIP model."""

    graph: SteinerGraph
    sap: SAPDigraph
    dual_ascent: DualAscentResult | None = None


@dataclass
class SteinerSolution:
    """Final outcome in original-graph terms."""

    status: SolveStatus
    cost: float
    edges: list[int]  # original edge ids
    dual_bound: float
    nodes_processed: int
    reduction_stats: ReductionStats | None = None
    stats: Any = None


class DualAscentHeuristic(Heuristic):
    """Ascend-and-prune: build a tree inside the dual-ascent support.

    Wong's dual ascent saturates exactly the arcs a cheap arborescence
    would use; running the TM construction restricted to edges with a
    saturated arc yields strong primal solutions essentially for free —
    the paper's §3.1 notes dual ascent is used "to find a feasible
    solution" alongside selecting the initial LP rows.
    """

    name = "steiner_ascend_prune"
    priority = 60

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._ran = False

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        if self._ran:
            return
        self._ran = True
        data: SteinerData = solver.model.data
        da = data.dual_ascent
        if da is None:
            return
        graph, sap = data.graph, data.sap
        override: dict[int, float] = {}
        huge = float(sap.arc_cost.sum()) + 1.0
        for k, eid in enumerate(graph.alive_edges()):
            if not (da.saturated_arcs[2 * k] or da.saturated_arcs[2 * k + 1]):
                override[eid] = huge  # effectively banned from path searches
        res = repeated_shortest_path_heuristic(graph, n_starts=3, seed=self.seed, cost_override=override)
        if res is None:
            return
        edges, cost = local_search(graph, res[0], max_rounds=1)
        _offer_tree_solution(solver, edges, cost)


class SteinerLPHeuristic(Heuristic):
    """TM construction biased by the LP solution, plus local search.

    Edge costs are scaled by ``1 - max(y_a, y_a')`` so the path searches
    gravitate toward the LP support — SCIP-Jack's standard trick for its
    constructive heuristics during branch-and-cut.
    """

    name = "steiner_tm"
    priority = 50

    def __init__(self, seed: int = 0, n_starts: int = 4) -> None:
        self.seed = seed
        self.n_starts = n_starts
        self._calls = 0

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        data: SteinerData = solver.model.data
        graph, sap = data.graph, data.sap
        override: dict[int, float] | None = None
        if x is not None:
            override = {}
            for k, eid in enumerate(graph.alive_edges()):
                lp_weight = max(float(x[2 * k]), float(x[2 * k + 1]))
                cost = graph.edges[eid].cost
                override[eid] = cost * max(1.0 - lp_weight, 0.02)
        self._calls += 1
        res = repeated_shortest_path_heuristic(
            graph, n_starts=self.n_starts, seed=self.seed + self._calls, cost_override=override
        )
        if res is None:
            return
        edges, cost = local_search(graph, res[0], max_rounds=1)
        _offer_tree_solution(solver, edges, cost)


class SteinerMSTHeuristic(Heuristic):
    """KMB construction: MST of the terminal metric closure, then prune.

    Runs LP-biased once an LP solution is available (same cost scaling as
    the TM heuristic); on the root call it runs on the raw costs. TM and
    KMB pick genuinely different trees on incidence-weighted and grid
    instances, which is what makes racing the two portfolios meaningful.
    """

    name = "steiner_mstc"
    priority = 55

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._calls = 0

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        data: SteinerData = solver.model.data
        graph = data.graph
        override: dict[int, float] | None = None
        if x is not None:
            override = {}
            for k, eid in enumerate(graph.alive_edges()):
                lp_weight = max(float(x[2 * k]), float(x[2 * k + 1]))
                cost = graph.edges[eid].cost
                override[eid] = cost * max(1.0 - lp_weight, 0.02)
        self._calls += 1
        res = mst_construction_heuristic(graph, cost_override=override)
        if res is None:
            return
        edges, cost = key_vertex_local_search(
            graph, res[0], max_rounds=1, seed=self.seed + self._calls
        )
        _offer_tree_solution(solver, edges, cost)


class KeyVertexHeuristic(Heuristic):
    """Polish the incumbent with key-vertex elimination/insertion moves.

    A pure improvement heuristic in the Uchoa–Werneck local-search
    tradition: it never constructs a tree itself, it restructures the
    current best one around its branching (key) vertices. Skips work when
    the incumbent has not changed since the last polish.
    """

    name = "steiner_key_vertex"
    priority = 45

    def __init__(self, seed: int = 0, max_rounds: int = 2) -> None:
        self.seed = seed
        self.max_rounds = max_rounds
        self._last_value: float | None = None

    def run(self, solver: CIPSolver, node: Node, x: np.ndarray | None) -> None:
        inc = solver.incumbent
        if inc is None or inc.x is None:
            return
        if self._last_value is not None and inc.value >= self._last_value - solver.tol.eps:
            return
        self._last_value = inc.value
        data: SteinerData = solver.model.data
        graph, sap = data.graph, data.sap
        edges = sorted({int(sap.arc_edge[a]) for a in np.flatnonzero(inc.x > 0.5)})
        if not edges:
            return
        polished, cost = key_vertex_local_search(
            graph, edges, max_rounds=self.max_rounds, seed=self.seed
        )
        if _offer_tree_solution(solver, polished, cost):
            self._last_value = cost + solver.model.obj_offset


def _offer_tree_solution(solver: CIPSolver, edges: list[int], cost: float) -> bool:
    """Convert a reduced-graph edge tree into an arc vector and offer it."""
    data: SteinerData = solver.model.data
    graph, sap = data.graph, data.sap
    value = cost + solver.model.obj_offset
    if solver.incumbent is not None and value >= solver.incumbent.value - solver.tol.eps:
        return False
    x = _tree_to_arc_vector(graph, sap, edges)
    if x is None:
        return False
    orig_edges, orig_cost = graph.expand_solution(edges)
    accepted = solver.add_solution(value, x, data=sorted(set(orig_edges)), check=True)
    if accepted:
        solver.stats.heuristic_solutions += 1
    return accepted


def _tree_to_arc_vector(graph: SteinerGraph, sap: SAPDigraph, edges: list[int]) -> np.ndarray | None:
    """Orient a tree (edge ids) away from the SAP root into an arc vector."""
    arc_of = {}
    for a in range(sap.num_arcs):
        arc_of[(int(sap.arc_tail[a]), int(sap.arc_head[a]), int(sap.arc_edge[a]))] = a
    adjacency: dict[int, list[tuple[int, int]]] = {}
    for eid in edges:
        e = graph.edges[eid]
        adjacency.setdefault(e.u, []).append((e.v, eid))
        adjacency.setdefault(e.v, []).append((e.u, eid))
    x = np.zeros(sap.num_arcs)
    visited = {sap.root}
    stack = [sap.root]
    used = 0
    while stack:
        v = stack.pop()
        for w, eid in adjacency.get(v, ()):
            if w in visited:
                continue
            a = arc_of.get((v, w, eid))
            if a is None:
                return None
            x[a] = 1.0
            visited.add(w)
            stack.append(w)
            used += 1
    if used != len(edges):
        return None  # tree not connected to the root component
    return x


class DualAscentFixingPropagator(Propagator):
    """Reduced-cost arc fixing from the root dual ascent.

    An arc whose fixing bound exceeds the cutoff cannot be in an improving
    solution — fix it to zero. This is the "reduced cost based domain
    propagation" of the paper's §3.1 (it needs a strong primal bound to
    bite, which is why the heuristics matter so much).
    """

    name = "dual_ascent_fixing"
    priority = 40

    def propagate(self, solver: CIPSolver, node: Node) -> PropagationResult:
        data: SteinerData = solver.model.data
        da = data.dual_ascent
        if da is None or solver.incumbent is None:
            return PropagationResult()
        cutoff = solver.cutoff_bound - solver.model.obj_offset
        if not math.isfinite(cutoff):
            return PropagationResult()
        sap = data.sap
        tightened = 0
        for a in range(sap.num_arcs):
            lo, hi = solver.local_bounds(a)
            if hi <= 0.0 or lo >= 1.0:
                continue
            bound = da.arc_fixing_bound(a, int(sap.arc_tail[a]), int(sap.arc_head[a]))
            if bound > cutoff + 1e-9 and solver.tighten_ub(a, 0.0):
                tightened += 1
        status = PropagationStatus.REDUCED if tightened else PropagationStatus.UNCHANGED
        return PropagationResult(status, tightened)


class SteinerSolver:
    """High-level SPG solver: presolve + branch-and-cut on the SAP."""

    def __init__(
        self,
        graph: SteinerGraph,
        params: ParamSet | None = None,
        seed: int = 0,
    ) -> None:
        self.original = graph.copy()
        self.params = params or ParamSet(heur_frequency=5)
        self.seed = seed
        self.reduction_stats: ReductionStats | None = None
        self.cip: CIPSolver | None = None
        self._graph: SteinerGraph | None = None
        self._trivial_solution: tuple[list[int], float] | None = None

    # -- subproblem construction (LC presolve & layered presolve) -----------

    def prepare(
        self,
        decisions: tuple[VertexDecision, ...] = (),
        arc_fixings: tuple[ArcFixing, ...] = (),
        cutoff_value: float | None = None,
        use_extended: bool | None = None,
        reduce: bool = True,
        dual_bound_estimate: float = -math.inf,
    ) -> None:
        """Build the (sub)problem: copy, apply decisions, re-presolve, model."""
        graph = self.original.copy()
        for v, action in decisions:
            if not graph.vertex_alive[v]:
                raise GraphError(f"decision on dead vertex {v}")
            if action == "out":
                graph.delete_vertex(v)
            elif action == "in":
                graph.set_terminal(v, True)
            else:
                raise GraphError(f"unknown decision {action!r}")
        # fully-out-fixed edges can be removed before re-reduction
        zero_edges: dict[int, int] = {}
        live_fixings: list[ArcFixing] = []
        for eid, head, lo, hi in arc_fixings:
            if hi <= 0.0:
                zero_edges[eid] = zero_edges.get(eid, 0) + 1
            live_fixings.append((eid, head, lo, hi))
        for eid, count in zero_edges.items():
            if count >= 2 and eid < len(graph.edges) and graph.edges[eid].alive:
                graph.delete_edge(eid)
        if reduce and self.params.presolve:
            extended = (
                use_extended
                if use_extended is not None
                else bool(self.params.get_extra("steiner/extended_reductions", False))
            )
            self.reduction_stats = reduce_graph(
                graph,
                use_extended=extended,
                seed=self.seed,
            )
        self._graph = graph

        if graph.num_terminals <= 1:
            # solved by presolve alone
            self._trivial_solution = (sorted(set(graph.fixed_edges)), graph.fixed_cost)
            self.cip = None
            return
        self._trivial_solution = None
        self.cip = self._build_cip(graph, live_fixings, dual_bound_estimate)
        if cutoff_value is not None:
            self.cip.set_cutoff_value(cutoff_value)

    def _build_cip(
        self,
        graph: SteinerGraph,
        arc_fixings: list[ArcFixing],
        dual_bound_estimate: float = -math.inf,
    ) -> CIPSolver:
        sap = spg_to_sap(graph)
        da = dual_ascent(sap)
        model = Model("steiner", data=SteinerData(graph, sap, da))
        model.obj_offset = graph.fixed_cost
        model.objective_integral = all(
            float(graph.edges[e].cost).is_integer() for e in graph.alive_edges()
        ) and float(graph.fixed_cost).is_integer()
        for a in range(sap.num_arcs):
            model.add_variable(f"y{a}", VarType.BINARY, obj=float(sap.arc_cost[a]))
        # re-apply arc fixings that survived re-presolve
        arc_lookup = {
            (int(sap.arc_edge[a]), int(sap.arc_head[a])): a for a in range(sap.num_arcs)
        }
        for eid, head, lo, hi in arc_fixings:
            a = arc_lookup.get((eid, head))
            if a is not None:
                v = model.variables[a]
                v.lb, v.ub = max(v.lb, lo), min(v.ub, hi)
                if v.lb > v.ub:
                    v.ub = v.lb  # contradictory fixings: child is infeasible via rows
        # degree rows
        for t in sap.sinks():
            model.add_constraint({a: 1.0 for a in sap.in_arcs[t]}, lhs=1.0, rhs=1.0, name=f"deg_t{t}")
        if sap.in_arcs[sap.root]:
            model.add_constraint({a: 1.0 for a in sap.in_arcs[sap.root]}, lhs=0.0, rhs=0.0, name="deg_root")
        terminal_set = set(sap.terminals)
        flow_balance_budget = 6000
        for v in range(sap.n):
            if v in terminal_set or not graph.vertex_alive[v]:
                continue
            in_a, out_a = sap.in_arcs[v], sap.out_arcs[v]
            if not in_a:
                continue
            model.add_constraint({a: 1.0 for a in in_a}, rhs=1.0, name=f"deg_v{v}")
            # flow balance (5): y(in) <= y(out)
            coefs = {a: -1.0 for a in in_a}
            for a in out_a:
                coefs[a] = coefs.get(a, 0.0) + 1.0
            model.add_constraint(coefs, lhs=0.0, name=f"fb_{v}")
            # strengthening (6): y(in) >= y_a for each outgoing arc
            if model.num_constraints < flow_balance_budget:
                for a in out_a:
                    c6 = {b: 1.0 for b in in_a}
                    c6[a] = c6.get(a, 0.0) - 1.0
                    model.add_constraint(c6, lhs=0.0, name=f"fb6_{v}_{a}")

        params = self.params.with_changes(presolve=False)  # graph presolve already done
        cip = CIPSolver(model, params)
        cip.include_constraint_handler(SteinerCutHandler(sap))
        cip.include_propagator(DualAscentFixingPropagator())
        cip.include_heuristic(DualAscentHeuristic(seed=self.seed))
        cip.include_heuristic(SteinerMSTHeuristic(seed=self.seed))
        cip.include_heuristic(SteinerLPHeuristic(seed=self.seed))
        cip.include_heuristic(KeyVertexHeuristic(seed=self.seed))
        cip.include_branching_rule(SteinerVertexBranching(sap))
        cip.include_branching_rule(MostFractionalBranching())
        cip.setup(root_estimate=max(da.lower_bound + model.obj_offset, dual_bound_estimate))
        return cip

    # -- solving ----------------------------------------------------------------

    def solve(self, node_limit: int | None = None, time_limit: float | None = None) -> SteinerSolution:
        """Presolve (if not prepared) and run branch-and-cut to completion."""
        if self.cip is None and self._trivial_solution is None:
            self.prepare()
        if self._trivial_solution is not None:
            edges, cost = self._trivial_solution
            validate_tree(self.original, edges, original=True)
            return SteinerSolution(SolveStatus.OPTIMAL, cost, edges, cost, 0, self.reduction_stats)
        assert self.cip is not None
        result = self.cip.solve(node_limit=node_limit, time_limit=time_limit)
        return self._to_solution(result)

    def _to_solution(self, result: SolveResult) -> SteinerSolution:
        edges: list[int] = []
        cost = math.inf
        if result.best_solution is not None:
            cost = result.best_solution.value
            edges = self.extract_original_edges()
        return SteinerSolution(
            result.status,
            cost,
            edges,
            result.dual_bound,
            result.nodes_processed,
            self.reduction_stats,
            result.stats,
        )

    def extract_original_edges(self) -> list[int]:
        """Original-graph edge ids of the current incumbent."""
        assert self.cip is not None
        inc = self.cip.incumbent
        if inc is None:
            return []
        if inc.data is not None:
            return list(inc.data)
        assert inc.x is not None
        data: SteinerData = self.cip.model.data
        arcs = arborescence_from_arcs(data.sap, inc.x)
        edge_ids = [int(data.sap.arc_edge[a]) for a in arcs]
        orig, _cost = data.graph.expand_solution(edge_ids)
        return sorted(set(orig))

    # -- UG-facing helpers ---------------------------------------------------

    def node_to_subproblem(self, node: Node) -> tuple[tuple[VertexDecision, ...], tuple[ArcFixing, ...]]:
        """Serialize an extracted CIP node into solver-independent form."""
        assert self.cip is not None
        data: SteinerData = self.cip.model.data
        sap = data.sap
        decisions = tuple(node.local_data.get("vertex_decisions", ()))
        decided_out = {v for v, d in decisions if d == "out"}
        fixings: list[ArcFixing] = []
        for a, (lo, hi) in node.bound_changes.items():
            if a >= sap.num_arcs:
                continue
            tail, head = int(sap.arc_tail[a]), int(sap.arc_head[a])
            if tail in decided_out or head in decided_out:
                continue  # subsumed by the vertex deletion
            if lo > 0.0 or hi < 1.0:
                fixings.append((int(sap.arc_edge[a]), head, float(lo), float(hi)))
        return decisions, tuple(fixings)

    @property
    def graph(self) -> SteinerGraph | None:
        return self._graph
