"""Seeded STP generator families for the instance zoo.

Six deterministic families spanning the shapes the paper's computational
study draws on (SteinLib-style test sets), following the FrontierCO STP
toolkit's generator interface (SNIPPETS.md snippet 2):

* ``hypercube`` — ``hc``-style d-cubes (dimensions 4-10) with a random
  terminal subset; the reduction-resistant PUC flavour.
* ``orlib_random`` — OR-Library B/C/D-class random sparse graphs with
  small integer costs.
* ``orlib_euclidean`` — random points in the unit square joined to their
  nearest neighbours with Euclidean (float) costs; exercises the
  non-integer cost path of the ``.stp`` writer.
* ``pace`` — PACE-2018-shaped: a random tree plus a few short chords,
  i.e. sparse and low-treewidth-ish.
* ``grid_holes`` — geometric grid with rectangular holes carved out
  (holes that would disconnect the grid are skipped deterministically).
* ``incidence`` — incidence-weighted: edge costs derive from vertex
  weights (``w_u + w_v``), so cheap edges cluster around light vertices.

Every builder is a pure function of its arguments — calling it twice
with the same seed yields a byte-identical ``.stp`` serialization, which
the property suite asserts.
"""

from __future__ import annotations

import math
from collections import deque

from repro.exceptions import GraphError
from repro.steiner.graph import SteinerGraph
from repro.utils import make_rng


def _pick_terminals(g: SteinerGraph, rng, count: int) -> None:
    alive = [int(v) for v in g.alive_vertices()]
    count = max(2, min(count, len(alive)))
    for t in rng.choice(len(alive), size=count, replace=False):
        g.set_terminal(alive[int(t)])


def _connected(g: SteinerGraph) -> bool:
    alive = [int(v) for v in g.alive_vertices()]
    if not alive:
        return False
    seen = {alive[0]}
    queue = deque([alive[0]])
    while queue:
        v = queue.popleft()
        for w, _eid, _c in g.neighbors(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return len(seen) == len(alive)


def hypercube(
    dim: int = 6,
    terminal_fraction: float = 0.5,
    perturbed: bool = True,
    parity_terminals: bool = False,
    seed: int = 0,
) -> SteinerGraph:
    """``hc{dim}``-style d-dimensional hypercube with random terminals.

    ``parity_terminals`` switches to the published PUC construction
    (terminals = even-parity words, so every non-terminal neighbours only
    terminals), the variant that defeats degree/SD reductions — used by
    the portfolio-racing bench precisely because presolve removes almost
    nothing from it.
    """
    if not 2 <= dim <= 12:
        raise GraphError("hypercube dimension must be in [2, 12]")
    rng = make_rng(seed)
    n = 1 << dim
    g = SteinerGraph.create(n)
    for v in range(n):
        for b in range(dim):
            w = v ^ (1 << b)
            if v < w:
                cost = float(rng.integers(1, 11)) if perturbed else 1.0
                g.add_edge(v, w, cost)
    if parity_terminals:
        for v in range(n):
            if bin(v).count("1") % 2 == 0:
                g.set_terminal(v)
    else:
        _pick_terminals(g, rng, int(round(n * terminal_fraction)))
    return g


def orlib_random(n: int = 40, m: int = 90, n_terminals: int = 8, max_cost: int = 10, seed: int = 0) -> SteinerGraph:
    """OR-Library B/C/D-class shape: random sparse graph, integer costs."""
    if m < n - 1:
        raise GraphError("need m >= n - 1 edges for connectivity")
    rng = make_rng(seed)
    g = SteinerGraph.create(n)
    seen: set[tuple[int, int]] = set()
    order = rng.permutation(n)
    for i in range(n - 1):  # spanning tree backbone keeps the graph connected
        u, v = int(order[i]), int(order[i + 1])
        seen.add((min(u, v), max(u, v)))
    while len(seen) < m:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u != v:
            seen.add((min(u, v), max(u, v)))
    for u, v in sorted(seen):
        g.add_edge(u, v, float(rng.integers(1, max_cost + 1)))
    _pick_terminals(g, rng, n_terminals)
    return g


def orlib_euclidean(
    n: int = 30, n_terminals: int = 6, k_nearest: int = 4, rounded: bool = False, seed: int = 0
) -> SteinerGraph:
    """E-class shape: uniform random points, k-nearest edges, Euclidean costs.

    ``rounded`` snaps each cost to ``max(1, round(10 * dist))`` — the
    OR-Library convention of integer-rounded Euclidean distances, which
    introduces the cost ties that make these instances harder to reduce.
    """
    rng = make_rng(seed)
    pts = rng.random((n, 2))
    g = SteinerGraph.create(n)
    seen: set[tuple[int, int]] = set()

    def dist(u: int, v: int) -> float:
        d = math.hypot(pts[u, 0] - pts[v, 0], pts[u, 1] - pts[v, 1])
        return float(max(1, round(10 * d))) if rounded else d

    for u in range(n):
        near = sorted((v for v in range(n) if v != u), key=lambda v: dist(u, v))
        for v in near[:k_nearest]:
            seen.add((min(u, v), max(u, v)))
    # nearest-neighbour graphs can fall apart into clusters: stitch the
    # components along the x-sorted order so the instance stays connected
    by_x = sorted(range(n), key=lambda v: (float(pts[v, 0]), float(pts[v, 1])))
    for a, b in zip(by_x, by_x[1:]):
        seen.add((min(a, b), max(a, b)))
    for u, v in sorted(seen):
        g.add_edge(u, v, dist(u, v))
    _pick_terminals(g, rng, n_terminals)
    return g


def pace(n: int = 40, n_chords: int = 10, n_terminals: int = 8, max_cost: int = 20, seed: int = 0) -> SteinerGraph:
    """PACE-2018-shaped: a random tree plus short chords (low treewidth)."""
    rng = make_rng(seed)
    g = SteinerGraph.create(n)
    parent = [0] * n
    for v in range(1, n):  # random recursive tree
        parent[v] = int(rng.integers(0, v))
        g.add_edge(v, parent[v], float(rng.integers(1, max_cost + 1)))
    seen: set[tuple[int, int]] = set()
    for _ in range(n_chords):
        v = int(rng.integers(1, n))
        # a chord to a near ancestor keeps the treewidth small
        w = v
        for _hop in range(int(rng.integers(2, 5))):
            if w == 0:
                break
            w = parent[w]
        if w != v and (min(v, w), max(v, w)) not in seen and g.find_edge(v, w) is None:
            seen.add((min(v, w), max(v, w)))
            g.add_edge(v, w, float(rng.integers(1, max_cost + 1)))
    _pick_terminals(g, rng, n_terminals)
    return g


def grid_holes(
    rows: int = 8,
    cols: int = 8,
    n_holes: int = 2,
    hole_size: int = 2,
    n_terminals: int = 6,
    perturbed: bool = True,
    seed: int = 0,
) -> SteinerGraph:
    """Geometric grid with rectangular holes carved out of the interior."""
    rng = make_rng(seed)
    n = rows * cols
    g = SteinerGraph.create(n)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, float(rng.integers(1, 11)) if perturbed else 1.0)
            if r + 1 < rows:
                g.add_edge(v, v + cols, float(rng.integers(1, 11)) if perturbed else 1.0)
    for _ in range(n_holes):
        hr = int(rng.integers(0, max(rows - hole_size, 1)))
        hc = int(rng.integers(0, max(cols - hole_size, 1)))
        hole = [
            r * cols + c
            for r in range(hr, min(hr + hole_size, rows))
            for c in range(hc, min(hc + hole_size, cols))
        ]
        hole = [v for v in hole if g.vertex_alive[v]]
        if len(hole) >= g.num_alive_vertices - 2:
            continue
        trial = g.copy()
        for v in hole:
            trial.delete_vertex(v)
        if _connected(trial):  # a hole that would split the grid is skipped
            for v in hole:
                g.delete_vertex(v)
    _pick_terminals(g, rng, n_terminals)
    return g


def incidence(
    n: int = 30, extra_edges: int = 25, n_terminals: int = 6, max_weight: int = 9, seed: int = 0
) -> SteinerGraph:
    """Incidence-weighted: cost(u, v) = w_u + w_v over a random graph.

    ``max_weight`` caps the vertex weights; 1 yields near-unit costs,
    whose ties resist bound-based reductions (racing-bench material).
    """
    rng = make_rng(seed)
    weights = rng.integers(1, max_weight + 1, size=n)
    g = SteinerGraph.create(n)
    seen: set[tuple[int, int]] = set()
    order = rng.permutation(n)
    for i in range(n - 1):
        u, v = int(order[i]), int(order[i + 1])
        seen.add((min(u, v), max(u, v)))
    target = min(len(seen) + extra_edges, n * (n - 1) // 2)
    while len(seen) < target:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u != v:
            seen.add((min(u, v), max(u, v)))
    for u, v in sorted(seen):
        g.add_edge(u, v, float(weights[u] + weights[v]))
    _pick_terminals(g, rng, n_terminals)
    return g


def stp_canonical(g: SteinerGraph) -> tuple:
    """Canonical form of the *alive* part of a graph, for round-trip equality.

    Vertex ids are compacted in sorted-alive order — exactly the
    compaction :func:`repro.steiner.stp_io.write_stp` applies — so a
    generated graph compares equal to its parsed serialization.
    """
    alive = [int(v) for v in g.alive_vertices()]
    remap = {v: i for i, v in enumerate(alive)}
    edges = sorted(
        (min(remap[g.edges[e].u], remap[g.edges[e].v]),
         max(remap[g.edges[e].u], remap[g.edges[e].v]),
         float(g.edges[e].cost))
        for e in g.alive_edges()
    )
    terminals = tuple(sorted(remap[int(t)] for t in g.terminals))
    return (len(alive), tuple(edges), terminals)
