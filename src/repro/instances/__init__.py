"""``repro.instances`` — the seeded instance-generator zoo.

The paper's computational study lives on instance diversity (SteinLib
families for ug[SCIP-Jack, *], CBLIB for ug[SCIP-SDP, *]). This package
provides deterministic, seeded generator *families* for both problem
classes, each returning parsed in-memory instances that round-trip
through the existing ``.stp``/CBF writers and parsers:

>>> from repro.instances import generate_family
>>> batch = generate_family("hypercube", seed=42)
>>> batch[0].name, batch[0].kind
('hypercube_dim4_s42', 'stp')

Every family doubles as a property-testing zoo (structural invariants,
byte-identical regeneration, write->parse round trips) and widens the
differential-oracle and chaos-sweep surface. The CLI mirror of the
FrontierCO toolkit lives in ``python -m repro.instances``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ModelError
from repro.instances import misdp as _misdp
from repro.instances import stp as _stp
from repro.instances.stp import stp_canonical
from repro.sdp.cbf import read_cbf, write_cbf
from repro.steiner.stp_io import parse_stp, write_stp

__all__ = [
    "FAMILIES",
    "Family",
    "GeneratedInstance",
    "generate_family",
    "instance_text",
    "stp_canonical",
    "tiny_zoo",
    "verify_roundtrip",
]


@dataclass(frozen=True)
class Family:
    """One generator family: a builder plus its default and tiny configs.

    ``configs`` drive the CLI and the property suite; ``tiny_configs``
    are brute-force-able sizes for the differential sweep.
    """

    name: str
    kind: str  # "stp" | "misdp"
    description: str
    build: Callable[..., Any]
    configs: tuple[dict[str, Any], ...]
    tiny_configs: tuple[dict[str, Any], ...] = ()

    def label(self, config: dict[str, Any], seed: int) -> str:
        parts = "".join(f"_{k[:3]}{v}" for k, v in sorted(config.items()) if not isinstance(v, bool))
        return f"{self.name}{parts}_s{seed}"


@dataclass(frozen=True)
class GeneratedInstance:
    """A built instance with its provenance (family, config, seed)."""

    name: str
    family: str
    kind: str
    seed: int
    config: dict[str, Any] = field(default_factory=dict)
    instance: Any = None


FAMILIES: dict[str, Family] = {
    f.name: f
    for f in (
        Family(
            "hypercube",
            "stp",
            "hc-style d-cubes (dims 4-10), random terminals",
            _stp.hypercube,
            tuple({"dim": d} for d in range(4, 11)),
            ({"dim": 3, "terminal_fraction": 0.4},),
        ),
        Family(
            "orlib_random",
            "stp",
            "OR-Library B/C/D-class random sparse graphs, integer costs",
            _stp.orlib_random,
            (
                {"n": 30, "m": 60, "n_terminals": 6},
                {"n": 50, "m": 110, "n_terminals": 9},
                {"n": 75, "m": 180, "n_terminals": 12},
            ),
            ({"n": 8, "m": 12, "n_terminals": 3},),
        ),
        Family(
            "orlib_euclidean",
            "stp",
            "random points, k-nearest edges, Euclidean float costs",
            _stp.orlib_euclidean,
            ({"n": 25, "n_terminals": 5}, {"n": 40, "n_terminals": 8}),
            ({"n": 8, "n_terminals": 3, "k_nearest": 3},),
        ),
        Family(
            "pace",
            "stp",
            "PACE-2018-shaped: random tree plus short chords (low treewidth)",
            _stp.pace,
            ({"n": 35, "n_chords": 8, "n_terminals": 7}, {"n": 60, "n_chords": 15, "n_terminals": 10}),
            ({"n": 9, "n_chords": 3, "n_terminals": 3},),
        ),
        Family(
            "grid_holes",
            "stp",
            "geometric grid with rectangular holes carved out",
            _stp.grid_holes,
            ({"rows": 7, "cols": 7, "n_holes": 2}, {"rows": 9, "cols": 9, "n_holes": 3}),
            ({"rows": 3, "cols": 4, "n_holes": 1, "n_terminals": 3},),
        ),
        Family(
            "incidence",
            "stp",
            "incidence-weighted: cost(u,v) = w_u + w_v over a random graph",
            _stp.incidence,
            ({"n": 25, "extra_edges": 20, "n_terminals": 5}, {"n": 45, "extra_edges": 40, "n_terminals": 8}),
            ({"n": 8, "extra_edges": 5, "n_terminals": 3},),
        ),
        Family(
            "misdp_random",
            "misdp",
            "random SDP relaxations with bounded integer blocks (CBF-shaped)",
            _misdp.misdp_random,
            (
                {"n_vars": 4, "block_size": 3},
                {"n_vars": 5, "block_size": 4, "n_rows": 3},
            ),
            ({"n_vars": 3, "block_size": 2, "n_rows": 1, "ub": 1},),
        ),
        Family(
            "misdp_diag",
            "misdp",
            "diagonally-dominant blocks + cardinality row (LP-friendly)",
            _misdp.misdp_diag,
            ({"n_vars": 4, "block_size": 3}, {"n_vars": 6, "block_size": 3}),
            ({"n_vars": 3, "block_size": 2},),
        ),
    )
}


def generate_family(
    family: str,
    seed: int = 0,
    instances_per_config: int = 1,
    configs: tuple[dict[str, Any], ...] | None = None,
) -> list[GeneratedInstance]:
    """Build ``instances_per_config`` seeded instances for every config.

    Instance ``i`` of a config uses ``seed + i``, mirroring the
    FrontierCO generator's ``--instances_per_config``/``--seed`` knobs;
    the whole batch is a pure function of ``(family, seed, configs)``.
    """
    fam = FAMILIES.get(family)
    if fam is None:
        raise ModelError(f"unknown instance family {family!r}; choose from {sorted(FAMILIES)}")
    out: list[GeneratedInstance] = []
    for config in configs if configs is not None else fam.configs:
        for i in range(instances_per_config):
            s = seed + i
            out.append(
                GeneratedInstance(
                    name=fam.label(config, s),
                    family=fam.name,
                    kind=fam.kind,
                    seed=s,
                    config=dict(config),
                    instance=fam.build(seed=s, **config),
                )
            )
    return out


def instance_text(gi: GeneratedInstance) -> tuple[str, str]:
    """Serialize a generated instance; returns ``(file_suffix, text)``."""
    if gi.kind == "stp":
        return ".stp", write_stp(gi.instance, name=gi.name)
    return ".cbf", write_cbf(gi.instance)


def verify_roundtrip(gi: GeneratedInstance) -> None:
    """Assert the write -> parse -> write round trip is lossless.

    STP: the parsed graph must equal the generated one in canonical
    (compacted) form. CBF: one round trip must be a serialization fixed
    point. Raises ``AssertionError`` with a named mismatch otherwise.
    """
    _suffix, text = instance_text(gi)
    if gi.kind == "stp":
        parsed = parse_stp(text)
        if stp_canonical(parsed) != stp_canonical(gi.instance):
            raise AssertionError(f"{gi.name}: .stp round trip changed the instance")
        if write_stp(parsed, name=gi.name) != text:
            raise AssertionError(f"{gi.name}: .stp re-serialization is not byte-identical")
    else:
        reparsed = read_cbf(text, name=gi.name)
        if write_cbf(reparsed) != text:
            raise AssertionError(f"{gi.name}: CBF round trip is not a serialization fixed point")


def tiny_zoo(seeds: tuple[int, ...] = (0, 1), kind: str | None = None) -> list[GeneratedInstance]:
    """Brute-force-able instances across every family (differential sweep)."""
    out: list[GeneratedInstance] = []
    for fam in FAMILIES.values():
        if kind is not None and fam.kind != kind:
            continue
        for seed in seeds:
            out.extend(generate_family(fam.name, seed=seed, configs=fam.tiny_configs))
    return out
