"""Seeded CBF-shaped MISDP generators for the instance zoo.

Two families of random mixed integer semidefinite programs in the
paper's dual (sup) form, feasible *by construction*: every instance is
built around a deterministic integer anchor point ``y0`` at which each
PSD block evaluates to ``alpha * I`` (strictly positive definite) and
every linear row holds with slack. The anchor is re-derivable from the
seed via :func:`anchor_point`, which the property suite uses to assert
feasibility without solving.

* ``misdp_random`` — dense random symmetric blocks with bounded integer
  variables and a few calibrated scalar rows; the "random SDP relaxation
  with integer blocks" shape of the issue.
* ``misdp_diag`` — diagonally-dominant blocks whose SDP relaxation is
  tight-ish, plus a cardinality row; LP-friendlier, mirroring the
  CLS-vs-Mk-P spread of the paper's Figure 1 portfolio discussion.

All numeric data are small integers (as floats), so the CBF text
round-trips through ``repr`` without precision noise.
"""

from __future__ import annotations

import numpy as np

from repro.sdp.model import MISDP
from repro.utils import make_rng


def anchor_point(n_vars: int, ub: int, seed: int) -> np.ndarray:
    """The feasible integer anchor both families are calibrated around.

    Must stay the *first* draw of the builders' RNG streams so it can be
    reconstructed independently of the rest of the instance.
    """
    rng = make_rng(seed)
    return rng.integers(0, ub + 1, size=n_vars).astype(float)


def _symmetric_int_matrix(rng, size: int, lo: int = -2, hi: int = 3) -> np.ndarray:
    raw = rng.integers(lo, hi, size=(size, size)).astype(float)
    return raw + raw.T  # symmetric with integral entries


def misdp_random(
    n_vars: int = 4,
    block_size: int = 3,
    n_blocks: int = 1,
    n_rows: int = 2,
    ub: int = 2,
    seed: int = 0,
) -> MISDP:
    """Random SDP relaxation with integer blocks, anchored feasible."""
    rng = make_rng(seed)
    y0 = rng.integers(0, ub + 1, size=n_vars).astype(float)  # == anchor_point(seed)
    b = rng.integers(-5, 6, size=n_vars).astype(float)
    misdp = MISDP(
        f"misdp_random_{n_vars}v_{block_size}b_s{seed}",
        b,
        np.zeros(n_vars),
        np.full(n_vars, float(ub)),
        integers=list(range(n_vars)),
    )
    for k in range(n_blocks):
        coefs = {j: _symmetric_int_matrix(rng, block_size) for j in range(n_vars)}
        alpha = float(rng.integers(2, 6))
        C = alpha * np.eye(block_size)
        for j, A in coefs.items():
            C += A * y0[j]  # Z(y0) = C - sum A_j y0_j = alpha * I > 0
        misdp.add_block(C, coefs, f"rand{k}")
    for r in range(n_rows):
        support = rng.choice(n_vars, size=min(n_vars, 2 + r % 2), replace=False)
        coefs_r = {int(j): float(rng.integers(-3, 4)) for j in support}
        act0 = sum(c * y0[j] for j, c in coefs_r.items())
        slack = float(rng.integers(1, 4))
        if r % 2 == 0:
            misdp.add_linear_row(coefs_r, rhs=act0 + slack, name=f"r{r}")
        else:
            misdp.add_linear_row(coefs_r, lhs=act0 - slack, name=f"r{r}")
    return misdp


def misdp_diag(
    n_vars: int = 4,
    block_size: int = 3,
    ub: int = 1,
    seed: int = 0,
) -> MISDP:
    """Diagonally-dominant blocks + a cardinality row (binary by default)."""
    rng = make_rng(seed)
    y0 = rng.integers(0, ub + 1, size=n_vars).astype(float)  # == anchor_point(seed)
    b = rng.integers(-4, 5, size=n_vars).astype(float)
    misdp = MISDP(
        f"misdp_diag_{n_vars}v_{block_size}b_s{seed}",
        b,
        np.zeros(n_vars),
        np.full(n_vars, float(ub)),
        integers=list(range(n_vars)),
    )
    coefs = {}
    for j in range(n_vars):
        A = np.zeros((block_size, block_size))
        d = int(rng.integers(0, block_size))
        A[d, d] = float(rng.integers(1, 4))
        off = (d + 1) % block_size
        A[d, off] = A[off, d] = 1.0
        coefs[j] = A
    alpha = float(n_vars * 4 + 2)  # dominates any |sum A_j y_j| on the grid
    C = alpha * np.eye(block_size)
    for j, A in coefs.items():
        C += A * y0[j]
    misdp.add_block(C, coefs, "diag")
    budget = float(max(1, int(np.sum(y0)) + 1))
    misdp.add_linear_row({j: 1.0 for j in range(n_vars)}, rhs=budget, name="card")
    return misdp
