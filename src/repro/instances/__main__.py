"""CLI for the instance zoo, mirroring the FrontierCO STP toolkit.

Examples::

    python -m repro.instances list
    python -m repro.instances generate --family hypercube --seed 42
    python -m repro.instances generate --family hypercube --dimensions 4 5 6 \
        --instances_per_config 2 --seed 42 --output_dir valid_instances
    python -m repro.instances generate --family misdp_random --seed 7

``generate`` writes ``.stp``/``.cbf`` files into ``--output_dir``
(default ``generated_instances/``), verifies each one round-trips
through the bundled parser, and is deterministic: the same family, seed
and configs always produce byte-identical files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ModelError
from repro.instances import FAMILIES, generate_family, instance_text, verify_roundtrip


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.instances", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the generator families")
    gen = sub.add_parser("generate", help="generate seeded instances for one family")
    gen.add_argument("--family", required=True, choices=sorted(FAMILIES), help="generator family")
    gen.add_argument("--seed", type=int, default=0, help="base seed (instance i uses seed+i)")
    gen.add_argument(
        "--instances_per_config", type=int, default=1, help="instances per configuration"
    )
    gen.add_argument(
        "--output_dir", type=Path, default=Path("generated_instances"), help="output directory"
    )
    gen.add_argument(
        "--dimensions",
        type=int,
        nargs="+",
        default=None,
        help="hypercube only: override the dimension list (e.g. --dimensions 6 7 8)",
    )
    gen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the write->parse round-trip verification of each file",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in FAMILIES)
        for name in sorted(FAMILIES):
            fam = FAMILIES[name]
            print(f"{name:<{width}}  [{fam.kind}]  {fam.description}  ({len(fam.configs)} configs)")
        return 0

    configs = None
    if args.dimensions is not None:
        if args.family != "hypercube":
            print("--dimensions only applies to --family hypercube", file=sys.stderr)
            return 2
        configs = tuple({"dim": d} for d in args.dimensions)
    try:
        batch = generate_family(
            args.family, seed=args.seed, instances_per_config=args.instances_per_config, configs=configs
        )
    except ModelError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    args.output_dir.mkdir(parents=True, exist_ok=True)
    for gi in batch:
        suffix, text = instance_text(gi)
        if not args.no_verify:
            verify_roundtrip(gi)
        path = args.output_dir / f"{gi.name}{suffix}"
        path.write_text(text)
        print(f"wrote {path}")
    print(f"{len(batch)} instance(s) in {args.output_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
