"""Metrics registry — counters, gauges, timers and derived timelines.

The registry is the single mutation pathway for the run statistics the
paper's tables report.  Components increment named metrics instead of
hand-maintaining fields; a registry constructed with a *sink* (the run's
:class:`~repro.ug.statistics.UGStatistics`) write-throughs every update
to the matching attribute, so the statistics object is always a live,
consistent snapshot — checkpoints serialize it mid-run, tests read it
whenever they like, and no ``+= 1`` is ever scattered through protocol
code again.

Timelines are *derived*, not collected: :func:`busy_timelines` folds the
tracer's ``work`` events (each carrying a start time and a duration)
into per-rank busy interval lists, from which :func:`timeline_idle_ratios`
computes the paper's per-rank idle shares.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceEvent, Tracer


class Counter:
    """A monotonically increasing integer/float metric."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: float = 0
        self._registry = registry

    def inc(self, n: float = 1) -> float:
        with self._registry._lock:
            self.value += n
            self._registry._mirror(self.name, self.value)
        return self.value


class Gauge:
    """A last-value metric with an optional maximize() convenience."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: Any = 0
        self._registry = registry

    def set(self, value: Any) -> None:
        with self._registry._lock:
            self.value = value
            self._registry._mirror(self.name, value)

    def maximize(self, value: Any) -> bool:
        """Keep the running maximum; True when ``value`` set a new one."""
        with self._registry._lock:
            if value <= self.value:
                return False
            self.value = value
            self._registry._mirror(self.name, value)
            return True


class Timer:
    """Aggregated durations: count / total / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._registry = registry

    def observe(self, duration: float) -> None:
        with self._registry._lock:
            self.count += 1
            self.total += duration
            self.min = min(self.min, duration)
            self.max = max(self.max, duration)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics with optional write-through to a sink object.

    When ``sink`` is given, every counter/gauge update whose name matches
    an attribute on the sink is mirrored onto it — this is how the UG
    layer keeps :class:`~repro.ug.statistics.UGStatistics` live while the
    registry owns all mutation.
    """

    def __init__(self, sink: Any = None) -> None:
        self.sink = sink
        self._metrics: dict[str, Counter | Gauge | Timer] = {}
        self._lock = threading.RLock()

    # -- metric factories -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, self)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}")
            return metric

    # -- conveniences -----------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> float:
        return self.counter(name).inc(n)

    def set(self, name: str, value: Any) -> None:
        self.gauge(name).set(value)

    def maximize(self, name: str, value: Any) -> bool:
        return self.gauge(name).maximize(value)

    def observe(self, name: str, duration: float) -> None:
        self.timer(name).observe(duration)

    def value(self, name: str) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return None
        return metric.as_dict() if isinstance(metric, Timer) else metric.value

    def _mirror(self, name: str, value: Any) -> None:
        if self.sink is not None and hasattr(self.sink, name):
            setattr(self.sink, name, value)

    def as_dict(self) -> dict[str, Any]:
        """All metric values, timers expanded to their aggregates."""
        with self._lock:
            return {
                name: (m.as_dict() if isinstance(m, Timer) else m.value)
                for name, m in sorted(self._metrics.items())
            }


# -- derived busy/idle timelines ------------------------------------------------


def busy_timelines(
    events: "Tracer | Iterable[TraceEvent]",
) -> dict[int, list[tuple[float, float]]]:
    """Per-rank merged busy intervals derived from ``work`` trace events.

    Each ``work`` event carries the interval start in ``t`` and its
    length in ``data["work"]``; overlapping or adjacent intervals are
    merged so the result is a minimal sorted interval list per rank.
    """
    raw: dict[int, list[tuple[float, float]]] = {}
    source = events.events("work") if hasattr(events, "events") else events
    for ev in source:
        if ev.kind != "work":
            continue
        raw.setdefault(ev.rank, []).append((ev.t, ev.t + float(ev.data.get("work", 0.0))))
    merged: dict[int, list[tuple[float, float]]] = {}
    for rank, intervals in raw.items():
        intervals.sort()
        out: list[tuple[float, float]] = []
        for start, end in intervals:
            if out and start <= out[-1][1] + 1e-12:
                out[-1] = (out[-1][0], max(out[-1][1], end))
            else:
                out.append((start, end))
        merged[rank] = out
    return merged


def timeline_idle_ratios(
    timelines: dict[int, list[tuple[float, float]]],
    span: float,
    ranks: Iterable[int] | None = None,
) -> dict[int, float]:
    """Fraction of ``span`` each rank spent *without* a busy interval."""
    if span <= 0:
        return {r: 0.0 for r in (ranks or timelines)}
    out: dict[int, float] = {}
    for rank in ranks if ranks is not None else sorted(timelines):
        busy = sum(min(end, span) - min(start, span) for start, end in timelines.get(rank, []))
        out[rank] = max(0.0, 1.0 - busy / span)
    return out
