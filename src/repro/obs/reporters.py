"""Paper-shaped artifact renderers + machine-readable benchmark output.

Three report families mirror the paper's evaluation:

* :func:`scaling_report` — Table 1/4 shape: one column per instance,
  one row per solver count, plus the lower panel (root time, max #
  solvers, first-max-active time).
* :func:`winner_histogram_report` — Figure 1 shape: racing winners per
  setting with an ASCII bar per row.
* :func:`progress_report` — Tables 2-3 shape: one row per
  checkpoint/restart run of a campaign (time, idle, bounds, gap, nodes,
  open nodes).

Every report renders to the text table the benchmarks print *and*
serializes to JSON; :func:`write_bench_json` writes ``BENCH_<name>.json``
artifacts (non-finite floats encoded as strings so the files stay
strictly-valid JSON).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence


def format_cell(value: object) -> str:
    """Compact human formatting shared by all text tables."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(title: str, header: Sequence[str], rows: Iterable[Iterable[object]]) -> str:
    """The text-table format every ``bench_*`` module prints."""
    cells = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(header)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Report:
    """A rendered artifact: title + header + rows (+ free-form extras)."""

    title: str
    header: list[str]
    rows: list[list[Any]]
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.title, self.header, self.rows)

    def to_json(self) -> dict[str, Any]:
        return {"title": self.title, "header": self.header, "rows": self.rows, **self.extra}


# -- Table 1 / Table 4 shape ----------------------------------------------------


def scaling_report(
    title: str,
    results: Mapping[str, Mapping[str, Any]],
    thread_counts: Sequence[int],
) -> Report:
    """Scaling rows per solver count plus the paper's lower panel.

    ``results[name]`` must map ``"times"`` to ``{n_solvers: seconds}``
    and may carry ``"root_time"``, ``"max_solvers"`` and
    ``"first_max_active"`` for the lower panel.
    """
    names = list(results)
    rows: list[list[Any]] = []
    for n in thread_counts:
        rows.append([f"{n} solvers"] + [results[m]["times"].get(n) for m in names])
    panel = [
        ("root time", "root_time"),
        ("max # solvers", "max_solvers"),
        ("first max active", "first_max_active"),
    ]
    for label, key in panel:
        if any(key in results[m] for m in names):
            rows.append([label] + [results[m].get(key) for m in names])
    return Report(title, ["", *names], rows)


# -- Figure 1 shape -------------------------------------------------------------


def winner_histogram(winners: Mapping[str, Iterable[int]], n_settings: int) -> dict[str, dict[int, int]]:
    """Count racing winners per setting index for each instance family."""
    counts: dict[str, dict[int, int]] = {}
    for family, ws in winners.items():
        ws = list(ws)
        counts[family] = {k: ws.count(k) for k in range(1, n_settings + 1)}
    return counts


def winner_histogram_report(
    title: str,
    winners: Mapping[str, Iterable[int]],
    n_settings: int,
    setting_kind: Any = None,
    bar_width: int = 20,
) -> Report:
    """Figure 1-style histogram: winners per setting, ASCII bar per row.

    ``setting_kind`` labels each setting index (e.g. odd = "SDP",
    even = "LP" as in the paper's customized racing portfolio).
    """
    counts = winner_histogram(winners, n_settings)
    families = list(counts)
    peak = max((c for fam in families for c in counts[fam].values()), default=0)
    rows: list[list[Any]] = []
    for k in range(1, n_settings + 1):
        total = sum(counts[fam][k] for fam in families)
        bar = "#" * (round(bar_width * total / peak) if peak else 0)
        row: list[Any] = [k]
        if setting_kind is not None:
            row.append(setting_kind(k))
        row.extend(counts[fam][k] for fam in families)
        row.append(bar)
        rows.append(row)
    header = ["setting"] + (["kind"] if setting_kind is not None else []) + families + [""]
    return Report(title, header, rows, extra={"counts": counts})


# -- Tables 2-3 shape -----------------------------------------------------------

#: (column label, row key) pairs of the restart-series progress log; a key
#: absent from every run is omitted from the rendered report.
PROGRESS_COLUMNS: tuple[tuple[str, str], ...] = (
    ("run", "run"),
    ("cores", "cores"),
    ("time", "time"),
    ("idle%", "idle_pct"),
    ("trans", "transferred"),
    ("primal", "primal_final"),
    ("dual", "dual_final"),
    ("gap%", "gap_pct"),
    ("nodes", "nodes"),
    ("open", "open_final"),
    ("restart_nodes", "restarted_from"),
)


def progress_report(title: str, runs: Sequence[Mapping[str, Any]]) -> Report:
    """Restart-series progress log: one row per campaign run.

    Accepts the row dictionaries the campaign benchmarks build; derives
    percentage columns (``idle_pct``, ``gap_pct``) from the fractional
    ``idle`` / ``gap`` keys when present.
    """
    derived: list[dict[str, Any]] = []
    for r in runs:
        row = dict(r)
        if "idle" in row and "idle_pct" not in row:
            row["idle_pct"] = 100.0 * row["idle"]
        if "gap" in row and "gap_pct" not in row:
            gap = row["gap"]
            row["gap_pct"] = 100.0 * gap if isinstance(gap, (int, float)) and math.isfinite(gap) else None
        derived.append(row)
    columns = [(label, key) for label, key in PROGRESS_COLUMNS if any(key in r for r in derived)]
    rows = [[r.get(key) for _label, key in columns] for r in derived]
    return Report(title, [label for label, _key in columns], rows)


# -- machine-readable benchmark artifacts ---------------------------------------


def _json_safe(obj: Any) -> Any:
    """Recursively make ``obj`` strictly-valid JSON (inf/nan -> strings)."""
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if hasattr(obj, "to_json"):
        return _json_safe(obj.to_json())
    if hasattr(obj, "as_dict"):
        return _json_safe(obj.as_dict())
    return str(obj)


def write_bench_json(name: str, payload: Any, directory: str | os.PathLike | None = None) -> Path:
    """Write ``BENCH_<name>.json`` next to a benchmark's text table.

    ``directory`` defaults to ``$BENCH_OUTPUT_DIR`` or the working
    directory; it is created if missing.  ``payload`` may contain
    :class:`Report` objects, statistics objects with ``as_dict``/
    ``to_json``, and non-finite floats — everything is made JSON-safe.
    """
    base = Path(directory if directory is not None else os.environ.get("BENCH_OUTPUT_DIR", "."))
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"BENCH_{name}.json"
    doc = _json_safe(payload.to_json() if isinstance(payload, Report) else payload)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    return path
