"""Structured event tracing — ring-buffered, JSONL-exportable, deterministic.

One :class:`Tracer` serves one engine run.  Every instrumentation point
(message send/deliver/drop/delay, solver wake, crash, assignment,
reclaim, pruning, collect-mode toggles, racing decisions, checkpoint
writes, solver steps, solutions, node shedding) emits a
:class:`TraceEvent` — a ``(t, kind, rank, data)`` tuple with JSON-safe
payload values.  The codec-backed engines (``repro.ug.net``) add the
wire-level kinds: ``frame_fault`` (an injected frame-seam fault fired),
``net_decode_error`` (a malformed frame was rejected by the codec),
``send_closed`` (a frame was black-holed at a dead peer's transport) and
``rank_death_observed`` (the engine saw a process die and routed it onto
the heartbeat-recovery path).

Design constraints, in order:

1. **Zero cost when disabled.**  ``emit`` returns immediately when the
   tracer is disabled, and every hot-path call site additionally guards
   on ``tracer.enabled`` before building its payload, so an untraced run
   pays one attribute load + branch per event.
2. **Determinism under the SimEngine.**  Event payloads carry only
   values that are functions of (seed, FaultPlan, config): virtual
   times, ranks, LoadCoordinator node ids, bounds, tag names.  Nothing
   wall-clock, nothing ``id()``-derived, no global counters that survive
   across runs.  Two SimEngine runs with the same inputs export
   byte-identical JSONL — the fault-tolerance and protocol tests use the
   trace as a regression oracle.
3. **Bounded memory.**  Events live in a ring buffer
   (``collections.deque(maxlen=capacity)``); overflow drops the oldest
   events and counts them in :attr:`Tracer.dropped`.  Appends are
   lock-guarded so the ThreadEngine's solver threads can share one
   tracer.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One telemetry event.

    ``t`` is virtual seconds under the SimEngine, engine-relative wall
    seconds under the ThreadEngine, and cumulative busy work for events
    emitted by a ParaSolver (which has no engine clock of its own).
    """

    t: float
    kind: str
    rank: int
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {"t": self.t, "kind": self.kind, "rank": self.rank, "data": self.data}


class Tracer:
    """Ring-buffered event collector shared by one engine run."""

    __slots__ = ("enabled", "capacity", "dropped", "appended", "_events", "_lock")

    def __init__(self, enabled: bool = True, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        #: total events ever appended (monotone; ``appended - dropped`` of
        #: them are still buffered) — the cursor space of :meth:`events_since`
        self.appended = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, t: float, kind: str, rank: int = 0, **data: Any) -> None:
        """Record one event; a no-op while the tracer is disabled."""
        if not self.enabled:
            return
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self.appended += 1
            self._events.append(TraceEvent(float(t), kind, rank, data))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def events(self, kind: str | None = None, rank: int | None = None) -> list[TraceEvent]:
        """Snapshot of the buffered events, optionally filtered."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if rank is not None:
            out = [e for e in out if e.rank == rank]
        return out

    def events_since(self, cursor: int) -> tuple[int, int, list[TraceEvent]]:
        """Incremental read for live streaming: events appended after ``cursor``.

        ``cursor`` counts total appended events (start at 0; pass the
        returned cursor back on the next call).  Returns ``(new_cursor,
        missed, events)`` where ``missed`` is how many events between the
        cursor and the returned batch were already evicted by the ring
        buffer — a consumer that polls slower than the producer emits sees
        the loss explicitly instead of silently skipping.
        """
        with self._lock:
            total = self.appended
            if cursor >= total:
                return total, 0, []
            buffered = list(self._events)
            first_buffered = total - len(buffered)
            missed = max(0, first_buffered - cursor)
            return total, missed, buffered[max(0, cursor - first_buffered):]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.appended = 0

    # -- export ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Canonical JSONL encoding: one event per line, sorted keys.

        The encoding is the determinism contract: byte-compare two
        exports to assert two runs took identical decisions.
        """
        return "".join(
            json.dumps(e.to_json(), sort_keys=True, separators=(",", ":")) + "\n"
            for e in self.events()
        )

    def dump(self, path: str | Path) -> Path:
        """Write the JSONL export to ``path`` and return it."""
        p = Path(path)
        p.write_text(self.to_jsonl())
        return p


def load_trace_jsonl(source: str | Path) -> list[TraceEvent]:
    """Parse a JSONL trace export back into :class:`TraceEvent` objects.

    ``source`` is a file path or the JSONL text itself (anything with a
    newline is treated as text). Non-finite bounds round-trip through
    Python's ``Infinity``/``-Infinity`` JSON extension, the same dialect
    :meth:`Tracer.to_jsonl` writes. Used by the standalone verification
    CLI (``python -m repro.verify``) and the tree auditors.
    """
    text: str
    if isinstance(source, Path) or "\n" not in str(source):
        text = Path(source).read_text()
    else:
        text = str(source)
    events: list[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
            events.append(
                TraceEvent(float(obj["t"]), str(obj["kind"]), int(obj["rank"]), dict(obj["data"]))
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"malformed trace line {lineno}: {exc}") from exc
    return events


#: Shared disabled tracer used as the default instrumentation target, so
#: components constructed outside an engine (unit tests, direct driving)
#: need no wiring.  Never enable this instance — attach a fresh
#: :class:`Tracer` instead.
NULL_TRACER = Tracer(enabled=False, capacity=1)
