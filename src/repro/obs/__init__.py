"""repro.obs — run-telemetry for the whole stack.

The paper's computational study *is* telemetry: Tables 1-4 and Figure 1
report idle ratios, transferred nodes, racing-winner distributions and
restart-series progress.  This package makes those quantities first-class
outputs instead of ad-hoc fields scattered through the engines:

* :mod:`repro.obs.trace` — a zero-cost-when-disabled structured event
  tracer (ring-buffered, JSONL-exportable).  Both engines, the
  LoadCoordinator and every ParaSolver emit into one
  :class:`~repro.obs.trace.Tracer`; under the SimEngine the stream is
  bit-identically reproducible for a given seed + FaultPlan, which turns
  the trace into a regression oracle for the protocol itself.
* :mod:`repro.obs.metrics` — a counter/gauge/timer registry that is the
  single mutation pathway for the run statistics feeding
  :class:`~repro.ug.statistics.UGStatistics`, plus per-rank busy/idle
  timelines derived from the trace.
* :mod:`repro.obs.reporters` — paper-shaped artifact renderers
  (Table 1/4-style scaling rows, Figure 1-style racing-winner
  histograms, Tables 2-3-style restart progress logs) and the
  ``BENCH_*.json`` machine-readable emitter used by ``benchmarks/``.
"""

from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer, load_trace_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    busy_timelines,
    timeline_idle_ratios,
)
from repro.obs.reporters import (
    Report,
    progress_report,
    render_table,
    scaling_report,
    winner_histogram,
    winner_histogram_report,
    write_bench_json,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "load_trace_jsonl",
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "busy_timelines",
    "timeline_idle_ratios",
    "Report",
    "render_table",
    "scaling_report",
    "winner_histogram",
    "winner_histogram_report",
    "progress_report",
    "write_bench_json",
]
