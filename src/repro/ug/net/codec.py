"""Versioned binary wire format for Supervisor-Worker messages.

A frame is::

    +-------+---------+-----+-----+-----+-------+-------------+---------+-------+
    | magic | version | tag | src | dst | seq   | payload_len | payload | crc32 |
    | 2s    | u8      | u8  | i32 | i32 | i64   | u32         | bytes   | u32   |
    +-------+---------+-----+-----+-----+-------+-------------+---------+-------+

The CRC32 covers everything before the trailer (header + payload), so a
flipped bit anywhere in the frame is detected.  The payload is a typed
JSON document: every protocol dataclass (:class:`ParaNode`,
:class:`ParaSolution`, :class:`ParamSet`) is encoded structurally under a
``__kind`` tag and rebuilt as a *fresh object* on decode — there is no
pickle anywhere, so delivery can never alias the sender's objects and a
malicious/corrupt frame can never execute code.

Malformed input surfaces as a typed :class:`FrameDecodeError` subclass
(truncation, bad magic, unsupported version, unknown tag, checksum
mismatch, unparseable payload); receivers trace and count these via
``repro.obs`` instead of crashing.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.cip.params import ParamSet
from repro.exceptions import CommError
from repro.ug.messages import Message, MessageTag
from repro.ug.para_node import ParaNode
from repro.ug.para_solution import ParaSolution

MAGIC = b"UG"
WIRE_VERSION = 1

_HEADER = struct.Struct("!2sBBiiqI")  # magic, version, tag, src, dst, seq, payload_len
_TRAILER = struct.Struct("!I")  # crc32 of header + payload

HEADER_SIZE = _HEADER.size
TRAILER_SIZE = _TRAILER.size

#: hard ceiling on a single payload (a ParaNode is a few KB; anything near
#: this limit is a corrupt length field, not a real message)
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

# stable tag <-> code table; append only, never renumber (wire contract)
_TAG_TO_CODE: dict[MessageTag, int] = {
    MessageTag.SUBPROBLEM: 1,
    MessageTag.INCUMBENT: 2,
    MessageTag.START_COLLECTING: 3,
    MessageTag.STOP_COLLECTING: 4,
    MessageTag.TERMINATION: 5,
    MessageTag.RACING_START: 6,
    MessageTag.RACING_WINNER: 7,
    MessageTag.RACING_LOSER: 8,
    MessageTag.SOLUTION_FOUND: 9,
    MessageTag.STATUS: 10,
    MessageTag.TERMINATED: 11,
    MessageTag.NODE_TRANSFER: 12,
    MessageTag.DRAIN: 13,
    MessageTag.DRAINED: 14,
    MessageTag.JOIN: 15,
    MessageTag.RESET: 16,
}
_CODE_TO_TAG = {code: tag for tag, code in _TAG_TO_CODE.items()}

#: frame-level tag code for a coalesced frame carrying several messages;
#: deliberately far from the append-only protocol range so a future tag
#: can never collide with it.  A BATCH code exists only at the frame
#: layer — there is no MessageTag for it, batches dissolve on decode.
BATCH_FRAME_CODE = 255


# -- typed errors ---------------------------------------------------------------


class WireError(CommError):
    """Base class for wire-format failures (encode or decode side)."""


class PayloadEncodeError(WireError):
    """A payload object has no wire representation (programming error)."""


class FrameDecodeError(WireError):
    """Base class for everything a hostile/corrupt frame can trigger."""


class TruncatedFrameError(FrameDecodeError):
    """The byte buffer ends before the frame does."""


class BadMagicError(FrameDecodeError):
    """The frame does not start with the ``UG`` magic."""


class UnsupportedVersionError(FrameDecodeError):
    """The frame's wire version is not one this codec speaks."""


class UnknownTagError(FrameDecodeError):
    """The frame's tag code maps to no known :class:`MessageTag`."""


class ChecksumError(FrameDecodeError):
    """The CRC32 trailer does not match the frame contents."""


class PayloadDecodeError(FrameDecodeError):
    """The payload bytes are not a valid typed-JSON document."""


# -- payload (de)serialization ---------------------------------------------------

_KIND_KEY = "__kind"


def _to_wire(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-safe tree with ``__kind`` tags."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        if math.isnan(obj):
            return {_KIND_KEY: "float", "v": "nan"}
        return {_KIND_KEY: "float", "v": "inf" if obj > 0 else "-inf"}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return _to_wire(float(obj))
    if isinstance(obj, (list, tuple)):
        return [_to_wire(x) for x in obj]
    if isinstance(obj, dict):
        items = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise PayloadEncodeError(f"payload dict key {key!r} is not a string")
            items[key] = _to_wire(value)
        if _KIND_KEY in obj:  # escape a user dict that shadows our tag
            return {_KIND_KEY: "dict", "v": items}
        return items
    if isinstance(obj, ParaNode):
        return {_KIND_KEY: "ParaNode", "v": _to_wire(obj.to_json())}
    if isinstance(obj, ParaSolution):
        return {_KIND_KEY: "ParaSolution", "v": _to_wire(obj.to_json())}
    if isinstance(obj, ParamSet):
        return {_KIND_KEY: "ParamSet", "v": _to_wire(asdict(obj))}
    raise PayloadEncodeError(f"cannot serialize payload object of type {type(obj).__name__}")


def _from_wire(obj: Any) -> Any:
    """Rebuild fresh Python objects from the typed-JSON tree."""
    if isinstance(obj, list):
        return [_from_wire(x) for x in obj]
    if not isinstance(obj, dict):
        return obj
    kind = obj.get(_KIND_KEY)
    if kind is None:
        return {k: _from_wire(v) for k, v in obj.items()}
    body = obj.get("v")
    if kind == "dict":
        return {k: _from_wire(v) for k, v in dict(body).items()}
    if kind == "float":
        return {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}[body]
    if kind == "ParaNode":
        return ParaNode.from_json(_from_wire(body))
    if kind == "ParaSolution":
        return ParaSolution.from_json(_from_wire(body))
    if kind == "ParamSet":
        fields = _from_wire(body)
        known = {k: v for k, v in fields.items() if k in ParamSet.__dataclass_fields__}
        return ParamSet(**known)
    raise PayloadDecodeError(f"unknown payload kind {kind!r}")


def encode_payload(payload: Any) -> bytes:
    """Serialize a message payload to canonical JSON bytes."""
    doc = _to_wire(payload)
    # allow_nan=False: every non-finite float must have gone through the
    # typed encoding above; a bare Infinity in the JSON is a codec bug
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False).encode()


def decode_payload(data: bytes) -> Any:
    try:
        doc = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise PayloadDecodeError(f"payload is not valid JSON: {exc}") from exc
    try:
        return _from_wire(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise PayloadDecodeError(f"malformed typed payload: {exc}") from exc


# -- frame (de)serialization ------------------------------------------------------


def encode_message(msg: Message) -> bytes:
    """Encode one :class:`Message` as a self-delimiting binary frame."""
    payload = encode_payload(msg.payload)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise PayloadEncodeError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD_BYTES")
    try:
        tag_code = _TAG_TO_CODE[msg.tag]
    except KeyError:
        raise PayloadEncodeError(f"message tag {msg.tag!r} has no wire code") from None
    seq = msg.seq if msg.seq is not None else -1
    head = _HEADER.pack(MAGIC, WIRE_VERSION, tag_code, msg.src, msg.dst, seq, len(payload))
    body = head + payload
    return body + _TRAILER.pack(zlib.crc32(body))


def frame_length(buffer: bytes) -> int | None:
    """Total frame size announced by a buffered header, or None if the
    buffer is still shorter than one header.  Raises the early typed
    errors (magic/version/length sanity) so stream readers fail fast."""
    if len(buffer) < HEADER_SIZE:
        return None
    magic, version, _tag, _src, _dst, _seq, payload_len = _HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise BadMagicError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise UnsupportedVersionError(f"unsupported wire version {version}")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise TruncatedFrameError(f"announced payload of {payload_len} bytes is implausible")
    return HEADER_SIZE + payload_len + TRAILER_SIZE


def _checked_frame(frame: bytes) -> tuple[int, int, int, int, bytes]:
    """Validate length/magic/version/CRC; return (tag_code, src, dst, seq,
    payload bytes).  Shared by the single-message and batch decode paths."""
    total = frame_length(frame)
    if total is None:
        raise TruncatedFrameError(f"frame of {len(frame)} bytes is shorter than a header")
    if len(frame) < total:
        raise TruncatedFrameError(f"frame truncated: have {len(frame)} of {total} bytes")
    if len(frame) > total:
        raise FrameDecodeError(f"frame has {len(frame) - total} trailing bytes")
    body, trailer = frame[: total - TRAILER_SIZE], frame[total - TRAILER_SIZE :]
    (stored_crc,) = _TRAILER.unpack(trailer)
    actual_crc = zlib.crc32(body)
    if stored_crc != actual_crc:
        raise ChecksumError(f"frame CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})")
    _magic, _version, tag_code, src, dst, seq, payload_len = _HEADER.unpack_from(frame)
    return tag_code, src, dst, seq, frame[HEADER_SIZE : HEADER_SIZE + payload_len]


def decode_message(frame: bytes) -> Message:
    """Decode exactly one frame back into a fresh :class:`Message`.

    Every failure mode raises a :class:`FrameDecodeError` subclass; the
    returned message shares no object identity with whatever was encoded.
    BATCH frames are rejected here — use :func:`decode_frame` on paths
    that may legitimately receive coalesced traffic.
    """
    tag_code, src, dst, seq, payload_bytes = _checked_frame(frame)
    if tag_code == BATCH_FRAME_CODE:
        raise FrameDecodeError("BATCH frame on a single-message decode path")
    tag = _CODE_TO_TAG.get(tag_code)
    if tag is None:
        raise UnknownTagError(f"unknown message tag code {tag_code}")
    payload = decode_payload(payload_bytes)
    return Message(tag=tag, src=src, dst=dst, payload=payload, seq=seq)


# -- frame coalescing (BATCH) -----------------------------------------------------
#
# A BATCH frame amortizes the per-frame cost (header, CRC, transport
# syscall, fault-injection bookkeeping) over several protocol messages:
# the payload is a JSON array of inner records, each carrying the tag
# code, routing and seq a standalone frame would have carried in its
# header.  The frame-level src/dst/seq mirror the first inner message, so
# traffic accounting by endpoint still works.  A corrupt BATCH loses all
# of its messages at once — deterministic, and exactly what a dropped
# TCP segment would do to back-to-back small frames.


def encode_batch(msgs: list[Message]) -> bytes:
    """Encode several messages as one coalesced BATCH frame."""
    if not msgs:
        raise PayloadEncodeError("cannot encode an empty BATCH frame")
    if len(msgs) == 1:
        return encode_message(msgs[0])
    records = []
    for msg in msgs:
        try:
            tag_code = _TAG_TO_CODE[msg.tag]
        except KeyError:
            raise PayloadEncodeError(f"message tag {msg.tag!r} has no wire code") from None
        records.append(
            {
                "t": tag_code,
                "s": msg.src,
                "d": msg.dst,
                "q": msg.seq if msg.seq is not None else -1,
                "p": _to_wire(msg.payload),
            }
        )
    payload = json.dumps(records, sort_keys=True, separators=(",", ":"), allow_nan=False).encode()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise PayloadEncodeError(f"BATCH payload of {len(payload)} bytes exceeds MAX_PAYLOAD_BYTES")
    first = msgs[0]
    seq = first.seq if first.seq is not None else -1
    head = _HEADER.pack(MAGIC, WIRE_VERSION, BATCH_FRAME_CODE, first.src, first.dst, seq, len(payload))
    body = head + payload
    return body + _TRAILER.pack(zlib.crc32(body))


def decode_frame(frame: bytes) -> list[Message]:
    """Decode one frame into its messages: ``[msg]`` for a plain frame,
    every coalesced message (in send order) for a BATCH frame."""
    tag_code, src, dst, seq, payload_bytes = _checked_frame(frame)
    if tag_code != BATCH_FRAME_CODE:
        tag = _CODE_TO_TAG.get(tag_code)
        if tag is None:
            raise UnknownTagError(f"unknown message tag code {tag_code}")
        return [Message(tag=tag, src=src, dst=dst, payload=decode_payload(payload_bytes), seq=seq)]
    try:
        records = json.loads(payload_bytes.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise PayloadDecodeError(f"BATCH payload is not valid JSON: {exc}") from exc
    if not isinstance(records, list) or not records:
        raise PayloadDecodeError("BATCH payload is not a non-empty array")
    out: list[Message] = []
    for rec in records:
        if not isinstance(rec, dict) or not {"t", "s", "d", "q", "p"} <= rec.keys():
            raise PayloadDecodeError("malformed BATCH record")
        tag = _CODE_TO_TAG.get(rec["t"])
        if tag is None:
            raise UnknownTagError(f"unknown message tag code {rec['t']} inside BATCH")
        try:
            payload = _from_wire(rec["p"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PayloadDecodeError(f"malformed typed payload in BATCH: {exc}") from exc
        out.append(
            Message(tag=tag, src=int(rec["s"]), dst=int(rec["d"]), payload=payload, seq=int(rec["q"]))
        )
    return out


def roundtrip_message(msg: Message) -> Message:
    """Encode-then-decode ``msg``: a fresh, isolation-safe copy.

    The ThreadEngine routes every delivery through this, giving thread
    runs the same no-shared-mutable-state semantics as process runs.
    """
    return decode_message(encode_message(msg))
