"""Deterministic in-process engine over the full net stack.

:class:`LoopbackNetEngine` drives the LoadCoordinator and every
ParaSolver cooperatively in one thread, but routes **every** message
through the real wire path — per-rank :class:`MessageChannel` endpoints
over :class:`LoopbackTransport` pairs, binary codec frames, frame-seam
fault injection — so the distributed-memory machinery (encode/decode,
CRC rejection, rank death, heartbeat reclaim) is testable bit-identically
without spawning a single process.  It is to the ProcessEngine what the
SimEngine is to MPI: the deterministic twin.

Time is virtual: each scheduling round advances the clock by the largest
work charge any solver reported (never less than ``config.latency``), so
time/racing/heartbeat deadlines behave like the SimEngine's.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

from repro.exceptions import CommError
from repro.obs.trace import Tracer
from repro.ug.cluster import ClusterPlan, RankWatchdog
from repro.ug.config import UGConfig
from repro.ug.faults import FaultInjector, make_retrying_send
from repro.ug.load_coordinator import LoadCoordinator
from repro.ug.messages import LOAD_COORDINATOR_RANK, Message, MessageTag, SeqStamper
from repro.ug.net.channel import MessageChannel, attach_run_tracer
from repro.ug.net.transport import LoopbackTransport
from repro.ug.para_solver import ParaSolver

#: consecutive no-progress rounds tolerated before the engine declares the
#: run stalled and interrupts (only reachable with heartbeat detection off)
_MAX_IDLE_ROUNDS = 8


class LoopbackNetEngine:
    """Single-threaded, virtual-time engine over loopback transports."""

    def __init__(
        self,
        lc: LoadCoordinator,
        solvers: dict[int, ParaSolver],
        config: UGConfig,
        max_rounds: int = 2_000_000,
        tracer: Tracer | None = None,
    ) -> None:
        self.lc = lc
        self.solvers = solvers
        self.config = config
        self.max_rounds = max_rounds
        self.injector = FaultInjector(config.fault_plan)
        lc.fault_injector = self.injector
        self.tracer = attach_run_tracer(tracer, config, lc, solvers)
        self.now = 0.0
        self._busy: dict[int, float] = {r: 0.0 for r in solvers}
        self._nodes_total = 0
        self._crash_noted: set[int] = set()
        # delayed deliveries from message-level "delay" faults
        self._delayed: list[tuple[float, int, int, Message]] = []
        self._delay_seq = itertools.count()
        # wire endpoints: lc <-> rank, one loopback pair per rank
        self.lc_channels: dict[int, MessageChannel] = {}
        self.rank_channels: dict[int, MessageChannel] = {}
        self._lc_stamper = SeqStamper()
        for rank in solvers:
            self._wire_rank(rank)
        # elastic membership: scripted joins/drains ride virtual time, and
        # the watchdog (if any) books deterministic replacement joins
        plan = config.cluster_plan or ClusterPlan()
        self._events = plan.sorted_events()
        self.watchdog = (
            RankWatchdog(plan.restart_policy, clock=lambda: self.now)
            if plan.restart_policy is not None
            else None
        )
        self._death_seen: set[int] = set()

    def _wire_rank(self, rank: int) -> None:
        lc_end, rank_end = LoopbackTransport.pair()
        self.lc_channels[rank] = MessageChannel(
            lc_end,
            local_rank=LOAD_COORDINATOR_RANK,
            remote_rank=rank,
            stamper=self._lc_stamper,
            injector=self.injector,
            metrics=self.lc.metrics,
            tracer=self.tracer,
            clock=lambda: self.now,
        )
        self.rank_channels[rank] = MessageChannel(
            rank_end,
            local_rank=rank,
            remote_rank=LOAD_COORDINATOR_RANK,
            stamper=SeqStamper(),
            injector=self.injector,
            tracer=self.tracer,
            clock=lambda: self.now,
        )

    # -- send paths ------------------------------------------------------------

    def _lc_send_raw(self, dst: int, tag: MessageTag, payload: Any) -> None:
        self.injector.check_send(LOAD_COORDINATOR_RANK)
        if dst not in self.lc_channels:
            raise CommError(f"unknown rank {dst}")
        msg = Message(tag=tag, src=LOAD_COORDINATOR_RANK, dst=dst, payload=payload,
                      seq=self.lc_channels[dst].stamper())
        self._route(msg)

    def _rank_send_raw(self, src: int, dst: int, tag: MessageTag, payload: Any) -> None:
        self.injector.check_send(src)
        msg = Message(tag=tag, src=src, dst=dst, payload=payload,
                      seq=self.rank_channels[src].stamper())
        self._route(msg)

    def _route(self, msg: Message) -> None:
        """Apply message-level faults, then ship over the wire channel."""
        action, extra_delay = self.injector.message_action(msg)
        tracer = self.tracer
        if action == "drop":
            if tracer.enabled:
                tracer.emit(self.now, "send", msg.src, dst=msg.dst, tag=msg.tag.value, action="drop")
            return
        if msg.dst != LOAD_COORDINATOR_RANK and self.injector.is_crashed(msg.dst):
            if tracer.enabled:
                tracer.emit(self.now, "send", msg.src, dst=msg.dst, tag=msg.tag.value, action="blackhole")
            return
        if tracer.enabled:
            tracer.emit(self.now, "send", msg.src, dst=msg.dst, tag=msg.tag.value,
                        action=action, delay=extra_delay)
        if action == "delay" and extra_delay > 0:
            heapq.heappush(self._delayed, (self.now + extra_delay, next(self._delay_seq), msg.dst, msg))
            return
        if msg.dst == LOAD_COORDINATOR_RANK:
            # mirror the process worker's coalescing bit-identically:
            # worker->LC messages ride the channel outbox and flush at the
            # same loop seams (one BATCH frame per handle/work burst), so
            # frame sequences — and frame-seam fault replay — match
            self.rank_channels[msg.src].queue_message(msg)
            return
        self._ship(msg)

    def _ship(self, msg: Message) -> None:
        channel = (
            self.rank_channels[msg.src]
            if msg.dst == LOAD_COORDINATOR_RANK
            else self.lc_channels[msg.dst]
        )
        channel.send_message(msg)  # frame faults + closed-peer blackhole inside

    def _flush_delayed(self) -> None:
        while self._delayed and self._delayed[0][0] <= self.now:
            _, _, _, msg = heapq.heappop(self._delayed)
            self._ship(msg)

    # -- main loop --------------------------------------------------------------

    def run(self) -> None:
        lc = self.lc
        lc_send = make_retrying_send(self._lc_send_raw, self.config, self.injector, real_time=False)
        lc.start(lc_send, 0.0)
        rounds = 0
        idle_rounds = 0
        while not lc.finished:
            rounds += 1
            if rounds > self.max_rounds:
                raise CommError("LoopbackNetEngine exceeded max_rounds — protocol livelock?")
            self._flush_delayed()
            progressed = self._pump_lc(lc_send)
            if lc.finished:
                break
            if self.now >= self.config.time_limit or self._nodes_total >= self.config.node_limit:
                lc.interrupt(lc_send, self.now)
                break
            progressed = self._membership_tick(lc_send) or progressed
            if lc.finished:
                break
            round_work = 0.0
            for rank in sorted(self.solvers):
                if lc.finished:
                    break
                work, pumped = self._pump_solver(rank)
                round_work = max(round_work, work)
                progressed = progressed or pumped or work > 0
            lc.on_tick(lc_send, self.now)
            if not progressed and not self._delayed:
                idle_rounds += 1
                # with heartbeat detection off the clock advancing changes
                # nothing — a silent stall would spin to max_rounds, so
                # give the protocol a few rounds of grace and interrupt
                if (
                    idle_rounds > _MAX_IDLE_ROUNDS
                    and self.config.heartbeat_timeout == float("inf")
                    and self.config.time_limit == float("inf")
                ):
                    lc.interrupt(lc_send, self.now)
                    break
            else:
                idle_rounds = 0
            self.now += max(round_work, self.config.latency)
        if not lc.finished:
            lc.interrupt(lc_send, self.now)
        # drain termination frames so surviving solver states are final
        self._flush_delayed()
        for rank in sorted(self.solvers):
            if not self.injector.is_crashed(rank):
                self._pump_solver(rank, deliver_only=True)
        lc.stats.solver_busy = dict(self._busy)
        self.injector.export_stats(lc.stats)
        self._compute_idle_ratio()

    # -- elastic membership ------------------------------------------------------

    def _membership_tick(self, lc_send: Any) -> bool:
        """Fire due scripted joins/drains and watchdog replacements."""
        lc = self.lc
        progressed = False
        # feed newly observed deaths (heartbeat- or crash-detected) to the
        # watchdog so a deterministic replacement join gets booked
        for rank in sorted(lc.dead - self._death_seen):
            self._death_seen.add(rank)
            if self.watchdog is not None:
                self.watchdog.note_death(rank, self.now)
        while self._events and self._events[0].at_time <= self.now:
            ev = self._events.pop(0)
            if lc.finished:
                return progressed
            if ev.action == "join":
                self._join_rank(lc_send, ev.rank)
                progressed = True
            else:
                target = ev.rank
                if target is None:
                    candidates = lc.live_solvers() - lc.draining
                    target = max(candidates) if candidates else None
                if target is not None:
                    lc.request_drain(target, lc_send, self.now)
                    progressed = True
        if self.watchdog is not None:
            for root in self.watchdog.due(self.now):
                if lc.finished:
                    return progressed
                rank = self._join_rank(lc_send, None)
                lc.metrics.inc("ranks_restarted")
                self.watchdog.bind(rank, root)
                self.tracer.emit(self.now, "rank_restart", rank, root=root)
                progressed = True
        return progressed

    def _join_rank(self, lc_send: Any, rank: int | None = None) -> int:
        """Admit a fresh rank mid-solve: a new ParaSolver built from the
        run identity (presolved instance, base params, seed), wired over a
        fresh loopback pair, welcomed by the LoadCoordinator."""
        lc = self.lc
        if rank is None:
            rank = lc.next_rank_id()
        solver = ParaSolver(
            rank=rank,
            instance=lc.instance,
            user_plugins=lc.user_plugins,
            params=lc.params,
            seed=lc.seed,
            status_interval_work=self.config.status_interval_work,
            min_open_to_shed=self.config.min_open_to_shed,
            objective_epsilon=self.config.objective_epsilon,
            transfer_batch=self.config.net_batch_nodes,
        )
        # attach_run_tracer only saw launch-time solvers
        solver.tracer = self.tracer
        self.solvers[rank] = solver
        self._wire_rank(rank)
        self._busy.setdefault(rank, 0.0)
        lc.note_rank_join(lc_send, self.now, rank=rank)
        return rank

    # -- per-component pumps -----------------------------------------------------

    def _pump_lc(self, lc_send: Any) -> bool:
        """Deliver every queued worker->LC message, in rank order."""
        lc = self.lc
        progressed = False
        tracer = self.tracer
        for rank in sorted(self.lc_channels):
            for msg in self.lc_channels[rank].drain():
                progressed = True
                if tracer.enabled:
                    tracer.emit(self.now, "deliver", LOAD_COORDINATOR_RANK, src=msg.src, tag=msg.tag.value)
                if not lc.finished:
                    lc.handle_message(msg, lc_send, self.now)
                    lc.on_tick(lc_send, self.now)
        return progressed

    def _pump_solver(self, rank: int, deliver_only: bool = False) -> tuple[float, bool]:
        solver = self.solvers[rank]
        tracer = self.tracer
        if solver.state == "terminated":
            return 0.0, False
        if self.injector.maybe_crash(rank, self.now, solver.nodes_processed_total):
            if rank not in self._crash_noted:
                self._crash_noted.add(rank)
                tracer.emit(self.now, "crash", rank, nodes=solver.nodes_processed_total)
                # a dead rank's endpoint goes away, exactly like a killed
                # process: later sends to it black-hole at the channel
                self.rank_channels[rank].close()
            return 0.0, False

        def send(dst: int, tag: MessageTag, payload: Any) -> None:
            self._rank_send_raw(rank, dst, tag, payload)

        send_fn = make_retrying_send(send, self.config, self.injector, real_time=False)
        channel = self.rank_channels[rank]
        pumped = False
        for msg in channel.drain():
            pumped = True
            if tracer.enabled:
                tracer.emit(self.now, "deliver", rank, src=msg.src, tag=msg.tag.value)
            solver.handle_message(msg, send_fn)
            if solver.state == "terminated":
                channel.flush()  # the goodbye (DRAINED/TERMINATED) must ship
                return 0.0, True
        channel.flush()  # same seam as the process worker: end of handle burst
        if deliver_only or not solver.is_busy:
            return 0.0, pumped
        nodes_before = solver.nodes_processed_total
        work = solver.do_work(send_fn) or 0.0
        self._nodes_total += solver.nodes_processed_total - nodes_before
        channel.flush()  # same seam as the process worker: end of work step
        if work > 0:
            self._busy[rank] += work
            if tracer.enabled:
                tracer.emit(self.now, "work", rank, work=work)
        return work, pumped

    def _compute_idle_ratio(self) -> None:
        span = self.lc.stats.computing_time or self.now
        if span <= 0 or not self.solvers:
            self.lc.metrics.set("idle_ratio", 0.0)
            return
        total = span * len(self.solvers)
        busy = sum(min(b, span) for b in self._busy.values())
        self.lc.metrics.set("idle_ratio", max(0.0, 1.0 - busy / total))
