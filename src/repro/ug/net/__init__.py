"""Distributed-memory networking for the UG runtime (DESIGN.md §5e).

Three layers, bottom up:

* :mod:`repro.ug.net.codec` — the versioned binary wire format (framed,
  CRC-checked, pickle-free typed-JSON payloads).
* :mod:`repro.ug.net.transport` — pluggable frame carriers: in-memory
  loopback, ``multiprocessing.Pipe``, TCP with backpressure.
* :mod:`repro.ug.net.channel` — the codec/transport boundary with
  fault-injection and ``repro.obs`` accounting.

On top ride two engines: :class:`LoopbackNetEngine` (deterministic,
single-threaded, full wire path — the testable twin) and
:class:`ProcessEngine` (one OS process per rank — true parallelism).
The engine classes are exported lazily (PEP 562) so importing the codec
never drags in multiprocessing machinery.
"""

from __future__ import annotations

from typing import Any

from repro.ug.net.channel import MessageChannel, attach_run_tracer, corrupt_frame
from repro.ug.net.codec import (
    BadMagicError,
    ChecksumError,
    FrameDecodeError,
    PayloadDecodeError,
    PayloadEncodeError,
    TruncatedFrameError,
    UnknownTagError,
    UnsupportedVersionError,
    WireError,
    decode_message,
    encode_message,
    roundtrip_message,
)
from repro.ug.net.transport import (
    BackpressureError,
    LoopbackTransport,
    PipeTransport,
    TcpTransport,
    Transport,
    TransportClosedError,
    tcp_listener,
)

__all__ = [
    "BackpressureError",
    "BadMagicError",
    "ChecksumError",
    "FrameDecodeError",
    "LoopbackNetEngine",
    "LoopbackTransport",
    "MessageChannel",
    "PayloadDecodeError",
    "PayloadEncodeError",
    "PipeTransport",
    "ProcessEngine",
    "TcpTransport",
    "Transport",
    "TransportClosedError",
    "TruncatedFrameError",
    "UnknownTagError",
    "UnsupportedVersionError",
    "WireError",
    "attach_run_tracer",
    "corrupt_frame",
    "decode_message",
    "encode_message",
    "roundtrip_message",
    "tcp_listener",
]

_LAZY = {
    "ProcessEngine": ("repro.ug.net.process_engine", "ProcessEngine"),
    "LoopbackNetEngine": ("repro.ug.net.loopback_engine", "LoopbackNetEngine"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
