"""The codec boundary: one :class:`MessageChannel` per remote rank.

A channel owns one :class:`~repro.ug.net.transport.Transport` endpoint
and is the *only* place where protocol messages meet bytes: sends are
stamped (per-run sequence), encoded, fault-injected at the frame seam
(drop / corrupt / truncate, per the run's
:class:`~repro.ug.faults.FaultPlan`) and counted; receives are decoded
with every malformed frame surfacing as a typed
:class:`~repro.ug.net.codec.FrameDecodeError` that is traced and
counted via ``repro.obs`` instead of crashing the engine.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.trace import Tracer
from repro.ug.messages import Message, MessageTag, SeqStamper
from repro.ug.net.codec import FrameDecodeError, decode_message, encode_message
from repro.ug.net.transport import Transport, TransportClosedError


def attach_run_tracer(tracer: Tracer | None, config: Any, lc: Any, solvers: dict[int, Any]) -> Tracer:
    """One tracer per engine run, shared by every protocol component."""
    if tracer is None:
        tracer = Tracer(enabled=config.trace_enabled, capacity=config.trace_capacity)
    lc.tracer = tracer
    for solver in solvers.values():
        solver.tracer = tracer
    return tracer


def corrupt_frame(frame: bytes, mode: str) -> bytes:
    """Deterministically damage a frame (the injector's frame seam)."""
    if mode == "truncate":
        return frame[: max(len(frame) // 2, 1)]
    # flip one byte two thirds in — lands in the payload/CRC region for
    # any realistic frame, so the checksum check must catch it
    pos = (2 * len(frame)) // 3
    return frame[:pos] + bytes([frame[pos] ^ 0xFF]) + frame[pos + 1 :]


class MessageChannel:
    """Encode/decode endpoint for one remote rank, with accounting."""

    def __init__(
        self,
        transport: Transport,
        *,
        local_rank: int,
        remote_rank: int,
        stamper: SeqStamper | None = None,
        injector: Any = None,
        metrics: Any = None,
        tracer: Any = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.transport = transport
        self.local_rank = local_rank
        self.remote_rank = remote_rank
        self.stamper = stamper or SeqStamper()
        self.injector = injector
        self.metrics = metrics
        self.tracer = tracer
        self.clock = clock or (lambda: 0.0)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.decode_errors = 0

    # -- sending ---------------------------------------------------------------

    def send(self, dst: int, tag: MessageTag, payload: Any) -> bool:
        """Build, stamp and ship one message; False when it was dropped
        (injected fault or closed transport — a dead rank is a black hole)."""
        msg = Message(tag=tag, src=self.local_rank, dst=dst, payload=payload, seq=self.stamper())
        return self.send_message(msg)

    def send_message(self, msg: Message) -> bool:
        frame = encode_message(msg)
        action = None
        if self.injector is not None:
            action = self.injector.frame_action(msg.src, msg.dst)
        if action == "drop":
            self._trace("frame_fault", action="drop", tag=msg.tag.value, dst=msg.dst)
            return False
        if action in ("corrupt", "truncate"):
            self._trace("frame_fault", action=action, tag=msg.tag.value, dst=msg.dst)
            frame = corrupt_frame(frame, action)
        try:
            self.transport.send_frame(frame)
        except TransportClosedError:
            self._trace("send_closed", tag=msg.tag.value, dst=msg.dst)
            return False
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        if self.metrics is not None:
            self.metrics.inc("net_frames_sent")
            self.metrics.inc("net_bytes_sent", len(frame))
        return True

    # -- receiving -------------------------------------------------------------

    def recv(self, timeout: float = 0.0) -> Message | None:
        """One decoded message, or None on timeout *and* on a malformed
        frame (which is traced/counted — net faults degrade to message
        loss, and message loss is already survivable by PR 1's
        heartbeat/reclaim machinery).  Raises
        :class:`TransportClosedError` once the peer is gone."""
        frame = self.transport.recv_frame(timeout)
        if frame is None:
            return None
        self.frames_received += 1
        self.bytes_received += len(frame)
        if self.metrics is not None:
            self.metrics.inc("net_frames_received")
            self.metrics.inc("net_bytes_received", len(frame))
        try:
            return decode_message(frame)
        except FrameDecodeError as exc:
            self.decode_errors += 1
            if self.metrics is not None:
                self.metrics.inc("net_decode_errors")
            self._trace("net_decode_error", error=type(exc).__name__, bytes=len(frame))
            return None

    def drain(self, limit: int = 1024) -> list[Message]:
        """Every message currently available, without blocking."""
        out: list[Message] = []
        for _ in range(limit):
            try:
                msg = self.recv(0.0)
            except TransportClosedError:
                break
            if msg is None:
                # distinguish "empty" from "decoded garbage": only stop
                # when the transport truly had nothing buffered
                if not self._has_pending():
                    break
                continue
            out.append(msg)
        return out

    def _has_pending(self) -> bool:
        pending = getattr(self.transport, "pending", None)
        return bool(pending()) if callable(pending) else False

    def close(self) -> None:
        self.transport.close()

    @property
    def closed(self) -> bool:
        return self.transport.closed

    def _trace(self, kind: str, **data: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(self.clock(), kind, self.remote_rank, **data)
