"""The codec boundary: one :class:`MessageChannel` per remote rank.

A channel owns one :class:`~repro.ug.net.transport.Transport` endpoint
and is the *only* place where protocol messages meet bytes: sends are
stamped (per-run sequence), encoded, fault-injected at the frame seam
(drop / corrupt / truncate, per the run's
:class:`~repro.ug.faults.FaultPlan`) and counted; receives are decoded
with every malformed frame surfacing as a typed
:class:`~repro.ug.net.codec.FrameDecodeError` that is traced and
counted via ``repro.obs`` instead of crashing the engine.
"""

from __future__ import annotations

import collections
from typing import Any, Callable

from repro.obs.trace import Tracer
from repro.ug.messages import Message, MessageTag, SeqStamper
from repro.ug.net.codec import FrameDecodeError, decode_frame, encode_batch, encode_message
from repro.ug.net.transport import Transport, TransportClosedError


def attach_run_tracer(tracer: Tracer | None, config: Any, lc: Any, solvers: dict[int, Any]) -> Tracer:
    """One tracer per engine run, shared by every protocol component."""
    if tracer is None:
        tracer = Tracer(enabled=config.trace_enabled, capacity=config.trace_capacity)
    lc.tracer = tracer
    for solver in solvers.values():
        solver.tracer = tracer
    return tracer


def corrupt_frame(frame: bytes, mode: str) -> bytes:
    """Deterministically damage a frame (the injector's frame seam)."""
    if mode == "truncate":
        return frame[: max(len(frame) // 2, 1)]
    # flip one byte two thirds in — lands in the payload/CRC region for
    # any realistic frame, so the checksum check must catch it
    pos = (2 * len(frame)) // 3
    return frame[:pos] + bytes([frame[pos] ^ 0xFF]) + frame[pos + 1 :]


class MessageChannel:
    """Encode/decode endpoint for one remote rank, with accounting."""

    def __init__(
        self,
        transport: Transport,
        *,
        local_rank: int,
        remote_rank: int,
        stamper: SeqStamper | None = None,
        injector: Any = None,
        metrics: Any = None,
        tracer: Any = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.transport = transport
        self.local_rank = local_rank
        self.remote_rank = remote_rank
        self.stamper = stamper or SeqStamper()
        self.injector = injector
        self.metrics = metrics
        self.tracer = tracer
        self.clock = clock or (lambda: 0.0)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.decode_errors = 0
        # send-side coalescing buffer and decoded-but-undelivered messages
        # from a BATCH frame (recv hands them out one at a time)
        self._outbox: list[Message] = []
        self._inbox: collections.deque[Message] = collections.deque()

    # -- sending ---------------------------------------------------------------

    def send(self, dst: int, tag: MessageTag, payload: Any) -> bool:
        """Build, stamp and ship one message; False when it was dropped
        (injected fault or closed transport — a dead rank is a black hole)."""
        msg = Message(tag=tag, src=self.local_rank, dst=dst, payload=payload, seq=self.stamper())
        return self.send_message(msg)

    def queue(self, dst: int, tag: MessageTag, payload: Any) -> None:
        """Stamp one message and buffer it for the next :meth:`flush`.

        Queued messages coalesce into a single BATCH frame, so the
        per-frame cost (header, CRC, syscall) is paid once per flush —
        the wire-path fix for chatty worker loops (STATUS piggybacks on
        whatever RESULT/SOLUTION/NODE_TRANSFER traffic the step produced).
        """
        self.queue_message(
            Message(tag=tag, src=self.local_rank, dst=dst, payload=payload, seq=self.stamper())
        )

    def queue_message(self, msg: Message) -> None:
        """Buffer an already-stamped message for the next :meth:`flush`."""
        self._outbox.append(msg)

    def flush(self) -> bool:
        """Ship everything queued as one frame; True unless the transport
        is closed (black hole) or the whole frame was fault-dropped."""
        if not self._outbox:
            return True
        msgs, self._outbox = self._outbox, []
        if len(msgs) == 1:
            return self.send_message(msgs[0])
        frame = encode_batch(msgs)
        if self.metrics is not None:
            self.metrics.inc("net_batches_sent")
            self.metrics.inc("net_msgs_coalesced", len(msgs))
        return self._ship_frame(frame, tag=f"batch[{len(msgs)}]", dst=msgs[0].dst)

    def send_message(self, msg: Message) -> bool:
        return self._ship_frame(encode_message(msg), tag=msg.tag.value, dst=msg.dst)

    def _ship_frame(self, frame: bytes, tag: str, dst: int) -> bool:
        """The single frame seam: fault injection, transport, accounting."""
        action = None
        if self.injector is not None:
            action = self.injector.frame_action(self.local_rank, dst)
        if action == "drop":
            self._trace("frame_fault", action="drop", tag=tag, dst=dst)
            return False
        if action in ("corrupt", "truncate"):
            self._trace("frame_fault", action=action, tag=tag, dst=dst)
            frame = corrupt_frame(frame, action)
        try:
            self.transport.send_frame(frame)
        except TransportClosedError:
            self._trace("send_closed", tag=tag, dst=dst)
            return False
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        if self.metrics is not None:
            self.metrics.inc("net_frames_sent")
            self.metrics.inc("net_bytes_sent", len(frame))
        return True

    # -- receiving -------------------------------------------------------------

    def recv(self, timeout: float = 0.0) -> Message | None:
        """One decoded message, or None when nothing (valid) is available.

        A malformed frame is traced/counted and *skipped* — the loop keeps
        reading, so one corrupt frame can never make a receiver treat the
        channel as drained while good frames sit buffered behind it (net
        faults degrade to message loss, which PR 1's heartbeat/reclaim
        machinery already survives).  BATCH frames dissolve here: the
        first message returns now, the rest queue for subsequent calls.
        Raises :class:`TransportClosedError` once the peer is gone."""
        if self._inbox:
            return self._inbox.popleft()
        while True:
            frame = self.transport.recv_frame(timeout)
            if frame is None:
                return None
            self.frames_received += 1
            self.bytes_received += len(frame)
            if self.metrics is not None:
                self.metrics.inc("net_frames_received")
                self.metrics.inc("net_bytes_received", len(frame))
            try:
                msgs = decode_frame(frame)
            except FrameDecodeError as exc:
                self.decode_errors += 1
                if self.metrics is not None:
                    self.metrics.inc("net_decode_errors")
                self._trace("net_decode_error", error=type(exc).__name__, bytes=len(frame))
                # skip the bad frame; anything already buffered behind it
                # must come out on this same call
                timeout = 0.0
                continue
            self._inbox.extend(msgs[1:])
            return msgs[0]

    def drain(self, limit: int = 1024) -> list[Message]:
        """Every message currently available, without blocking."""
        out: list[Message] = []
        for _ in range(limit):
            try:
                msg = self.recv(0.0)
            except TransportClosedError:
                break
            if msg is None:
                break
            out.append(msg)
        return out

    def close(self) -> None:
        self.transport.close()

    @property
    def closed(self) -> bool:
        return self.transport.closed

    def _trace(self, kind: str, **data: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(self.clock(), kind, self.remote_rank, **data)
