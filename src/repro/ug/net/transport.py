"""Pluggable frame transports: loopback, multiprocessing pipes, TCP.

A :class:`Transport` moves opaque byte frames between two endpoints; it
knows nothing about the wire codec above it.  Three implementations:

* :class:`LoopbackTransport` — an in-memory pair of FIFO queues.  Fully
  deterministic (no threads, no clocks), the substrate for the
  loopback net engine and the corruption/kill tests.
* :class:`PipeTransport` — a ``multiprocessing.Pipe`` duplex connection;
  the default carrier of the ProcessEngine (frames ride
  ``send_bytes``/``recv_bytes``, which are already length-delimited).
* :class:`TcpTransport` — a TCP socket with its own 4-byte length
  prefix, connect/read timeouts, retry-with-backoff on transient
  errors, and a bounded outbound queue whose ``send_frame`` *blocks*
  when full — backpressure instead of unbounded memory growth.
"""

from __future__ import annotations

import collections
import hmac
import os
import queue
import random
import socket
import struct
import threading
import time
from typing import Any

from repro.exceptions import CommError


class TransportClosedError(CommError):
    """The peer endpoint is gone (EOF, reset, or explicit close)."""


class BackpressureError(CommError):
    """The bounded outbound queue stayed full past the send timeout."""


# -- retry backoff ----------------------------------------------------------------

#: hard ceiling on any single retry sleep; 2**attempt alone grows unbounded
DEFAULT_BACKOFF_CAP = 2.0


def backoff_delay(base: float, attempt: int, cap: float = DEFAULT_BACKOFF_CAP, seed: int = 0) -> float:
    """Capped exponential backoff with deterministic seeded jitter.

    The delay for retry ``attempt`` (1-based) is ``base * 2**(attempt-1)``
    clamped to ``cap``, scaled by a jitter factor in [0.5, 1.0) drawn from
    a PRNG keyed on ``seed`` and ``attempt`` — the same seed always yields
    the same schedule, so virtual-time engines (and the cluster watchdog)
    replay bit-identically while real TCP retries still de-synchronize.
    """
    raw = min(base * (2 ** max(attempt - 1, 0)), cap)
    jitter = random.Random(seed * 2_654_435_761 + attempt).random()
    return raw * (0.5 + 0.5 * jitter)


# -- rank/token hello handshake ----------------------------------------------------

#: shared-secret size for the TCP hello; compared timing-safely below
TOKEN_BYTES = 16

_HELLO = struct.Struct(f"!i{TOKEN_BYTES}s")  # rank, shared-secret token

HELLO_SIZE = _HELLO.size


def make_hello_token() -> bytes:
    """A fresh per-run shared secret for the TCP hello handshake."""
    return os.urandom(TOKEN_BYTES)


def send_hello(sock: socket.socket, rank: int, token: bytes) -> None:
    """Authenticate a dial-in: ship ``(rank, token)`` before any frame."""
    sock.sendall(_HELLO.pack(rank, token))


def recv_hello(sock: socket.socket, timeout: float) -> tuple[int, bytes] | None:
    """Read one hello off a freshly accepted socket, or None on a short
    read/timeout (the caller drops the stranger)."""
    sock.settimeout(timeout)
    buf = b""
    try:
        while len(buf) < HELLO_SIZE:
            chunk = sock.recv(HELLO_SIZE - len(buf))
            if not chunk:
                return None
            buf += chunk
    except OSError:
        return None
    rank, token = _HELLO.unpack(buf)
    return rank, token


def hello_token_matches(got: bytes, expected: bytes) -> bool:
    """Timing-safe token comparison (``hmac.compare_digest``, not ``==``)."""
    return hmac.compare_digest(bytes(got), bytes(expected))


class Transport:
    """Duplex frame channel between exactly two endpoints."""

    def send_frame(self, frame: bytes) -> None:
        """Ship one opaque frame; raises :class:`TransportClosedError`
        once the peer is gone and :class:`BackpressureError` when a
        bounded outbound queue cannot accept the frame in time."""
        raise NotImplementedError

    def recv_frame(self, timeout: float = 0.0) -> bytes | None:
        """One frame, or None if nothing arrives within ``timeout``
        seconds; raises :class:`TransportClosedError` on EOF."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


# -- in-memory loopback -----------------------------------------------------------


class LoopbackTransport(Transport):
    """One endpoint of an in-memory duplex channel (see :meth:`pair`).

    Deterministic by construction: frames come out in the exact order
    they went in, ``timeout`` is ignored (no clock — an empty queue just
    returns None), and nothing ever runs on another thread.
    """

    def __init__(self) -> None:
        self._inbox: collections.deque[bytes] = collections.deque()
        self._peer: "LoopbackTransport | None" = None
        self._closed = False
        self._lock = threading.Lock()

    @staticmethod
    def pair() -> tuple["LoopbackTransport", "LoopbackTransport"]:
        a, b = LoopbackTransport(), LoopbackTransport()
        a._peer, b._peer = b, a
        return a, b

    def send_frame(self, frame: bytes) -> None:
        peer = self._peer
        if self._closed or peer is None or peer._closed:
            raise TransportClosedError("loopback peer is closed")
        with peer._lock:
            peer._inbox.append(bytes(frame))

    def recv_frame(self, timeout: float = 0.0) -> bytes | None:
        with self._lock:
            if self._inbox:
                return self._inbox.popleft()
        if self._closed or (self._peer is not None and self._peer._closed):
            raise TransportClosedError("loopback peer is closed")
        return None

    def pending(self) -> int:
        with self._lock:
            return len(self._inbox)

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


# -- multiprocessing pipe ---------------------------------------------------------


class PipeTransport(Transport):
    """Frames over a duplex ``multiprocessing.Connection``."""

    def __init__(self, conn: Any) -> None:
        self.conn = conn
        self._closed = False
        self._send_lock = threading.Lock()

    def send_frame(self, frame: bytes) -> None:
        if self._closed:
            raise TransportClosedError("pipe transport is closed")
        try:
            with self._send_lock:
                self.conn.send_bytes(frame)
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            self._closed = True
            raise TransportClosedError(f"pipe peer is gone: {exc}") from exc

    def recv_frame(self, timeout: float = 0.0) -> bytes | None:
        if self._closed:
            raise TransportClosedError("pipe transport is closed")
        try:
            if not self.conn.poll(timeout):
                return None
            return self.conn.recv_bytes()
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            self._closed = True
            raise TransportClosedError(f"pipe peer is gone: {exc}") from exc

    def pending(self) -> int:
        """1 when at least one frame is readable right now (a Connection
        cannot count its buffer without consuming it), else 0."""
        if self._closed:
            return 0
        try:
            return 1 if self.conn.poll(0) else 0
        except (BrokenPipeError, ConnectionError, EOFError, OSError):
            return 0

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    @property
    def closed(self) -> bool:
        return self._closed


# -- TCP sockets ------------------------------------------------------------------

_LEN_PREFIX = struct.Struct("!I")
_RECV_CHUNK = 1 << 16


class TcpTransport(Transport):
    """Length-prefixed frames over a TCP socket.

    Outbound frames go through a bounded queue drained by a sender
    thread; when the queue is full ``send_frame`` blocks up to
    ``send_timeout`` seconds and then raises :class:`BackpressureError`
    — a slow peer throttles the sender instead of ballooning memory.
    Transient socket timeouts during a send are retried with exponential
    backoff before the transport declares itself broken.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_outbound: int = 1024,
        send_timeout: float = 30.0,
        send_retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        jitter_seed: int = 0,
    ) -> None:
        self.sock = sock
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.send_timeout = send_timeout
        self.send_retries = send_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter_seed = jitter_seed
        self._closed = False
        self._error: Exception | None = None
        self._rbuf = bytearray()
        self._frames: collections.deque[bytes] = collections.deque()
        self._outbound: queue.Queue[bytes | None] = queue.Queue(maxsize=max(1, max_outbound))
        self.queue_peak = 0  # high-water mark of the outbound queue
        self._sender = threading.Thread(target=self._drain_outbound, daemon=True, name="TcpTransport-send")
        self._sender.start()

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        connect_retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        jitter_seed: int = 0,
        **kwargs: Any,
    ) -> "TcpTransport":
        """Dial ``host:port``, retrying transient refusals with capped,
        jittered backoff (the listener may not be up yet when a spawned
        rank dials in)."""
        attempt = 0
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=connect_timeout)
                sock.settimeout(None)
                return cls(
                    sock, backoff=backoff, backoff_cap=backoff_cap, jitter_seed=jitter_seed, **kwargs
                )
            except (ConnectionRefusedError, ConnectionResetError, socket.timeout, TimeoutError) as exc:
                attempt += 1
                if attempt > connect_retries:
                    raise TransportClosedError(
                        f"cannot connect to {host}:{port} after {attempt} attempts: {exc}"
                    ) from exc
                time.sleep(backoff_delay(backoff, attempt, cap=backoff_cap, seed=jitter_seed))

    # -- sending ---------------------------------------------------------------

    def send_frame(self, frame: bytes) -> None:
        if self._closed or self._error is not None:
            raise TransportClosedError(f"tcp transport is closed ({self._error})")
        try:
            self._outbound.put(bytes(frame), timeout=self.send_timeout)
        except queue.Full:
            raise BackpressureError(
                f"outbound queue full for {self.send_timeout}s — peer not draining"
            ) from None
        self.queue_peak = max(self.queue_peak, self._outbound.qsize())

    def _drain_outbound(self) -> None:
        while True:
            frame = self._outbound.get()
            if frame is None:
                return
            data = _LEN_PREFIX.pack(len(frame)) + frame
            attempt = 0
            while True:
                try:
                    self.sock.sendall(data)
                    break
                except (socket.timeout, InterruptedError, BlockingIOError):
                    attempt += 1
                    if attempt > self.send_retries:
                        self._error = TransportClosedError("send retries exhausted")
                        return
                    time.sleep(
                        backoff_delay(self.backoff, attempt, cap=self.backoff_cap, seed=self.jitter_seed)
                    )
                except OSError as exc:
                    self._error = TransportClosedError(f"tcp send failed: {exc}")
                    return

    # -- receiving -------------------------------------------------------------

    def recv_frame(self, timeout: float = 0.0) -> bytes | None:
        if self._frames:
            return self._frames.popleft()
        if self._closed:
            raise TransportClosedError("tcp transport is closed")
        self.sock.settimeout(max(timeout, 1e-6))
        try:
            chunk = self.sock.recv(_RECV_CHUNK)
        except (socket.timeout, BlockingIOError, InterruptedError):
            return None
        except OSError as exc:
            self._closed = True
            raise TransportClosedError(f"tcp recv failed: {exc}") from exc
        if chunk == b"":
            self._closed = True
            raise TransportClosedError("tcp peer closed the connection")
        self._rbuf.extend(chunk)
        self._parse_frames()
        return self._frames.popleft() if self._frames else None

    def pending(self) -> int:
        """Frames already parsed off the socket and awaiting delivery."""
        return len(self._frames)

    def _parse_frames(self) -> None:
        while len(self._rbuf) >= _LEN_PREFIX.size:
            (length,) = _LEN_PREFIX.unpack_from(self._rbuf)
            end = _LEN_PREFIX.size + length
            if len(self._rbuf) < end:
                return
            self._frames.append(bytes(self._rbuf[_LEN_PREFIX.size : end]))
            del self._rbuf[:end]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._outbound.put_nowait(None)
        except queue.Full:  # pragma: no cover - sender is stuck; shut the socket anyway
            pass
        self._sender.join(timeout=2.0)
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    @property
    def closed(self) -> bool:
        return self._closed or self._error is not None


def tcp_listener(host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> socket.socket:
    """A listening socket for ProcessEngine's TCP mode (port 0 = ephemeral)."""
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind((host, port))
    srv.listen(backlog)
    return srv
